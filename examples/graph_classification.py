"""Unsupervised graph classification across methods (mini Table IV).

Trains GraphCL, JOAO, and SimGRACE — each base vs GradGCL(f+g) — on two
TU-style datasets and prints a Table IV-shaped comparison, alongside the
classic WL / graphlet / graph2vec baselines.

Usage::

    python examples/graph_classification.py
"""

import numpy as np

from repro.baselines import graph2vec_features, graphlet_features, wl_features
from repro.core import gradgcl
from repro.datasets import load_tu_dataset
from repro.eval import evaluate_graph_embeddings
from repro.methods import GraphCL, JOAO, SimGRACE, train_graph_method
from repro.utils import format_cell, print_table

DATASETS = ["MUTAG", "IMDB-B"]
METHODS = [("GraphCL", GraphCL), ("JOAO", JOAO), ("SimGRACE", SimGRACE)]
KERNELS = [("WL", wl_features), ("GL", graphlet_features),
           ("graph2vec", graph2vec_features)]


def evaluate_method(cls, dataset, weight: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    method = cls(dataset.num_features, hidden_dim=16, num_layers=2, rng=rng)
    if weight > 0:
        method = gradgcl(method, weight)
    train_graph_method(method, dataset.graphs, epochs=8, batch_size=32,
                       lr=1e-3, seed=seed)
    return evaluate_graph_embeddings(method.embed(dataset.graphs),
                                     dataset.labels(), folds=5, repeats=2,
                                     seed=seed)


def main():
    datasets = {name: load_tu_dataset(name, scale="small", seed=0)
                for name in DATASETS}
    rows = []
    for label, features_fn in KERNELS:
        cells = []
        for name in DATASETS:
            ds = datasets[name]
            acc, std = evaluate_graph_embeddings(features_fn(ds.graphs),
                                                 ds.labels(), folds=5,
                                                 repeats=2)
            cells.append(format_cell(acc, std))
        rows.append([label] + cells)
    for label, cls in METHODS:
        for suffix, weight in [("", 0.0), ("(f+g)", 0.5)]:
            cells = []
            for name in DATASETS:
                acc, std = evaluate_method(cls, datasets[name], weight)
                cells.append(format_cell(acc, std))
            rows.append([label + suffix] + cells)
    print_table("Unsupervised graph classification (mini Table IV)",
                ["Method"] + DATASETS, rows)


if __name__ == "__main__":
    main()
