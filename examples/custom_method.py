"""Build a custom contrastive method and make it GradGCL-compatible.

A runnable version of docs/tutorial.md Sec. 3: a minimal method (node-drop
views + InfoNCE) defined in ~30 lines that immediately works with the
`gradgcl()` plug-in, compared base-vs-(f+g) on a MUTAG-style dataset.

Usage::

    python examples/custom_method.py
"""

import numpy as np

from repro.augment import NodeDrop
from repro.core import InfoNCEObjective, gradgcl
from repro.datasets import load_tu_dataset
from repro.eval import evaluate_graph_embeddings
from repro.gnn import GINEncoder, ProjectionHead
from repro.graph import GraphBatch
from repro.methods import GraphContrastiveMethod, train_graph_method
from repro.utils import print_table


class MyMethod(GraphContrastiveMethod):
    """Minimal custom method: two node-drop views + cosine InfoNCE."""

    name = "MyMethod"

    def __init__(self, in_features, hidden_dim=16, num_layers=2, *, rng):
        super().__init__()
        self.encoder = GINEncoder(in_features, hidden_dim, num_layers,
                                  rng=rng)
        self.projector = ProjectionHead(self.encoder.out_features, rng=rng)
        self.objective = InfoNCEObjective(tau=0.5)
        self.augment = NodeDrop(0.15)
        self._rng = rng

    def training_loss(self, batch):
        view1 = GraphBatch([self.augment(g, self._rng)
                            for g in batch.graphs])
        view2 = GraphBatch([self.augment(g, self._rng)
                            for g in batch.graphs])
        _, h1 = self.encoder(view1)
        _, h2 = self.encoder(view2)
        return self.objective.loss(self.projector(h1), self.projector(h2))

    def graph_embeddings(self, batch):
        _, h = self.encoder(batch)
        return h


def main():
    dataset = load_tu_dataset("MUTAG", scale="small", seed=0)
    rows = []
    for label, weight in [("MyMethod", 0.0), ("MyMethod(f+g)", 0.5)]:
        rng = np.random.default_rng(0)
        method = MyMethod(dataset.num_features, rng=rng)
        if weight > 0:
            method = gradgcl(method, weight)   # <- one line to plug in
        train_graph_method(method, dataset.graphs, epochs=15,
                           batch_size=32, seed=0)
        acc, std = evaluate_graph_embeddings(method.embed(dataset.graphs),
                                             dataset.labels())
        rows.append([label, f"{acc:.2f}±{std:.2f}"])
    print_table("Custom method with the GradGCL plug-in",
                ["Method", "Accuracy (%)"], rows)


if __name__ == "__main__":
    main()
