"""Transductive node classification (mini Tables V and VII).

Trains GRACE, BGRL, and COSTA — base vs GradGCL(f+g) — on a Cora-style SBM
dataset and compares against raw features, DeepWalk, and a supervised GCN.

Usage::

    python examples/node_classification.py
"""

import numpy as np

from repro.baselines import (
    deepwalk_node_embeddings,
    raw_node_features,
    supervised_gcn_accuracy,
)
from repro.core import gradgcl
from repro.datasets import load_node_dataset
from repro.eval import evaluate_node_embeddings
from repro.methods import BGRL, COSTA, GRACE, train_node_method
from repro.utils import format_cell, print_table


def evaluate_method(cls, dataset, weight: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    method = cls(dataset.num_features, hidden_dim=32, out_dim=16, rng=rng)
    if weight > 0:
        method = gradgcl(method, weight)
    train_node_method(method, dataset.graph, epochs=25, lr=3e-3)
    return evaluate_node_embeddings(method.embed(dataset.graph),
                                    dataset.labels(), dataset.train_mask,
                                    dataset.test_mask, seed=seed)


def main():
    dataset = load_node_dataset("Cora", scale="small", seed=0)
    stats = dataset.statistics()
    print(f"Dataset: {stats['name']} — {stats['nodes']} nodes, "
          f"{stats['edges']} edges, {stats['classes']} classes")

    rows = []
    raw_acc, raw_std = evaluate_node_embeddings(
        raw_node_features(dataset.graph), dataset.labels(),
        dataset.train_mask, dataset.test_mask)
    rows.append(["Raw features", format_cell(raw_acc, raw_std)])

    dw = deepwalk_node_embeddings(dataset.graph, dim=32, num_walks=3,
                                  walk_length=10, epochs=2)
    dw_acc, dw_std = evaluate_node_embeddings(dw, dataset.labels(),
                                              dataset.train_mask,
                                              dataset.test_mask)
    rows.append(["DeepWalk", format_cell(dw_acc, dw_std)])

    gcn_acc = supervised_gcn_accuracy(dataset, hidden_dim=32, epochs=80)
    rows.append(["Supervised GCN", f"{gcn_acc:.2f}"])

    for label, cls in [("GRACE", GRACE), ("BGRL", BGRL), ("COSTA", COSTA)]:
        for suffix, weight in [("", 0.0), ("(f+g)", 0.5)]:
            acc, std = evaluate_method(cls, dataset, weight)
            rows.append([label + suffix, format_cell(acc, std)])
    print_table("Node classification (mini Tables V / VII)",
                ["Method", "Accuracy (%)"], rows)


if __name__ == "__main__":
    main()
