"""Quickstart: enhance SimGRACE with GradGCL on a MUTAG-style dataset.

Runs the three configurations of the paper's Table IV on one dataset:

* SimGRACE        — the base model (a = 0),
* SimGRACE(g)     — gradients alone (a = 1),
* SimGRACE(f+g)   — full GradGCL (a = 0.5),

then reports 10-fold SVM accuracy of the frozen embeddings.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import effective_rank, gradgcl
from repro.datasets import load_tu_dataset
from repro.eval import evaluate_graph_embeddings
from repro.methods import SimGRACE, train_graph_method
from repro.utils import print_table


def run_variant(dataset, weight: float, seeds=(0, 1)):
    """Train one (possibly GradGCL-wrapped) SimGRACE; average over seeds."""
    accs, stds, eranks, losses = [], [], [], []
    for seed in seeds:
        rng = np.random.default_rng(seed)
        method = SimGRACE(dataset.num_features, hidden_dim=16, num_layers=2,
                          rng=rng)
        if weight > 0:
            method = gradgcl(method, weight)
        history = train_graph_method(method, dataset.graphs, epochs=20,
                                     batch_size=32, lr=1e-3, seed=seed)
        embeddings = method.embed(dataset.graphs)
        acc, std = evaluate_graph_embeddings(embeddings, dataset.labels(),
                                             folds=10, repeats=3, seed=seed)
        accs.append(acc)
        stds.append(std)
        eranks.append(effective_rank(embeddings))
        losses.append(history.final_loss)
    return (float(np.mean(accs)), float(np.mean(stds)),
            float(np.mean(eranks)), float(np.mean(losses)))


def main():
    dataset = load_tu_dataset("MUTAG", scale="small", seed=0)
    stats = dataset.statistics()
    print(f"Dataset: {stats['name']} — {stats['num_graphs']} graphs, "
          f"{stats['num_classes']} classes, "
          f"avg {stats['avg_nodes']:.1f} nodes")

    rows = []
    for label, weight in [("SimGRACE", 0.0), ("SimGRACE(g)", 1.0),
                          ("SimGRACE(f+g)", 0.5)]:
        acc, std, erank, loss = run_variant(dataset, weight)
        rows.append([label, f"{acc:.2f}±{std:.2f}", f"{erank:.2f}",
                     f"{loss:.3f}"])
    print_table("GradGCL quickstart (Table IV, one dataset)",
                ["Method", "Accuracy (%)", "Effective rank", "Final loss"],
                rows)


if __name__ == "__main__":
    main()
