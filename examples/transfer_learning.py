"""Transfer learning: pretrain on ZINC-style molecules, finetune downstream.

Mirrors the paper's Table VI protocol: GraphCL vs GraphCL(f+g) pretrained on
an unlabelled molecule corpus, finetuned on three MoleculeNet-style binary
property datasets, reporting ROC-AUC.

Usage::

    python examples/transfer_learning.py
"""

import numpy as np

from repro.core import gradgcl
from repro.datasets import load_molecule_dataset, load_pretrain_dataset
from repro.gnn import GINEncoder
from repro.methods import GraphCL, finetune_roc_auc, run_transfer
from repro.utils import print_table

DOWNSTREAM = ["BBBP", "BACE", "ClinTox"]


def main():
    pretrain = load_pretrain_dataset("ZINC-2M", scale="small", seed=0)
    downstream = [load_molecule_dataset(name, scale="small", seed=0)
                  for name in DOWNSTREAM]
    print(f"Pretraining corpus: {len(pretrain)} unlabelled molecules")

    rows = []

    # No-pretrain reference: finetune a randomly initialized encoder in the
    # same low-finetune-data regime (75% of graphs held out for testing).
    rng = np.random.default_rng(0)
    fresh = GINEncoder(pretrain.num_features, 16, 2, rng=rng)
    no_pretrain = {ds.name: np.mean([
        finetune_roc_auc(fresh, ds, epochs=8, lr=3e-3,
                         test_fraction=0.75, seed=s)
        for s in (1, 2)])
        for ds in downstream}
    rows.append(["No Pre-Train"]
                + [f"{no_pretrain[name]:.1f}" for name in DOWNSTREAM]
                + [f"{np.mean(list(no_pretrain.values())):.1f}"])

    for label, weight in [("GraphCL", 0.0), ("GraphCL(f+g)", 0.5)]:
        rng = np.random.default_rng(0)
        method = GraphCL(pretrain.num_features, 16, 2, rng=rng)
        if weight > 0:
            method = gradgcl(method, weight)
        result = run_transfer(method, pretrain.graphs, downstream,
                              pretrain_epochs=4, finetune_epochs=8,
                              lr=3e-3, repeats=2, seed=1)
        rows.append([label] + [f"{result[name]:.1f}" for name in DOWNSTREAM]
                    + [f"{result.average:.1f}"])

    print_table("Transfer learning ROC-AUC (mini Table VI)",
                ["Method"] + DOWNSTREAM + ["Avg."], rows)


if __name__ == "__main__":
    main()
