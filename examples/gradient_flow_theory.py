"""Theory demo: Lemma 2/3 gradient flow of a linear encoder (Sec. III-B.2).

Simulates the euclidean-InfoNCE gradient flow of the paper's linear-encoder
analysis at several gradient weights and prints the rank trajectories —
the mechanism behind Fig. 5's collapse mitigation, in its provable setting.

Usage::

    python examples/gradient_flow_theory.py
"""

import numpy as np

from repro.core import simulate_gradient_flow
from repro.utils import print_table


def main():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(32, 10))
    x_pos = x + 0.1 * rng.normal(size=x.shape)  # small augmentation delta

    rows = []
    for weight in [0.0, 0.25, 0.5, 0.75]:
        result = simulate_gradient_flow(x, x_pos, dim_out=10, steps=200,
                                        step_size=0.05,
                                        gradient_weight=weight, seed=0)
        stride = len(result.embedding_ranks) // 4
        trajectory = " -> ".join(
            f"{r:.2f}" for r in result.embedding_ranks[::stride])
        rows.append([f"a={weight}", trajectory,
                     f"{result.final_weight_rank:.2f}",
                     f"{result.losses[-1]:.4f}"])
    print_table("Linear-encoder gradient flow (Lemmas 2-3)",
                ["Gradient weight", "Embedding effective rank over time",
                 "Final W rank", "Final loss"], rows)
    print("\nLarger gradient weights hold the spectrum open — the "
          "mechanism behind the paper's Fig. 5.")


if __name__ == "__main__":
    main()
