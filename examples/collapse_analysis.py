"""Dimensional-collapse analysis (paper Figs. 1, 5, and 6 in text form).

Trains SimGRACE in the collapse regime with gradient weights
a in {0, 0.5, 1.0}, then prints:

* the log singular-value spectrum of the representation covariance (Fig. 5),
* collapsed-dimension counts and effective ranks,
* instance-similarity diversity (Fig. 6's summary statistic).

Usage::

    python examples/collapse_analysis.py
"""

import numpy as np

from repro.core import (
    effective_rank,
    gradgcl,
    log_spectrum,
    num_collapsed_dimensions,
)
from repro.datasets import load_tu_dataset
from repro.eval import similarity_diversity
from repro.methods import SimGRACE, train_graph_method
from repro.utils import print_table


def train(dataset, weight: float, seed: int = 0):
    rng = np.random.default_rng(seed)
    method = SimGRACE(dataset.num_features, hidden_dim=32, num_layers=2,
                      rng=rng, perturb_magnitude=0.5)
    if weight > 0:
        method = gradgcl(method, weight)
    # Weight decay + longer training drives the collapse the paper's
    # Fig. 1 observes after long pretraining on real benchmarks.
    train_graph_method(method, dataset.graphs, epochs=80, batch_size=64,
                       lr=3e-3, weight_decay=3e-2, seed=seed)
    return method.embed(dataset.graphs)


def sparkline(values: np.ndarray, width: int = 32) -> str:
    """Render a log spectrum as a unicode sparkline."""
    blocks = "▁▂▃▄▅▆▇█"
    picked = values[np.linspace(0, len(values) - 1, width).astype(int)]
    lo, hi = picked.min(), picked.max()
    span = max(hi - lo, 1e-9)
    return "".join(blocks[int((v - lo) / span * (len(blocks) - 1))]
                   for v in picked)


def main():
    # The 'tiny' scale with this schedule is the calibrated collapse regime
    # where the rank-restoring effect reproduces robustly (see DESIGN.md and
    # EXPERIMENTS.md — at other scales the Eq. 18 convex combination also
    # weakens the representation-level uniformity pressure, which can
    # dominate).  The clean, provable version of the effect is in
    # examples/gradient_flow_theory.py.
    dataset = load_tu_dataset("IMDB-B", scale="tiny", seed=0)
    rows = []
    for weight in [0.0, 0.5, 1.0]:
        emb = train(dataset, weight)
        spectrum = log_spectrum(emb)
        rows.append([
            f"a={weight}",
            f"{effective_rank(emb):.2f}/{emb.shape[1]}",
            num_collapsed_dimensions(emb, tol=1e-4),
            f"{similarity_diversity(emb):.3f}",
            sparkline(spectrum),
        ])
    print_table(
        "Singular spectrum vs gradient weight (Figs. 1/5/6)",
        ["Weight", "Effective rank", "Collapsed dims", "Sim. diversity",
         "log10 spectrum (sorted)"],
        rows)
    print("\nHigher effective rank / fewer collapsed dims with gradients "
          "reproduces Fig. 5's claim in this regime; see "
          "examples/gradient_flow_theory.py for the provable version.")


if __name__ == "__main__":
    main()
