"""Zero-dependency observability: metrics, tracing, run journals, engine hooks.

The layer has four pieces, all stdlib+numpy only:

* :mod:`repro.obs.metrics` — :class:`MetricRegistry` of counters, gauges,
  and streaming p50/p95 histograms;
* :mod:`repro.obs.tracing` — nested wall-clock spans
  (``with trace("epoch"): ...``) built on :class:`repro.utils.timer.Timer`;
* :mod:`repro.obs.journal` — :class:`RunJournal`, the structured JSONL
  event stream every training run and benchmark writes, plus readers and
  the schema validator CI runs;
* :mod:`repro.obs.engine_hooks` — op/byte/backward counters the tensor
  engine reports into when enabled.

Training loops accept ``journal=RunJournal(run_dir)``;
``repro report <run-dir>`` renders any journal as text tables.
"""

from .engine_hooks import ENGINE, EngineStats, engine_stats
from .journal import (
    EVENT_TYPES,
    JOURNAL_FILENAME,
    RunJournal,
    canonical_events,
    events_of,
    read_journal,
    validate_journal,
)
from .metrics import Counter, Gauge, Histogram, MetricRegistry
from .tracing import Span, Tracer, default_tracer, trace

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricRegistry",
    "Span", "Tracer", "trace", "default_tracer",
    "EVENT_TYPES", "JOURNAL_FILENAME", "RunJournal", "read_journal",
    "validate_journal", "events_of", "canonical_events",
    "ENGINE", "EngineStats", "engine_stats",
]
