"""Process-local metric instruments: counters, gauges, streaming histograms.

The registry is deliberately tiny and dependency-free: training loops and
benchmarks record into named instruments, and a :meth:`MetricRegistry.snapshot`
turns the whole registry into one JSON-ready dict that the
:class:`repro.obs.journal.RunJournal` can stream as a ``metrics`` event.

Histograms reuse :func:`repro.utils.timer.lap_statistics` so the p50/p95
convention matches the Table VIII efficiency benchmarks exactly.  To keep
memory bounded on long runs they hold a fixed-size reservoir: once full,
incoming samples replace random slots of a deterministically seeded RNG, an
unbiased streaming sample (Vitter's Algorithm R).
"""

from __future__ import annotations

import random

from ..utils.timer import LapStats, lap_statistics

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]


class Counter:
    """Monotonically increasing count (batches seen, graphs processed)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount
        return self.value

    def snapshot(self):
        return self.value


class Gauge:
    """Last-write-wins scalar (current loss, live parameter count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value

    def snapshot(self):
        return self.value


class Histogram:
    """Streaming sample of observations summarized as count/total/p50/p95.

    Keeps at most ``max_samples`` observations via reservoir sampling so a
    million-step run costs the same memory as a hundred-step one.  ``count``
    and ``total`` always reflect *every* observation; only the percentile
    estimates come from the reservoir.
    """

    __slots__ = ("name", "max_samples", "count", "total", "_reservoir",
                 "_rng")

    def __init__(self, name: str, max_samples: int = 4096):
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self._reservoir: list[float] = []
        # Deterministic per-name seed keeps snapshots reproducible run to run.
        self._rng = random.Random(hash(name) & 0xFFFFFFFF)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if len(self._reservoir) < self.max_samples:
            self._reservoir.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.max_samples:
                self._reservoir[slot] = value

    def statistics(self) -> LapStats:
        """Order statistics over the reservoir (see ``lap_statistics``)."""
        if not self._reservoir:
            raise ValueError(f"histogram {self.name!r} has no observations")
        stats = lap_statistics(self._reservoir)
        # Report the true running aggregates, not the reservoir's.
        return LapStats(count=self.count, total=self.total,
                        mean=self.total / self.count,
                        p50=stats.p50, p95=stats.p95)

    def snapshot(self):
        if not self._reservoir:
            return {"count": 0, "total": 0.0, "mean": None, "p50": None,
                    "p95": None}
        stats = self.statistics()
        return {"count": stats.count, "total": stats.total,
                "mean": stats.mean, "p50": stats.p50, "p95": stats.p95}


class MetricRegistry:
    """Named instrument store with one-call JSON-ready snapshots.

    Instruments are created on first access and reused afterwards; asking
    for an existing name with a different instrument kind is an error (it
    almost always means two call sites disagree about what the name holds).
    """

    def __init__(self):
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind, **kwargs):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name, **kwargs)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, max_samples: int = 4096) -> Histogram:
        return self._get(name, Histogram, max_samples=max_samples)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def snapshot(self) -> dict:
        """All instruments as ``{name: value-or-stats}`` sorted by name."""
        return {name: self._instruments[name].snapshot()
                for name in sorted(self._instruments)}

    def reset(self) -> None:
        self._instruments.clear()
