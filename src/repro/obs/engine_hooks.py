"""Tensor-engine instrumentation counters.

The autodiff engine in :mod:`repro.tensor.tensor` calls into the module
singleton :data:`ENGINE` from its two hot entry points: ``Tensor._make``
(every interior graph node) and ``Tensor.backward`` (every reverse sweep).
Both call sites guard on ``ENGINE.enabled`` — a single attribute load — so
the disabled-mode cost is far below the <5% smoke-train budget; the import
direction is strictly ``tensor -> obs`` (this module touches nothing of the
engine), so there is no cycle.

Counters tracked while enabled:

* ``ops`` — forward graph nodes created;
* ``bytes_allocated`` — cumulative output-array bytes of those nodes;
* ``peak_ndarray_bytes`` — largest single output allocation;
* ``backward_sweeps`` / ``backward_nodes`` — reverse passes and the total
  node count they visited;
* ``dispatch`` — per-op registry dispatch counts keyed ``"<op>.<impl>"``
  (e.g. ``"linear.fused"``), recorded by :func:`repro.tensor.registry.call`.

Use :func:`engine_stats` to enable collection for a scoped region::

    with engine_stats() as engine:
        train_graph_method(...)
    journal.log("engine", **engine.snapshot())
"""

from __future__ import annotations

import contextlib

__all__ = ["EngineStats", "ENGINE", "engine_stats"]


class EngineStats:
    """Cheap op/byte/backward counters for the autodiff engine."""

    __slots__ = ("enabled", "ops", "bytes_allocated", "peak_ndarray_bytes",
                 "backward_sweeps", "backward_nodes", "dispatch")

    def __init__(self):
        self.enabled = False
        self.reset()

    def reset(self) -> None:
        self.ops = 0
        self.bytes_allocated = 0
        self.peak_ndarray_bytes = 0
        self.backward_sweeps = 0
        self.backward_nodes = 0
        self.dispatch = {}

    # Called from Tensor._make; keep it branch-light.
    def record_op(self, nbytes: int) -> None:
        self.ops += 1
        self.bytes_allocated += nbytes
        if nbytes > self.peak_ndarray_bytes:
            self.peak_ndarray_bytes = nbytes

    # Called from registry.call with the registry op name and the
    # implementation ("fused" / "reference") dispatch resolved to.
    def record_dispatch(self, name: str, which: str) -> None:
        key = f"{name}.{which}"
        self.dispatch[key] = self.dispatch.get(key, 0) + 1

    # Called once per Tensor.backward with the topo-sorted node count.
    def record_backward(self, num_nodes: int) -> None:
        self.backward_sweeps += 1
        self.backward_nodes += num_nodes

    def snapshot(self) -> dict:
        return {"ops": self.ops,
                "bytes_allocated": self.bytes_allocated,
                "peak_ndarray_bytes": self.peak_ndarray_bytes,
                "backward_sweeps": self.backward_sweeps,
                "backward_nodes": self.backward_nodes,
                "dispatch": dict(self.dispatch)}


ENGINE = EngineStats()


@contextlib.contextmanager
def engine_stats(enabled: bool = True):
    """Reset and (optionally) enable the engine counters for a region.

    Yields :data:`ENGINE`; restores the previous enabled flag on exit but
    keeps the collected counters readable afterwards.  ``enabled=False``
    makes the whole block a no-op, which lets instrumented code keep one
    code path for telemetry-on and telemetry-off runs.
    """
    if not enabled:
        yield ENGINE
        return
    previous = ENGINE.enabled
    ENGINE.reset()
    ENGINE.enabled = True
    try:
        yield ENGINE
    finally:
        ENGINE.enabled = previous
