"""Structured JSONL run journals.

Every training run and benchmark streams its telemetry through one schema:
a run directory containing ``events.jsonl``, one JSON object per line, each
with an ``event`` type from :data:`EVENT_TYPES`, a ``ts`` wall-clock stamp,
and event-specific fields.  The trainer emits ``config`` → per-epoch
``epoch`` (loss / loss_f / loss_g / grad_norm / throughput) → ``spectrum``
(singular values + effective rank, the paper's collapse diagnostic) →
``engine`` / ``metrics`` / ``trace`` snapshots → ``run_end``; benchmarks
emit ``bench_table`` rows.  ``repro report <run-dir>`` renders any journal
back into the text tables of :mod:`repro.utils.tables`.

Events are append-only and flushed per line, so a crashed run still leaves
a readable journal prefix.  All numpy scalars/arrays are coerced to plain
python before serialization; apart from ``ts`` and measured durations the
fields are deterministic under a fixed seed (the schema round-trip tests
rely on this).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Iterable

import numpy as np

__all__ = ["EVENT_TYPES", "JOURNAL_FILENAME", "RunJournal", "read_journal",
           "validate_journal", "events_of", "canonical_events"]

JOURNAL_FILENAME = "events.jsonl"

#: Known event types; ``validate_journal`` rejects anything else so schema
#: drift fails loudly in CI instead of silently producing unreadable runs.
EVENT_TYPES = frozenset({
    "config",       # run hyperparameters, dtype/fused flags, dataset size
    "epoch",        # per-epoch loss (+ loss_f/loss_g), grad_norm, throughput
    "spectrum",     # singular values + effective rank (Figs. 1/5)
    "eval",         # downstream accuracy after training
    "metrics",      # MetricRegistry snapshot
    "trace",        # Tracer span statistics
    "engine",       # tensor-engine op/backward/bytes counters
    "bench_table",  # one benchmark result table
    "note",         # free-form annotation
    "run_end",      # final loss + total seconds; closes the run
})


def _jsonify(value):
    """Coerce numpy scalars/arrays (and Paths) to JSON-native types."""
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Path):
        return str(value)
    raise TypeError(f"{type(value).__name__} is not JSON serializable")


class RunJournal:
    """Append-only JSONL event stream under a run directory.

    Parameters
    ----------
    run_dir:
        Directory to hold ``events.jsonl`` (created if missing).
    append:
        Keep existing events (benchmark sessions accumulate tables);
        the default truncates so each training run starts clean.
    clock:
        Timestamp source; tests inject a constant for byte-identical
        journals.
    """

    def __init__(self, run_dir, *, append: bool = False, clock=time.time):
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.run_dir / JOURNAL_FILENAME
        self._clock = clock
        self._fh: IO[str] | None = self.path.open("a" if append else "w")
        self.num_events = 0

    def log(self, event: str, **fields) -> dict:
        """Write one event line; returns the record as a dict."""
        if event not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event!r}; known: {sorted(EVENT_TYPES)}")
        if self._fh is None:
            raise RuntimeError("journal is closed")
        record = {"event": event, "ts": round(float(self._clock()), 6),
                  **fields}
        self._fh.write(json.dumps(record, default=_jsonify) + "\n")
        self._fh.flush()
        self.num_events += 1
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _journal_path(run_dir) -> Path:
    path = Path(run_dir)
    if path.is_dir():
        path = path / JOURNAL_FILENAME
    return path


def read_journal(run_dir) -> list[dict]:
    """Parse every event line of a run directory (or journal file) in order."""
    path = _journal_path(run_dir)
    events = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def validate_journal(run_dir) -> list[dict]:
    """Read a journal and enforce the schema; returns the events.

    Checks every line parses as a JSON object carrying a known ``event``
    type and a numeric ``ts``.  Raises ``ValueError`` with the offending
    line number otherwise — this is the assertion CI's telemetry smoke
    tier runs against a fresh 2-epoch training journal.
    """
    path = _journal_path(run_dir)
    events: list[dict] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc})") from None
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: event is not an object")
            event = record.get("event")
            if event not in EVENT_TYPES:
                raise ValueError(
                    f"{path}:{lineno}: unknown event type {event!r}")
            ts = record.get("ts")
            if not isinstance(ts, (int, float)):
                raise ValueError(f"{path}:{lineno}: missing numeric 'ts'")
            events.append(record)
    if not events:
        raise ValueError(f"{path}: journal is empty")
    return events


def events_of(events: Iterable[dict], event_type: str) -> list[dict]:
    """Filter a parsed journal down to one event type (in order)."""
    return [e for e in events if e.get("event") == event_type]


#: Fields that legitimately differ between reruns of the same seed:
#: wall-clock stamps, measured durations, throughput derived from them, and
#: the pipeline/eval-shape knobs that are guaranteed not to change any
#: number (the evaluation engine is bit-identical at every worker count).
NONDETERMINISTIC_KEYS = frozenset({
    "ts", "seconds", "total_seconds", "graphs_per_sec", "nodes_per_sec",
    "workers", "prefetch",
    "eval_seconds", "eval_repeat_seconds", "eval_workers", "eval_solver",
})

#: Event types that are timing-only (span statistics) or depend on
#: cache hit/miss patterns rather than on training numbers.
NONDETERMINISTIC_EVENTS = frozenset({"trace", "metrics"})


def canonical_events(events: Iterable[dict]) -> list[dict]:
    """Strip wall-clock/throughput noise for journal equality checks.

    Two runs of the same seed — at different worker counts, or split by a
    checkpoint/resume cycle — must produce *identical* canonical event
    lists.  This is the comparison behind CI's determinism and resume
    smokes and the checkpoint tests.
    """
    canonical = []
    for event in events:
        if event.get("event") in NONDETERMINISTIC_EVENTS:
            continue
        canonical.append({k: v for k, v in event.items()
                          if k not in NONDETERMINISTIC_KEYS})
    return canonical
