"""Nested tracing spans over :class:`repro.utils.timer.Timer`.

A :class:`Tracer` records a tree of wall-clock spans::

    tracer = Tracer()
    with tracer.trace("epoch"):
        with tracer.trace("forward"):
            ...
        with tracer.trace("backward"):
            ...

Each completed span knows its slash-joined path (``"epoch/backward"``), so
repeated spans aggregate naturally: :meth:`Tracer.statistics` groups the
recorded durations by path and condenses them with the same
:func:`repro.utils.timer.lap_statistics` p50/p95 convention the efficiency
tables use.  Disabled tracers short-circuit to a shared null context manager,
so instrumented hot loops cost one attribute check per span when telemetry
is off.

A module-level default tracer backs the free function :func:`trace` for code
that should be *traceable* without threading a tracer through every call
(e.g. :meth:`GraphContrastiveMethod.embed`); it starts disabled.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from ..utils.timer import LapStats, Timer, lap_statistics

__all__ = ["Span", "Tracer", "trace", "default_tracer"]

_NULL = contextlib.nullcontext()


@dataclass
class Span:
    """One completed (or still-open) timed region."""

    name: str
    path: str
    elapsed: float = 0.0
    children: list["Span"] = field(default_factory=list)

    def walk(self):
        """Yield this span and all descendants depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()


class Tracer:
    """Collects a forest of nested spans; cheap no-op when disabled."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.roots: list[Span] = []
        self._stack: list[tuple[Span, Timer]] = []

    @contextlib.contextmanager
    def _record(self, name: str):
        parent_path = self._stack[-1][0].path if self._stack else ""
        span = Span(name=name,
                    path=f"{parent_path}/{name}" if parent_path else name)
        if self._stack:
            self._stack[-1][0].children.append(span)
        else:
            self.roots.append(span)
        timer = Timer()
        self._stack.append((span, timer))
        timer.start()
        try:
            yield span
        finally:
            span.elapsed = timer.stop()
            self._stack.pop()

    def trace(self, name: str):
        """Context manager timing a named span nested under the current one."""
        if not self.enabled:
            return _NULL
        return self._record(name)

    def spans(self):
        """All completed spans (depth-first over every root)."""
        for root in self.roots:
            yield from root.walk()

    def durations(self) -> dict[str, list[float]]:
        """Per-path lists of elapsed seconds, insertion-ordered."""
        grouped: dict[str, list[float]] = {}
        for span in self.spans():
            grouped.setdefault(span.path, []).append(span.elapsed)
        return grouped

    def statistics(self) -> dict[str, LapStats]:
        """Per-path p50/p95 aggregation of the recorded spans."""
        return {path: lap_statistics(samples)
                for path, samples in self.durations().items()}

    def snapshot(self) -> dict:
        """JSON-ready ``{path: {count, total, mean, p50, p95}}``."""
        return {path: {"count": s.count, "total": s.total, "mean": s.mean,
                       "p50": s.p50, "p95": s.p95}
                for path, s in self.statistics().items()}

    def reset(self) -> None:
        self.roots = []
        self._stack = []


# Default tracer for call sites that cannot thread a Tracer through their
# API.  Disabled out of the box: `trace()` then costs one attribute check.
_DEFAULT = Tracer(enabled=False)


def default_tracer() -> Tracer:
    """The module-level tracer behind :func:`trace`."""
    return _DEFAULT


def trace(name: str):
    """Record a span on the default tracer (no-op until it is enabled)."""
    return _DEFAULT.trace(name)
