"""Supervised references: end-to-end GCN (Table V) and raw-feature probes."""

from __future__ import annotations

import numpy as np

from ..datasets import NodeDataset
from ..gnn import GCNEncoder
from ..graph import Graph, adjacency_matrix, gcn_normalize
from ..nn import Adam, Linear
from ..tensor import Tensor, log_softmax, no_grad
from ..utils.seed import seeded_rng

__all__ = ["supervised_gcn_accuracy", "raw_graph_features",
           "raw_node_features"]


def supervised_gcn_accuracy(dataset: NodeDataset, *, hidden_dim: int = 32,
                            epochs: int = 100, lr: float = 1e-2,
                            weight_decay: float = 5e-4,
                            seed: int = 0) -> float:
    """Train a 2-layer GCN end-to-end on the train mask; test accuracy (%)."""
    rng = seeded_rng(seed)
    graph = dataset.graph
    adj = gcn_normalize(adjacency_matrix(graph))
    encoder = GCNEncoder(graph.num_features, hidden_dim, hidden_dim,
                         rng=rng, activation="relu")
    head = Linear(hidden_dim, dataset.num_classes, rng=rng)
    optimizer = Adam(encoder.parameters() + head.parameters(), lr=lr,
                     weight_decay=weight_decay)
    x = Tensor(graph.x)
    labels = dataset.labels()
    train_idx = np.flatnonzero(dataset.train_mask)
    for _ in range(epochs):
        optimizer.zero_grad()
        logits = head(encoder(x, adj))
        log_probs = log_softmax(logits, axis=1)
        nll = -log_probs[train_idx, labels[train_idx]].mean()
        nll.backward()
        optimizer.step()
    with no_grad():
        logits = head(encoder(x, adj)).data
    predictions = logits.argmax(axis=1)
    test_idx = np.flatnonzero(dataset.test_mask)
    return 100.0 * float((predictions[test_idx] == labels[test_idx]).mean())


def raw_graph_features(graphs) -> np.ndarray:
    """Mean-pooled node features per graph (the trivial baseline)."""
    return np.stack([g.x.mean(axis=0) for g in graphs])


def raw_node_features(graph: Graph) -> np.ndarray:
    """Node features as-is ("Raw features" row of Table V)."""
    return graph.x.copy()
