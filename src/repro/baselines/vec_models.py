"""The *2vec baseline family: node2vec, DeepWalk, sub2vec, graph2vec, DGK.

These are the classic unsupervised baselines of Table IV (graph level) and
Table V (node level).  graph2vec and DGK operate on WL subtree "documents";
node2vec/sub2vec embed per-graph walk statistics, which — as in the paper —
makes them weak on graph classification because graphs share no node space.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..graph import Graph
from ..utils.seed import seeded_rng
from .skipgram import biased_walks, random_walks, train_skipgram
from .wl_kernel import wl_relabel

__all__ = ["node2vec_graph_features", "deepwalk_node_embeddings",
           "sub2vec_features", "graph2vec_features", "dgk_features"]


def _neighbor_lists(graph: Graph) -> list[list[int]]:
    adj: list[list[int]] = [[] for _ in range(graph.num_nodes)]
    for u, v in graph.edges:
        adj[int(u)].append(int(v))
        adj[int(v)].append(int(u))
    return adj


def node2vec_graph_features(graphs: Sequence[Graph], *, dim: int = 16,
                            p: float = 1.0, q: float = 0.5,
                            num_walks: int = 2, walk_length: int = 8,
                            seed: int = 0) -> np.ndarray:
    """Per-graph node2vec then mean/max pooling of the node embeddings.

    Each graph gets its own embedding space, so pooled vectors carry only
    weak structural signal — matching node2vec's near-chance Table IV rows.
    """
    rng = seeded_rng(seed)
    out = np.zeros((len(graphs), 2 * dim))
    for i, graph in enumerate(graphs):
        walks = biased_walks(_neighbor_lists(graph), num_walks=num_walks,
                             walk_length=walk_length, p=p, q=q, rng=rng)
        emb = train_skipgram(walks, graph.num_nodes, dim=dim, rng=rng,
                             epochs=1)
        out[i] = np.concatenate([emb.mean(axis=0), emb.max(axis=0)])
    return out


def deepwalk_node_embeddings(graph: Graph, *, dim: int = 32,
                             num_walks: int = 4, walk_length: int = 12,
                             epochs: int = 2, seed: int = 0) -> np.ndarray:
    """DeepWalk node embeddings for one (large) graph (Table V baseline)."""
    rng = seeded_rng(seed)
    walks = random_walks(_neighbor_lists(graph), num_walks=num_walks,
                         walk_length=walk_length, rng=rng)
    return train_skipgram(walks, graph.num_nodes, dim=dim, epochs=epochs,
                          rng=rng)


def sub2vec_features(graphs: Sequence[Graph], *, dim: int = 16,
                     num_walks: int = 6, walk_length: int = 8,
                     seed: int = 0) -> np.ndarray:
    """sub2vec-style: bag of hashed degree-sequence walk patterns + SVD."""
    rng = seeded_rng(seed)
    buckets = 256
    counts = np.zeros((len(graphs), buckets))
    for i, graph in enumerate(graphs):
        neighbors = _neighbor_lists(graph)
        degrees = graph.degrees()
        walks = random_walks(neighbors, num_walks=num_walks,
                             walk_length=walk_length, rng=rng)
        for walk in walks:
            pattern = tuple(int(min(degrees[n], 8)) for n in walk)
            counts[i, hash(pattern) % buckets] += 1.0
    norms = np.linalg.norm(counts, axis=1, keepdims=True)
    norms[norms < 1e-12] = 1.0
    counts /= norms
    return _truncated_svd(counts, dim)


def graph2vec_features(graphs: Sequence[Graph], *, dim: int = 32,
                       iterations: int = 3) -> np.ndarray:
    """graph2vec-style: TF-IDF over WL subtree patterns + truncated SVD."""
    history = wl_relabel(graphs, iterations)
    blocks = []
    for iteration_labels in history[1:]:  # skip raw degrees
        size = 1 + max((max(ls) if ls else 0) for ls in iteration_labels)
        block = np.zeros((len(graphs), size))
        for i, ls in enumerate(iteration_labels):
            for label in ls:
                block[i, label] += 1.0
        blocks.append(block)
    counts = np.concatenate(blocks, axis=1)
    # TF-IDF: damp ubiquitous patterns.
    document_freq = (counts > 0).sum(axis=0)
    idf = np.log((1.0 + len(graphs)) / (1.0 + document_freq)) + 1.0
    tfidf = counts * idf
    norms = np.linalg.norm(tfidf, axis=1, keepdims=True)
    norms[norms < 1e-12] = 1.0
    return _truncated_svd(tfidf / norms, dim)


def dgk_features(graphs: Sequence[Graph], *, dim: int = 32,
                 iterations: int = 3, context_dim: int = 16) -> np.ndarray:
    """Deep Graph Kernel: WL counts reweighted by pattern co-occurrence.

    DGK learns pattern embeddings from their co-occurrence (patterns in the
    same graph are context for each other); we factorize the co-occurrence
    matrix and reweight pattern counts by embedding similarity mass.
    """
    history = wl_relabel(graphs, iterations)
    final = history[-1]
    size = 1 + max((max(ls) if ls else 0) for ls in final)
    counts = np.zeros((len(graphs), size))
    for i, ls in enumerate(final):
        for label in ls:
            counts[i, label] += 1.0
    # Pattern co-occurrence and its low-rank factorization.
    cooc = counts.T @ counts
    u, s, _ = np.linalg.svd(cooc, full_matrices=False)
    k = min(context_dim, len(s))
    pattern_emb = u[:, :k] * np.sqrt(s[:k])
    weighted = counts @ pattern_emb            # (graphs, k)
    combined = np.concatenate([counts, weighted], axis=1)
    norms = np.linalg.norm(combined, axis=1, keepdims=True)
    norms[norms < 1e-12] = 1.0
    return _truncated_svd(combined / norms, dim)


def _truncated_svd(matrix: np.ndarray, dim: int) -> np.ndarray:
    """Rank-``dim`` row embeddings of ``matrix`` via SVD."""
    u, s, _ = np.linalg.svd(matrix, full_matrices=False)
    k = min(dim, len(s))
    out = u[:, :k] * s[:k]
    if k < dim:  # pad so downstream shapes are stable
        out = np.concatenate([out, np.zeros((len(out), dim - k))], axis=1)
    return out
