"""Classic baselines: graph kernels, *2vec models, supervised references."""

from .wl_kernel import wl_features, wl_relabel
from .graphlet import graphlet_features
from .skipgram import biased_walks, random_walks, train_skipgram
from .vec_models import (
    deepwalk_node_embeddings,
    dgk_features,
    graph2vec_features,
    node2vec_graph_features,
    sub2vec_features,
)
from .supervised import (
    raw_graph_features,
    raw_node_features,
    supervised_gcn_accuracy,
)

__all__ = [
    "wl_features", "wl_relabel", "graphlet_features",
    "train_skipgram", "random_walks", "biased_walks",
    "node2vec_graph_features", "deepwalk_node_embeddings",
    "sub2vec_features", "graph2vec_features", "dgk_features",
    "supervised_gcn_accuracy", "raw_graph_features", "raw_node_features",
]
