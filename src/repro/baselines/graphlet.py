"""Graphlet-count features (the "GL" baseline of Table IV).

Exact connected 3-node graphlet counts (wedges, triangles) plus sampled
4-node graphlet type frequencies, normalized per graph.
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from ..graph import Graph
from ..utils.seed import seeded_rng

__all__ = ["graphlet_features"]

# Connected 4-node graphlet types indexed by (edge count, is_star/path/cycle)
_FOUR_NODE_TYPES = 6  # path4, star4, cycle4, tadpole, diamond, clique4


def _classify_4node(adj: np.ndarray) -> int | None:
    """Classify an induced 4-node subgraph into one of 6 connected types."""
    edge_count = int(adj.sum() // 2)
    degrees = tuple(sorted(int(d) for d in adj.sum(axis=0)))
    table = {
        (3, (1, 1, 2, 2)): 0,   # path
        (3, (1, 1, 1, 3)): 1,   # star
        (4, (2, 2, 2, 2)): 2,   # cycle
        (4, (1, 2, 2, 3)): 3,   # tadpole (triangle + pendant)
        (5, (2, 2, 3, 3)): 4,   # diamond
        (6, (3, 3, 3, 3)): 5,   # clique
    }
    return table.get((edge_count, degrees))


def graphlet_features(graphs: Sequence[Graph], *, samples_per_graph: int = 200,
                      seed: int = 0, normalize: bool = True) -> np.ndarray:
    """Per-graph graphlet profile: [wedges, triangles, 6 x 4-node types]."""
    rng = seeded_rng(seed)
    features = np.zeros((len(graphs), 2 + _FOUR_NODE_TYPES))
    for gi, graph in enumerate(graphs):
        n = graph.num_nodes
        neighbors: list[set[int]] = [set() for _ in range(n)]
        for u, v in graph.edges:
            neighbors[int(u)].add(int(v))
            neighbors[int(v)].add(int(u))
        # Exact 3-node counts via neighbour intersections.
        wedges = 0
        triangles = 0
        for u in range(n):
            deg = len(neighbors[u])
            wedges += deg * (deg - 1) // 2
            for v in neighbors[u]:
                if v > u:
                    triangles += len(neighbors[u] & neighbors[v])
        features[gi, 0] = wedges
        # Each triangle {a, b, c} is seen once per unordered pair: 3 times.
        features[gi, 1] = triangles / 3.0
        # Sampled 4-node graphlets.
        if n >= 4:
            for _ in range(samples_per_graph):
                nodes = rng.choice(n, size=4, replace=False)
                adj = np.zeros((4, 4))
                for a, b in combinations(range(4), 2):
                    if int(nodes[b]) in neighbors[int(nodes[a])]:
                        adj[a, b] = adj[b, a] = 1.0
                kind = _classify_4node(adj)
                if kind is not None:
                    features[gi, 2 + kind] += 1.0
    if normalize:
        norms = np.linalg.norm(features, axis=1, keepdims=True)
        norms[norms < 1e-12] = 1.0
        features = features / norms
    return features
