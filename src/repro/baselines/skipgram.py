"""Skip-gram with negative sampling on numpy (shared by the *2vec family)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["train_skipgram", "random_walks", "biased_walks"]


def random_walks(neighbors: Sequence[Sequence[int]], *, num_walks: int,
                 walk_length: int, rng: np.random.Generator) -> list[list[int]]:
    """Uniform random walks from every node (DeepWalk)."""
    walks = []
    n = len(neighbors)
    for _ in range(num_walks):
        for start in range(n):
            walk = [start]
            while len(walk) < walk_length:
                options = neighbors[walk[-1]]
                if not options:
                    break
                walk.append(int(options[int(rng.integers(0, len(options)))]))
            walks.append(walk)
    return walks


def biased_walks(neighbors: Sequence[Sequence[int]], *, num_walks: int,
                 walk_length: int, p: float, q: float,
                 rng: np.random.Generator) -> list[list[int]]:
    """node2vec's second-order biased walks (return p, in-out q)."""
    if p <= 0 or q <= 0:
        raise ValueError("p and q must be positive")
    neighbor_sets = [set(ns) for ns in neighbors]
    walks = []
    n = len(neighbors)
    for _ in range(num_walks):
        for start in range(n):
            walk = [start]
            while len(walk) < walk_length:
                current = walk[-1]
                options = neighbors[current]
                if not options:
                    break
                if len(walk) == 1:
                    walk.append(int(options[int(rng.integers(0, len(options)))]))
                    continue
                previous = walk[-2]
                weights = np.array([
                    1.0 / p if nxt == previous
                    else (1.0 if nxt in neighbor_sets[previous] else 1.0 / q)
                    for nxt in options])
                weights /= weights.sum()
                walk.append(int(rng.choice(options, p=weights)))
            walks.append(walk)
    return walks


def train_skipgram(walks: Sequence[Sequence[int]], vocab_size: int, *,
                   dim: int = 16, window: int = 3, negatives: int = 3,
                   epochs: int = 2, lr: float = 0.05,
                   rng: np.random.Generator) -> np.ndarray:
    """Train skip-gram embeddings with negative sampling; return (V, dim)."""
    if vocab_size < 1:
        raise ValueError("vocab_size must be >= 1")
    emb_in = 0.1 * rng.normal(size=(vocab_size, dim))
    emb_out = 0.1 * rng.normal(size=(vocab_size, dim))
    for epoch in range(epochs):
        step_lr = lr / (1.0 + epoch)
        for walk in walks:
            for i, center in enumerate(walk):
                lo = max(0, i - window)
                hi = min(len(walk), i + window + 1)
                for j in range(lo, hi):
                    if j == i:
                        continue
                    context = walk[j]
                    targets = [context] + list(
                        rng.integers(0, vocab_size, size=negatives))
                    labels = np.zeros(len(targets))
                    labels[0] = 1.0
                    vecs = emb_out[targets]                      # (k, d)
                    scores = vecs @ emb_in[center]
                    probs = 1.0 / (1.0 + np.exp(-scores))
                    errors = (probs - labels)[:, None]           # (k, 1)
                    grad_center = (errors * vecs).sum(axis=0)
                    emb_out[targets] -= step_lr * errors * emb_in[center]
                    emb_in[center] -= step_lr * grad_center
    return emb_in
