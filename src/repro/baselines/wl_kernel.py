"""Weisfeiler-Lehman subtree features (WL kernel, Shervashidze et al. 2011).

The explicit WL feature map: iterated neighbourhood label refinement, with
each graph represented by its histogram of compressed labels across
iterations.  Embeddings feed the same SVM evaluation protocol as the learned
methods, which is how Table IV compares kernels and GCL models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..graph import Graph

__all__ = ["wl_relabel", "wl_features"]


def _initial_labels(graph: Graph) -> list[int]:
    """Degree-based initial labels (TU social datasets are unlabelled)."""
    return [int(d) for d in graph.degrees()]


def wl_relabel(graphs: Sequence[Graph], iterations: int = 3
               ) -> list[list[list[int]]]:
    """Run WL refinement; return per-iteration node labels per graph.

    Label ids are compressed through a shared dictionary so identical
    subtree patterns in different graphs map to the same id.
    """
    if iterations < 0:
        raise ValueError(f"iterations must be >= 0, got {iterations}")
    labels = [_initial_labels(g) for g in graphs]
    # Compress initial labels to dense ids.
    vocabulary: dict[object, int] = {}
    compressed0 = [[vocabulary.setdefault(l, len(vocabulary)) for l in ls]
                   for ls in labels]
    history = [compressed0]
    neighbor_lists = []
    for g in graphs:
        adj: list[list[int]] = [[] for _ in range(g.num_nodes)]
        for u, v in g.edges:
            adj[int(u)].append(int(v))
            adj[int(v)].append(int(u))
        neighbor_lists.append(adj)

    current = compressed0
    for _ in range(iterations):
        vocabulary = {}
        next_labels = []
        for graph_labels, adj in zip(current, neighbor_lists):
            refined = []
            for node, label in enumerate(graph_labels):
                signature = (label, tuple(sorted(graph_labels[n]
                                                 for n in adj[node])))
                refined.append(vocabulary.setdefault(signature,
                                                     len(vocabulary)))
            next_labels.append(refined)
        history.append(next_labels)
        current = next_labels
    return history


def wl_features(graphs: Sequence[Graph], iterations: int = 3,
                normalize: bool = True) -> np.ndarray:
    """Explicit WL feature map: concatenated label histograms."""
    history = wl_relabel(graphs, iterations)
    blocks = []
    for iteration_labels in history:
        size = 1 + max((max(ls) if ls else 0) for ls in iteration_labels)
        block = np.zeros((len(graphs), size))
        for i, ls in enumerate(iteration_labels):
            for label in ls:
                block[i, label] += 1.0
        blocks.append(block)
    features = np.concatenate(blocks, axis=1)
    if normalize:
        norms = np.linalg.norm(features, axis=1, keepdims=True)
        norms[norms < 1e-12] = 1.0
        features = features / norms
    return features
