"""Graph- and node-level encoders used by every contrastive method.

:class:`GINEncoder` matches the encoder GraphCL/JOAO/SimGRACE/InfoGraph use
(multi-layer GIN with jumping-knowledge concatenation and sum readout);
:class:`GCNEncoder` matches the two-layer GCN of GRACE/GCA/BGRL/MVGRL for
node-level tasks.  Both accept feature/adjacency overrides so augmented or
diffusion views reuse the same weights.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph import GraphBatch
from ..nn import Module, ModuleList, PReLU
from ..tensor import Tensor, as_tensor, concat
from .layers import GCNConv, GINConv
from .readout import readout

__all__ = ["GINEncoder", "GCNEncoder"]


class GINEncoder(Module):
    """Multi-layer GIN encoder producing node and graph embeddings.

    The graph embedding concatenates the readout of every layer (jumping
    knowledge), so its dimensionality is ``num_layers * hidden_dim``.
    """

    def __init__(self, in_features: int, hidden_dim: int, num_layers: int = 3,
                 *, rng: np.random.Generator, readout_mode: str = "sum",
                 batch_norm: bool = True):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one GIN layer")
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.readout_mode = readout_mode
        layers = [GINConv(in_features, hidden_dim, rng=rng,
                          batch_norm=batch_norm)]
        layers.extend(GINConv(hidden_dim, hidden_dim, rng=rng,
                              batch_norm=batch_norm)
                      for _ in range(num_layers - 1))
        self.layers = ModuleList(layers)

    @property
    def out_features(self) -> int:
        """Dimensionality of the graph embedding (JK concat)."""
        return self.hidden_dim * self.num_layers

    def node_embeddings(self, x: Tensor, adj: sp.spmatrix) -> list[Tensor]:
        """Per-layer node embeddings (post-activation)."""
        outputs = []
        h = as_tensor(x)
        for layer in self.layers:
            h = layer(h, adj).relu()
            outputs.append(h)
        return outputs

    def forward(self, batch: GraphBatch, x: Tensor | None = None,
                adj: sp.spmatrix | None = None) -> tuple[Tensor, Tensor]:
        """Return ``(node_embedding, graph_embedding)`` for a batch.

        ``x``/``adj`` default to the batch's own features and raw adjacency;
        pass overrides to encode an augmented view with shared weights.
        """
        if x is None:
            x = Tensor(batch.x)
        if adj is None:
            adj = batch.adjacency("none")
        per_layer = self.node_embeddings(x, adj)
        pooled = [readout(h, batch.node_to_graph, batch.num_graphs,
                          self.readout_mode) for h in per_layer]
        graph_embedding = concat(pooled, axis=1)
        node_embedding = concat(per_layer, axis=1)
        return node_embedding, graph_embedding


class GCNEncoder(Module):
    """Two-to-k layer GCN encoder for node-level contrastive methods."""

    def __init__(self, in_features: int, hidden_dim: int, out_dim: int,
                 num_layers: int = 2, *, rng: np.random.Generator,
                 activation: str = "prelu"):
        super().__init__()
        if num_layers < 1:
            raise ValueError("need at least one GCN layer")
        self.out_features = out_dim
        dims = ([in_features] + [hidden_dim] * (num_layers - 1) + [out_dim])
        self.layers = ModuleList([
            GCNConv(dims[i], dims[i + 1], rng=rng)
            for i in range(num_layers)])
        if activation == "prelu":
            self.activations = ModuleList([PReLU() for _ in range(num_layers)])
        elif activation == "relu":
            self.activations = None
        else:
            raise ValueError(f"unknown activation {activation!r}")

    def forward(self, x: Tensor, adj: sp.spmatrix) -> Tensor:
        h = as_tensor(x)
        for i, layer in enumerate(self.layers):
            h = layer(h, adj)
            if self.activations is not None:
                h = self.activations[i](h)
            else:
                h = h.relu()
        return h
