"""Permutation-invariant graph readouts over block-diagonal batches."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, segment_max, segment_mean, segment_sum

__all__ = ["readout"]

_READOUTS = {
    "sum": segment_sum,
    "mean": segment_mean,
    "max": segment_max,
}


def readout(node_embeddings: Tensor, node_to_graph: np.ndarray,
            num_graphs: int, mode: str = "sum") -> Tensor:
    """Pool node embeddings into per-graph embeddings.

    Parameters
    ----------
    node_embeddings:
        ``(num_nodes, d)`` tensor from the encoder.
    node_to_graph:
        Batch assignment vector mapping each node to its graph index.
    num_graphs:
        Number of graphs in the batch.
    mode:
        One of ``"sum"`` (GIN default), ``"mean"``, ``"max"``.
    """
    try:
        fn = _READOUTS[mode]
    except KeyError:
        raise ValueError(
            f"unknown readout {mode!r}; choose from {sorted(_READOUTS)}")
    return fn(node_embeddings, node_to_graph, num_graphs)
