"""Permutation-invariant graph readouts over block-diagonal batches."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, call, segment_max, segment_sum

__all__ = ["readout"]


def _mean_readout(values: Tensor, segment_ids: np.ndarray,
                  num_segments: int) -> Tensor:
    """Mean readout via the op registry (fused single node by default)."""
    return call("segment_mean", values, segment_ids, num_segments)


_READOUTS = {
    "sum": segment_sum,
    "mean": _mean_readout,
    "max": segment_max,
}


def readout(node_embeddings: Tensor, node_to_graph: np.ndarray,
            num_graphs: int, mode: str = "sum") -> Tensor:
    """Pool node embeddings into per-graph embeddings.

    Parameters
    ----------
    node_embeddings:
        ``(num_nodes, d)`` tensor from the encoder.
    node_to_graph:
        Batch assignment vector mapping each node to its graph index.
    num_graphs:
        Number of graphs in the batch.
    mode:
        One of ``"sum"`` (GIN default), ``"mean"``, ``"max"``.
    """
    try:
        fn = _READOUTS[mode]
    except KeyError:
        raise ValueError(
            f"unknown readout {mode!r}; choose from {sorted(_READOUTS)}")
    return fn(node_embeddings, node_to_graph, num_graphs)
