"""Projection heads mapping embeddings into the contrastive space."""

from __future__ import annotations

import numpy as np

from ..nn import MLP, Module
from ..tensor import Tensor

__all__ = ["ProjectionHead"]


class ProjectionHead(Module):
    """Two-layer MLP projection head (SimCLR-style ``Proj`` in the paper)."""

    def __init__(self, in_features: int, out_features: int | None = None, *,
                 rng: np.random.Generator, hidden_features: int | None = None):
        super().__init__()
        out = out_features if out_features is not None else in_features
        hidden = hidden_features if hidden_features is not None else in_features
        self.mlp = MLP([in_features, hidden, out], rng=rng)
        self.out_features = out

    def forward(self, x: Tensor) -> Tensor:
        return self.mlp(x)
