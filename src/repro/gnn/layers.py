"""Message-passing layers: GCN (Kipf & Welling) and GIN (Xu et al.).

Both operate on a precomputed scipy-sparse adjacency and a dense node-feature
tensor; aggregation is one sparse matmul, which keeps the autodiff graph
small and the single-CPU runtime reasonable.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..nn import Linear, MLP, Module, Parameter
from ..tensor import Tensor, spmm

__all__ = ["GCNConv", "GINConv", "SAGEConv"]


class GCNConv(Module):
    """Graph convolution ``H' = A_norm H W + b``.

    The caller supplies the normalized adjacency (usually
    ``D^-1/2 (A+I) D^-1/2``) so the same layer works on augmented and
    diffusion views.
    """

    def __init__(self, in_features: int, out_features: int, *,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.linear = Linear(in_features, out_features, bias=bias, rng=rng)

    def forward(self, x: Tensor, adj: sp.spmatrix) -> Tensor:
        return self.linear(spmm(adj, x))


class GINConv(Module):
    """Graph isomorphism layer ``H' = MLP((1 + eps) H + A H)``.

    ``eps`` is learned (as in GIN-eps).  The adjacency here should be the raw
    symmetric adjacency without self loops; the ``(1 + eps)`` term plays the
    self-connection role.
    """

    def __init__(self, in_features: int, out_features: int, *,
                 rng: np.random.Generator, hidden_features: int | None = None,
                 batch_norm: bool = True):
        super().__init__()
        hidden = hidden_features if hidden_features is not None else out_features
        self.mlp = MLP([in_features, hidden, out_features], rng=rng,
                       batch_norm=batch_norm)
        self.eps = Parameter(np.zeros(1))

    def forward(self, x: Tensor, adj: sp.spmatrix) -> Tensor:
        aggregated = spmm(adj, x)
        return self.mlp(x * (self.eps + 1.0) + aggregated)


class SAGEConv(Module):
    """GraphSAGE-mean layer ``H' = W_self H + W_neigh (D^-1 A) H``."""

    def __init__(self, in_features: int, out_features: int, *,
                 rng: np.random.Generator):
        super().__init__()
        self.self_linear = Linear(in_features, out_features, rng=rng)
        self.neigh_linear = Linear(in_features, out_features, bias=False,
                                   rng=rng)

    def forward(self, x: Tensor, adj_row_norm: sp.spmatrix) -> Tensor:
        return self.self_linear(x) + self.neigh_linear(spmm(adj_row_norm, x))
