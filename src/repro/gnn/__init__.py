"""Graph neural network layers, encoders, readouts, projection heads."""

from .layers import GCNConv, GINConv, SAGEConv
from .readout import readout
from .encoders import GCNEncoder, GINEncoder
from .projection import ProjectionHead

__all__ = ["GCNConv", "GINConv", "SAGEConv", "readout", "GINEncoder",
           "GCNEncoder", "ProjectionHead"]
