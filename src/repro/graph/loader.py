"""Minibatch iteration over graph datasets."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .batch import GraphBatch
from .graph import Graph

__all__ = ["GraphLoader"]


class GraphLoader:
    """Yield :class:`GraphBatch` minibatches, optionally shuffled per epoch."""

    def __init__(self, graphs: Sequence[Graph], batch_size: int,
                 shuffle: bool = True,
                 rng: np.random.Generator | None = None):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.graphs = list(graphs)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        return (len(self.graphs) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[GraphBatch]:
        order = np.arange(len(self.graphs))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start:start + self.batch_size]
            yield GraphBatch([self.graphs[i] for i in chunk])
