"""Minibatch iteration over graph datasets."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..utils.seed import seeded_rng
from .batch import GraphBatch
from .graph import Graph

__all__ = ["GraphLoader"]


class GraphLoader:
    """Yield :class:`GraphBatch` minibatches, optionally shuffled per epoch.

    Graphs are held in an object ndarray so each batch is a single fancy
    index into the shuffled order instead of a per-batch Python list
    rebuild.  ``seed=`` derives the shuffle generator through
    :func:`repro.utils.seed.seeded_rng` (mutually exclusive with passing an
    explicit ``rng=``); ``drop_last=`` discards a trailing partial batch so
    every yielded batch has exactly ``batch_size`` graphs.
    """

    def __init__(self, graphs: Sequence[Graph], batch_size: int,
                 shuffle: bool = True,
                 rng: np.random.Generator | None = None,
                 seed: int | None = None,
                 drop_last: bool = False):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if rng is not None and seed is not None:
            raise ValueError("pass either rng= or seed=, not both")
        self.graphs = np.empty(len(graphs), dtype=object)
        self.graphs[:] = list(graphs)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        if rng is None:
            rng = seeded_rng(seed)
        self._rng = rng

    def __len__(self) -> int:
        if self.drop_last:
            return len(self.graphs) // self.batch_size
        return (len(self.graphs) + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[GraphBatch]:
        order = np.arange(len(self.graphs))
        if self.shuffle:
            self._rng.shuffle(order)
        stop = len(order)
        if self.drop_last:
            stop = (stop // self.batch_size) * self.batch_size
        for start in range(0, stop, self.batch_size):
            yield GraphBatch(self.graphs[order[start:start + self.batch_size]])
