"""Graph statistics used for dataset validation and reporting.

These diagnose the synthetic generators: planted class structure should
show up in density/clustering differences between classes, and the
registry's Table-I style statistics are computed from here.
"""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = ["density", "clustering_coefficient", "degree_histogram",
           "connected_components", "graph_summary"]


def density(graph: Graph) -> float:
    """Edge density ``2m / (n (n-1))``."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def clustering_coefficient(graph: Graph) -> float:
    """Global clustering coefficient ``3 * triangles / wedges``."""
    n = graph.num_nodes
    neighbors: list[set[int]] = [set() for _ in range(n)]
    for u, v in graph.edges:
        neighbors[int(u)].add(int(v))
        neighbors[int(v)].add(int(u))
    wedges = 0
    triangle_paths = 0
    for u in range(n):
        deg = len(neighbors[u])
        wedges += deg * (deg - 1) // 2
        for v in neighbors[u]:
            if v > u:
                triangle_paths += len(neighbors[u] & neighbors[v])
    if wedges == 0:
        return 0.0
    # Each triangle contributes 3 closed wedges and is counted once per
    # unordered adjacent pair (3 times) in triangle_paths.
    return triangle_paths / wedges


def degree_histogram(graph: Graph, max_degree: int | None = None) -> np.ndarray:
    """Counts of node degrees 0..max (inclusive)."""
    degrees = graph.degrees()
    top = int(degrees.max()) if graph.num_nodes else 0
    if max_degree is not None:
        degrees = np.minimum(degrees, max_degree)
        top = max_degree
    return np.bincount(degrees, minlength=top + 1)


def connected_components(graph: Graph) -> int:
    """Number of connected components (union-find)."""
    parent = list(range(graph.num_nodes))

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for u, v in graph.edges:
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[ru] = rv
    return len({find(i) for i in range(graph.num_nodes)})


def graph_summary(graph: Graph) -> dict[str, float]:
    """One-line structural summary of a graph."""
    degrees = graph.degrees()
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "density": density(graph),
        "clustering": clustering_coefficient(graph),
        "components": connected_components(graph),
        "max_degree": int(degrees.max()) if graph.num_nodes else 0,
        "mean_degree": float(degrees.mean()) if graph.num_nodes else 0.0,
    }
