"""Graph data structures, batching, adjacency, and diffusion."""

from .graph import Graph
from .batch import GraphBatch
from .adjacency import (
    add_self_loops,
    adjacency_matrix,
    gcn_normalize,
    row_normalize,
)
from .diffusion import heat_diffusion, ppr_diffusion, sparsify_top_k
from .loader import GraphLoader
from .stats import (
    clustering_coefficient,
    connected_components,
    degree_histogram,
    density,
    graph_summary,
)

__all__ = [
    "Graph", "GraphBatch", "GraphLoader",
    "adjacency_matrix", "gcn_normalize", "row_normalize", "add_self_loops",
    "ppr_diffusion", "heat_diffusion", "sparsify_top_k",
    "density", "clustering_coefficient", "degree_histogram",
    "connected_components", "graph_summary",
]
