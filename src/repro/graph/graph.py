"""The in-memory graph container used throughout the library.

A :class:`Graph` stores node features, an undirected edge list, and an
optional label — the same information PyG's ``Data`` object carries for the
paper's workloads.  Edges are stored canonically (each undirected edge once,
``u < v``); adjacency construction materializes both directions.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = ["Graph"]


@dataclass
class Graph:
    """An attributed, undirected graph.

    Attributes
    ----------
    num_nodes:
        Node count; node ids are ``0..num_nodes-1``.
    edges:
        Integer array of shape ``(E, 2)`` with each undirected edge stored
        once (``u < v``, no self loops, no duplicates).
    x:
        Node feature matrix of shape ``(num_nodes, d)``.
    y:
        Optional integer class label (graph-level tasks) or ``None``.
    node_y:
        Optional per-node labels of shape ``(num_nodes,)`` (node-level tasks).
    """

    num_nodes: int
    edges: np.ndarray
    x: np.ndarray
    y: int | None = None
    node_y: np.ndarray | None = None

    def __post_init__(self):
        self.edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        self.x = np.asarray(self.x, dtype=np.float64)
        if self.x.shape[0] != self.num_nodes:
            raise ValueError(
                f"feature rows ({self.x.shape[0]}) != num_nodes "
                f"({self.num_nodes})")
        if self.edges.size and self.edges.max() >= self.num_nodes:
            raise ValueError("edge endpoint out of range")
        if self.edges.size and (self.edges[:, 0] == self.edges[:, 1]).any():
            raise ValueError("self loops are not allowed in the edge list")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.edges)

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def degrees(self) -> np.ndarray:
        """Undirected node degrees."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        if self.edges.size:
            np.add.at(deg, self.edges[:, 0], 1)
            np.add.at(deg, self.edges[:, 1], 1)
        return deg

    def edge_set(self) -> set[tuple[int, int]]:
        """Canonical (u < v) edge tuples as a set."""
        return {(int(min(u, v)), int(max(u, v))) for u, v in self.edges}

    def copy(self) -> "Graph":
        return Graph(self.num_nodes, self.edges.copy(), self.x.copy(),
                     self.y,
                     None if self.node_y is None else self.node_y.copy())

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @staticmethod
    def canonical_edges(edges: np.ndarray) -> np.ndarray:
        """Deduplicate and canonicalize an edge array to (u < v) form."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size == 0:
            return edges
        edges = edges[edges[:, 0] != edges[:, 1]]
        lo = edges.min(axis=1)
        hi = edges.max(axis=1)
        canonical = np.stack([lo, hi], axis=1)
        return np.unique(canonical, axis=0)

    @classmethod
    def from_networkx(cls, g: nx.Graph, x: np.ndarray | None = None,
                      y: int | None = None) -> "Graph":
        """Build from a networkx graph (nodes relabelled to 0..n-1)."""
        g = nx.convert_node_labels_to_integers(g)
        n = g.number_of_nodes()
        edges = cls.canonical_edges(np.array(list(g.edges()), dtype=np.int64)
                                    if g.number_of_edges() else
                                    np.empty((0, 2), dtype=np.int64))
        if x is None:
            # Default feature: normalized degree (one column), a common
            # fallback for featureless social-network datasets.
            deg = np.zeros(n)
            for node, d in g.degree():
                deg[node] = d
            x = deg.reshape(-1, 1) / max(deg.max(), 1.0)
        return cls(n, edges, x, y)

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(map(tuple, self.edges))
        return g

    def subgraph(self, nodes: np.ndarray) -> "Graph":
        """Induced subgraph on ``nodes`` (relabelled to 0..k-1)."""
        nodes = np.asarray(sorted(set(int(n) for n in nodes)), dtype=np.int64)
        index_of = {int(old): new for new, old in enumerate(nodes)}
        keep = [(index_of[int(u)], index_of[int(v)]) for u, v in self.edges
                if int(u) in index_of and int(v) in index_of]
        edges = (np.array(keep, dtype=np.int64) if keep
                 else np.empty((0, 2), dtype=np.int64))
        node_y = None if self.node_y is None else self.node_y[nodes]
        return Graph(len(nodes), edges, self.x[nodes], self.y, node_y)
