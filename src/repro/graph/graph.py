"""The in-memory graph container used throughout the library.

A :class:`Graph` stores node features, an undirected edge list, and an
optional label — the same information PyG's ``Data`` object carries for the
paper's workloads.  Edges are stored canonically (each undirected edge once,
``u < v``); adjacency construction materializes both directions.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

__all__ = ["Graph"]


@dataclass
class Graph:
    """An attributed, undirected graph.

    Attributes
    ----------
    num_nodes:
        Node count; node ids are ``0..num_nodes-1``.
    edges:
        Integer array of shape ``(E, 2)`` with each undirected edge stored
        once (``u < v``, no self loops, no duplicates).
    x:
        Node feature matrix of shape ``(num_nodes, d)``.
    y:
        Optional integer class label (graph-level tasks) or ``None``.
    node_y:
        Optional per-node labels of shape ``(num_nodes,)`` (node-level tasks).
    """

    num_nodes: int
    edges: np.ndarray
    x: np.ndarray
    y: int | None = None
    node_y: np.ndarray | None = None

    def __post_init__(self):
        self.edges = np.asarray(self.edges, dtype=np.int64).reshape(-1, 2)
        self.x = np.asarray(self.x, dtype=np.float64)
        if self.x.shape[0] != self.num_nodes:
            raise ValueError(
                f"feature rows ({self.x.shape[0]}) != num_nodes "
                f"({self.num_nodes})")
        if self.edges.size and (self.edges.min() < 0
                                or self.edges.max() >= self.num_nodes):
            raise ValueError("edge endpoint out of range")
        if self.edges.size and (self.edges[:, 0] == self.edges[:, 1]).any():
            raise ValueError("self loops are not allowed in the edge list")

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return len(self.edges)

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def degrees(self) -> np.ndarray:
        """Undirected node degrees."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        if self.edges.size:
            np.add.at(deg, self.edges[:, 0], 1)
            np.add.at(deg, self.edges[:, 1], 1)
        return deg

    def edge_set(self) -> set[tuple[int, int]]:
        """Canonical (u < v) edge tuples as a set."""
        if not self.edges.size:
            return set()
        lo = self.edges.min(axis=1)
        hi = self.edges.max(axis=1)
        return set(zip(lo.tolist(), hi.tolist()))

    def copy(self) -> "Graph":
        return Graph._from_parts(
            self.num_nodes, self.edges.copy(), self.x.copy(), self.y,
            None if self.node_y is None else self.node_y.copy())

    @classmethod
    def _from_parts(cls, num_nodes: int, edges: np.ndarray, x: np.ndarray,
                    y: int | None, node_y: np.ndarray | None) -> "Graph":
        """Internal constructor for data already in validated, canonical
        form (skips ``__post_init__``'s conversions and checks)."""
        graph = object.__new__(cls)
        graph.num_nodes = num_nodes
        graph.edges = edges
        graph.x = x
        graph.y = y
        graph.node_y = node_y
        return graph

    # ------------------------------------------------------------------
    # Construction / conversion
    # ------------------------------------------------------------------
    @staticmethod
    def canonical_edges(edges: np.ndarray) -> np.ndarray:
        """Deduplicate and canonicalize an edge array to (u < v) form."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size == 0:
            return edges
        edges = edges[edges[:, 0] != edges[:, 1]]
        lo = edges.min(axis=1)
        hi = edges.max(axis=1)
        if not len(lo):
            return np.empty((0, 2), dtype=np.int64)
        # Row-wise unique via a scalar key: lexicographic order on (lo, hi)
        # equals numeric order on lo * base + hi for any base > max(hi), so
        # this matches np.unique(..., axis=0) without its slow void-view sort.
        base = int(hi.max()) + 1
        keys = np.unique(lo * base + hi)
        return np.stack([keys // base, keys % base], axis=1)

    @classmethod
    def from_networkx(cls, g: nx.Graph, x: np.ndarray | None = None,
                      y: int | None = None) -> "Graph":
        """Build from a networkx graph (nodes relabelled to 0..n-1)."""
        g = nx.convert_node_labels_to_integers(g)
        n = g.number_of_nodes()
        edges = cls.canonical_edges(np.array(list(g.edges()), dtype=np.int64)
                                    if g.number_of_edges() else
                                    np.empty((0, 2), dtype=np.int64))
        if x is None:
            # Default feature: normalized degree (one column), a common
            # fallback for featureless social-network datasets.
            deg = np.zeros(n)
            for node, d in g.degree():
                deg[node] = d
            x = deg.reshape(-1, 1) / max(deg.max(), 1.0)
        return cls(n, edges, x, y)

    def to_networkx(self) -> nx.Graph:
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        g.add_edges_from(map(tuple, self.edges))
        return g

    def subgraph(self, nodes: np.ndarray) -> "Graph":
        """Induced subgraph on ``nodes`` (relabelled to 0..k-1)."""
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        new_index = np.full(self.num_nodes, -1, dtype=np.int64)
        new_index[nodes] = np.arange(len(nodes))
        if self.edges.size:
            relabelled = new_index[self.edges]
            edges = relabelled[(relabelled >= 0).all(axis=1)]
        else:
            edges = np.empty((0, 2), dtype=np.int64)
        node_y = None if self.node_y is None else self.node_y[nodes]
        # Relabelling preserves canonical form (nodes ascending keeps u < v),
        # so the validated fast constructor applies.
        return Graph._from_parts(len(nodes), edges, self.x[nodes], self.y,
                                 node_y)
