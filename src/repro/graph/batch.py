"""Block-diagonal batching of graphs, mirroring PyG's ``Batch``.

Contrastive methods process minibatches of graphs in one forward pass; the
batch concatenates node features, offsets edge indices, and keeps a
``node_to_graph`` vector so readout can segment node embeddings back into
per-graph embeddings.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .adjacency import adjacency_matrix, gcn_normalize
from .graph import Graph

__all__ = ["GraphBatch"]


class GraphBatch:
    """A batch of graphs merged into one disconnected graph."""

    def __init__(self, graphs: Sequence[Graph]):
        if not graphs:
            raise ValueError("cannot batch an empty list of graphs")
        self.graphs = list(graphs)
        self.num_graphs = len(graphs)
        sizes = np.array([g.num_nodes for g in graphs], dtype=np.int64)
        self.node_offsets = np.concatenate([[0], np.cumsum(sizes)])
        self.num_nodes = int(self.node_offsets[-1])
        self.x = np.concatenate([g.x for g in graphs], axis=0)
        self.node_to_graph = np.repeat(np.arange(self.num_graphs), sizes)
        shifted = [g.edges + off
                   for g, off in zip(graphs, self.node_offsets[:-1])
                   if g.num_edges]
        self.edges = (np.concatenate(shifted, axis=0) if shifted
                      else np.empty((0, 2), dtype=np.int64))
        self.labels = np.array(
            [(-1 if g.y is None else g.y) for g in graphs], dtype=np.int64)
        self._adj_cache: dict[str, sp.csr_matrix] = {}

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def _as_graph(self) -> Graph:
        return Graph(self.num_nodes, self.edges, self.x)

    def adjacency(self, normalization: str = "gcn") -> sp.csr_matrix:
        """Return the (cached) block-diagonal adjacency.

        ``normalization`` is one of ``"none"`` (raw symmetric A), ``"gcn"``
        (``D^-1/2 (A+I) D^-1/2``), or ``"self_loops"`` (``A + I``).
        """
        if normalization not in ("none", "gcn", "self_loops"):
            raise ValueError(f"unknown normalization: {normalization!r}")
        if normalization not in self._adj_cache:
            raw = adjacency_matrix(self._as_graph())
            if normalization == "none":
                self._adj_cache[normalization] = raw
            elif normalization == "self_loops":
                from .adjacency import add_self_loops
                self._adj_cache[normalization] = add_self_loops(raw)
            else:
                self._adj_cache[normalization] = gcn_normalize(raw)
        return self._adj_cache[normalization]

    def graph_sizes(self) -> np.ndarray:
        return np.diff(self.node_offsets)
