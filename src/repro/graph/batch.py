"""Block-diagonal batching of graphs, mirroring PyG's ``Batch``.

Contrastive methods process minibatches of graphs in one forward pass; the
batch concatenates node features, offsets edge indices, and keeps a
``node_to_graph`` vector so readout can segment node embeddings back into
per-graph embeddings.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .adjacency import NORMALIZATIONS, normalized_adjacency
from .graph import Graph

__all__ = ["GraphBatch"]


class GraphBatch:
    """A batch of graphs merged into one disconnected graph."""

    def __init__(self, graphs: Sequence[Graph]):
        # len() rather than truthiness: ``graphs`` may be an object ndarray
        # (fancy-indexed by the loader), whose bool() is ambiguous.
        if len(graphs) == 0:
            raise ValueError("cannot batch an empty list of graphs")
        self.graphs = list(graphs)
        self.num_graphs = len(graphs)
        sizes = np.array([g.num_nodes for g in graphs], dtype=np.int64)
        self.node_offsets = np.concatenate([[0], np.cumsum(sizes)])
        self.num_nodes = int(self.node_offsets[-1])
        self.x = np.concatenate([g.x for g in graphs], axis=0)
        self.node_to_graph = np.repeat(np.arange(self.num_graphs), sizes)
        shifted = [g.edges + off
                   for g, off in zip(graphs, self.node_offsets[:-1])
                   if g.num_edges]
        self.edges = (np.concatenate(shifted, axis=0) if shifted
                      else np.empty((0, 2), dtype=np.int64))
        self.labels = np.array(
            [(-1 if g.y is None else g.y) for g in graphs], dtype=np.int64)
        self._adj_cache: dict[str, sp.csr_matrix] = {}

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def _as_graph(self) -> Graph:
        return Graph(self.num_nodes, self.edges, self.x)

    def adjacency(self, normalization: str = "gcn") -> sp.csr_matrix:
        """Return the (cached) block-diagonal adjacency.

        ``normalization`` is one of ``"none"`` (raw symmetric A), ``"gcn"``
        (``D^-1/2 (A+I) D^-1/2``), ``"self_loops"`` (``A + I``), or
        ``"row"`` (``D^-1 A``).

        When a :class:`repro.pipeline.StructureCache` is active, the batch
        matrix is assembled as ``block_diag`` of per-graph cached matrices.
        Every supported normalization is block-local (degrees never cross
        graph boundaries in a disconnected batch), so the assembled matrix
        is entrywise identical to normalizing the whole batch at once —
        while per-graph pieces persist across epochs and batch compositions.
        """
        if normalization not in NORMALIZATIONS:
            raise ValueError(f"unknown normalization: {normalization!r}")
        if normalization not in self._adj_cache:
            from ..pipeline.cache import active_structure_cache

            cache = active_structure_cache()
            if cache is not None:
                blocks = [cache.adjacency(g, normalization)
                          for g in self.graphs]
                assembled = sp.block_diag(blocks, format="csr")
            else:
                assembled = normalized_adjacency(self._as_graph(),
                                                 normalization)
            self._adj_cache[normalization] = assembled
        return self._adj_cache[normalization]

    def graph_sizes(self) -> np.ndarray:
        return np.diff(self.node_offsets)
