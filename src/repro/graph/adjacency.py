"""Sparse adjacency construction and normalizations for message passing."""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..tensor.dtype import get_default_dtype
from .graph import Graph

__all__ = ["adjacency_matrix", "gcn_normalize", "row_normalize",
           "add_self_loops", "normalized_adjacency", "NORMALIZATIONS"]

#: Normalization names accepted by :func:`normalized_adjacency` and
#: :meth:`repro.graph.batch.GraphBatch.adjacency`.
NORMALIZATIONS = ("none", "gcn", "self_loops", "row")


def adjacency_matrix(graph: Graph, self_loops: bool = False) -> sp.csr_matrix:
    """Symmetric sparse adjacency (both edge directions materialized)."""
    n = graph.num_nodes
    dtype = get_default_dtype()
    if graph.num_edges:
        rows = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
        cols = np.concatenate([graph.edges[:, 1], graph.edges[:, 0]])
        data = np.ones(len(rows), dtype=dtype)
        adj = sp.csr_matrix((data, (rows, cols)), shape=(n, n))
    else:
        adj = sp.csr_matrix((n, n), dtype=dtype)
    if self_loops:
        adj = add_self_loops(adj)
    return adj


def add_self_loops(adj: sp.spmatrix) -> sp.csr_matrix:
    """Return ``A + I``."""
    return (adj + sp.identity(adj.shape[0], format="csr")).tocsr()


def gcn_normalize(adj: sp.spmatrix, self_loops: bool = True) -> sp.csr_matrix:
    """Kipf-GCN symmetric normalization ``D^-1/2 (A + I) D^-1/2``."""
    if self_loops:
        adj = add_self_loops(adj)
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.where(degrees > 0, degrees ** -0.5, 0.0)
    d_inv = sp.diags(inv_sqrt)
    return (d_inv @ adj @ d_inv).tocsr()


def row_normalize(adj: sp.spmatrix) -> sp.csr_matrix:
    """Random-walk normalization ``D^-1 A``."""
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.where(degrees > 0, 1.0 / degrees, 0.0)
    return (sp.diags(inv) @ adj).tocsr()


def normalized_adjacency(graph: Graph,
                         normalization: str = "none") -> sp.csr_matrix:
    """One-stop adjacency construction under a named normalization.

    This is the single dispatch point shared by :class:`GraphBatch` and the
    pipeline structure cache, so the name → operator mapping can never drift
    between the cached and uncached paths.
    """
    if normalization not in NORMALIZATIONS:
        raise ValueError(f"unknown normalization: {normalization!r}")
    raw = adjacency_matrix(graph)
    if normalization == "none":
        return raw
    if normalization == "self_loops":
        return add_self_loops(raw)
    if normalization == "row":
        return row_normalize(raw)
    return gcn_normalize(raw)
