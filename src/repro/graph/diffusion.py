"""Graph diffusion operators (personalized PageRank, heat kernel).

MVGRL contrasts the plain adjacency view against a diffusion view; PPR is the
diffusion the original paper uses.  Our graphs are small enough that the
closed-form dense inverse is fine.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .adjacency import adjacency_matrix, gcn_normalize
from .graph import Graph

__all__ = ["ppr_diffusion", "heat_diffusion", "sparsify_top_k"]


def ppr_diffusion(graph: Graph, alpha: float = 0.2) -> np.ndarray:
    """Personalized-PageRank diffusion ``a (I - (1-a) A_sym)^-1``.

    ``A_sym`` is the GCN-normalized adjacency, so the result is a dense
    row-stochastic-ish diffusion matrix; MVGRL uses it as a second structural
    view of the same graph.

    Computed as the linear solve ``(I - (1-a) A_sym) X = a I`` — one LU
    factorization instead of the explicit inverse, with the adjacency kept
    sparse until the solve's dense system is formed.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    adj = gcn_normalize(adjacency_matrix(graph))
    n = graph.num_nodes
    system = (sp.identity(n, dtype=adj.dtype, format="csr")
              - (1.0 - alpha) * adj)
    rhs = alpha * np.eye(n, dtype=adj.dtype)
    return np.linalg.solve(system.toarray(), rhs)


def heat_diffusion(graph: Graph, t: float = 5.0,
                   terms: int = 12) -> np.ndarray:
    """Heat-kernel diffusion ``exp(-t (I - A_sym))`` via a truncated series."""
    adj = gcn_normalize(adjacency_matrix(graph)).toarray()
    n = graph.num_nodes
    laplacian = np.eye(n) - adj
    result = np.eye(n)
    term = np.eye(n)
    for k in range(1, terms + 1):
        term = term @ (-t * laplacian) / k
        result = result + term
    return result


def sparsify_top_k(diffusion: np.ndarray, k: int) -> sp.csr_matrix:
    """Keep the top-``k`` entries per row (including self) and renormalize."""
    n = diffusion.shape[0]
    k = min(k, n)
    out = np.zeros_like(diffusion)
    top = np.argpartition(-diffusion, kth=k - 1, axis=1)[:, :k]
    rows = np.repeat(np.arange(n), k)
    out[rows, top.ravel()] = diffusion[rows, top.ravel()]
    row_sums = out.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return sp.csr_matrix(out / row_sums)
