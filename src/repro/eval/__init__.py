"""Evaluation: classifiers, metrics, protocols, similarity analysis, t-SNE."""

from .classifiers import (
    LinearSVMClassifier,
    LogisticRegressionClassifier,
    SGDClassifier,
    make_classifier,
)
from .metrics import accuracy, macro_f1, mean_std, roc_auc
from .protocol import (
    evaluate_graph_embeddings,
    evaluate_node_embeddings,
    kfold_indices,
    standardize,
)
from .similarity import (
    cosine_similarity,
    intra_inter_class_similarity,
    similarity_diversity,
    sorted_similarity_matrix,
)
from .tsne import tsne

__all__ = [
    "LogisticRegressionClassifier", "LinearSVMClassifier", "SGDClassifier",
    "make_classifier",
    "accuracy", "macro_f1", "roc_auc", "mean_std",
    "standardize", "kfold_indices", "evaluate_graph_embeddings",
    "evaluate_node_embeddings",
    "cosine_similarity", "sorted_similarity_matrix", "similarity_diversity",
    "intra_inter_class_similarity",
    "tsne",
]
