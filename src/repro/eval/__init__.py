"""Evaluation: classifiers, metrics, protocols, similarity analysis, t-SNE."""

from .classifiers import (
    LinearSVMClassifier,
    LogisticRegressionClassifier,
    SGDClassifier,
    make_classifier,
)
from .engine import (
    EvalStats,
    fast_evaluate_graph,
    fast_evaluate_node,
    lockstep_available,
    resolve_eval_workers,
)
from .folds import FoldPlan, plan_folds, streaming_train_stats
from .metrics import accuracy, macro_f1, mean_std, roc_auc
from .protocol import (
    evaluate_graph_embeddings,
    evaluate_node_embeddings,
    fast_eval_enabled,
    kfold_indices,
    last_eval_stats,
    standardize,
)
from .similarity import (
    cosine_similarity,
    intra_inter_class_similarity,
    similarity_diversity,
    sorted_similarity_matrix,
)
from .tsne import tsne

__all__ = [
    "LogisticRegressionClassifier", "LinearSVMClassifier", "SGDClassifier",
    "make_classifier",
    "accuracy", "macro_f1", "roc_auc", "mean_std",
    "standardize", "kfold_indices", "evaluate_graph_embeddings",
    "evaluate_node_embeddings", "fast_eval_enabled", "last_eval_stats",
    "EvalStats", "fast_evaluate_graph", "fast_evaluate_node",
    "lockstep_available", "resolve_eval_workers",
    "FoldPlan", "plan_folds", "streaming_train_stats",
    "cosine_similarity", "sorted_similarity_matrix", "similarity_diversity",
    "intra_inter_class_similarity",
    "tsne",
]
