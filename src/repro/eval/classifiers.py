"""Linear classifiers for the evaluation protocol (scikit-learn stand-ins).

The paper evaluates frozen embeddings with an SVM (10-fold CV) on the small
graph datasets, an SGD classifier on the large ones, and a linear probe
(logistic regression) for node classification.  We implement all three on
scipy's L-BFGS / plain minibatch SGD:

* :class:`LogisticRegressionClassifier` — multinomial, L2-regularized;
* :class:`LinearSVMClassifier` — one-vs-rest squared-hinge SVM;
* :class:`SGDClassifier` — minibatch logistic SGD for large sample counts.
"""

from __future__ import annotations

import numpy as np

from scipy import optimize

from ..utils.seed import seeded_rng

__all__ = ["LogisticRegressionClassifier", "LinearSVMClassifier",
           "SGDClassifier", "make_classifier"]


def _one_hot(y: np.ndarray, num_classes: int) -> np.ndarray:
    out = np.zeros((len(y), num_classes))
    out[np.arange(len(y)), y] = 1.0
    return out


class _LinearModel:
    """Shared fit/predict plumbing for the L-BFGS-trained classifiers."""

    def __init__(self, l2: float = 1e-2, max_iter: int = 200):
        if l2 < 0:
            raise ValueError(f"l2 must be >= 0, got {l2}")
        self.l2 = l2
        self.max_iter = max_iter
        self.classes_: np.ndarray | None = None
        self.weight: np.ndarray | None = None  # (d, k)
        self.bias: np.ndarray | None = None    # (k,)

    def _prepare(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes to fit")
        return y_idx.astype(np.int64, copy=False)

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.weight is None:
            raise RuntimeError("classifier is not fitted")
        return np.asarray(x, dtype=np.float64) @ self.weight + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        return float((self.predict(x) == np.asarray(y)).mean())


class LogisticRegressionClassifier(_LinearModel):
    """Multinomial logistic regression trained with L-BFGS."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        y_idx = self._prepare(x, y)
        x = np.asarray(x, dtype=np.float64)
        n, d = x.shape
        k = len(self.classes_)
        targets = _one_hot(y_idx, k)

        def objective(flat: np.ndarray):
            w = flat[: d * k].reshape(d, k)
            b = flat[d * k:]
            logits = x @ w + b
            logits -= logits.max(axis=1, keepdims=True)
            exp = np.exp(logits)
            probs = exp / exp.sum(axis=1, keepdims=True)
            nll = -np.log(probs[np.arange(n), y_idx] + 1e-12).mean()
            loss = nll + 0.5 * self.l2 * (w ** 2).sum()
            grad_logits = (probs - targets) / n
            grad_w = x.T @ grad_logits + self.l2 * w
            grad_b = grad_logits.sum(axis=0)
            return loss, np.concatenate([grad_w.ravel(), grad_b])

        start = np.zeros(d * k + k)
        result = optimize.minimize(objective, start, jac=True,
                                   method="L-BFGS-B",
                                   options={"maxiter": self.max_iter})
        self.weight = result.x[: d * k].reshape(d, k)
        self.bias = result.x[d * k:]
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        logits = self.decision_function(x)
        logits -= logits.max(axis=1, keepdims=True)
        exp = np.exp(logits)
        return exp / exp.sum(axis=1, keepdims=True)


class LinearSVMClassifier(_LinearModel):
    """One-vs-rest linear SVM with the squared hinge loss (L-BFGS)."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearSVMClassifier":
        y_idx = self._prepare(x, y)
        x = np.asarray(x, dtype=np.float64)
        n, d = x.shape
        k = len(self.classes_)
        # Targets in {-1, +1} per one-vs-rest problem.
        signs = 2.0 * _one_hot(y_idx, k) - 1.0

        def objective(flat: np.ndarray):
            w = flat[: d * k].reshape(d, k)
            b = flat[d * k:]
            margins = 1.0 - signs * (x @ w + b)
            active = np.maximum(margins, 0.0)
            loss = (active ** 2).mean() + 0.5 * self.l2 * (w ** 2).sum()
            grad_margin = -2.0 * signs * active / n
            grad_w = x.T @ grad_margin + self.l2 * w
            grad_b = grad_margin.sum(axis=0)
            return loss, np.concatenate([grad_w.ravel(), grad_b])

        start = np.zeros(d * k + k)
        result = optimize.minimize(objective, start, jac=True,
                                   method="L-BFGS-B",
                                   options={"maxiter": self.max_iter})
        self.weight = result.x[: d * k].reshape(d, k)
        self.bias = result.x[d * k:]
        return self


class SGDClassifier(_LinearModel):
    """Minibatch logistic-loss SGD, used for the large datasets in Table IV."""

    def __init__(self, l2: float = 1e-4, epochs: int = 20,
                 batch_size: int = 64, lr: float = 0.1, seed: int = 0):
        super().__init__(l2=l2, max_iter=epochs)
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SGDClassifier":
        y_idx = self._prepare(x, y)
        x = np.asarray(x, dtype=np.float64)
        n, d = x.shape
        k = len(self.classes_)
        rng = seeded_rng(self.seed)
        w = np.zeros((d, k))
        b = np.zeros(k)
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            lr = self.lr / (1.0 + 0.1 * epoch)
            for start in range(0, n, self.batch_size):
                idx = order[start:start + self.batch_size]
                xb, yb = x[idx], y_idx[idx]
                logits = xb @ w + b
                logits -= logits.max(axis=1, keepdims=True)
                exp = np.exp(logits)
                probs = exp / exp.sum(axis=1, keepdims=True)
                grad_logits = probs
                grad_logits[np.arange(len(idx)), yb] -= 1.0
                grad_logits /= len(idx)
                w -= lr * (xb.T @ grad_logits + self.l2 * w)
                b -= lr * grad_logits.sum(axis=0)
        self.weight, self.bias = w, b
        return self


def make_classifier(kind: str, seed: int = 0):
    """Factory used by the evaluation protocol ('svm', 'logreg', 'sgd')."""
    if kind == "svm":
        return LinearSVMClassifier()
    if kind == "logreg":
        return LogisticRegressionClassifier()
    if kind == "sgd":
        return SGDClassifier(seed=seed)
    raise ValueError(f"unknown classifier kind {kind!r}")
