"""Instance-wise similarity analysis (paper Figs. 3 and 6).

The paper visualizes the N x N cosine-similarity matrix of representations
and of gradient features, sorted by class; GradGCL's claim is that gradient
similarities are more *diverse* (less block-saturated).  We provide the
sorted matrix plus a scalar diversity summary so benchmarks can report the
effect numerically.
"""

from __future__ import annotations

import numpy as np

__all__ = ["cosine_similarity", "sorted_similarity_matrix",
           "similarity_diversity", "intra_inter_class_similarity"]


def cosine_similarity(embeddings: np.ndarray) -> np.ndarray:
    """All-pairs cosine similarity of rows."""
    x = np.asarray(embeddings, dtype=np.float64)
    norms = np.linalg.norm(x, axis=1, keepdims=True)
    norms[norms < 1e-12] = 1.0
    x = x / norms
    return x @ x.T


def sorted_similarity_matrix(embeddings: np.ndarray,
                             labels: np.ndarray) -> np.ndarray:
    """Cosine-similarity matrix with rows/cols sorted by class label."""
    order = np.argsort(np.asarray(labels), kind="stable")
    sims = cosine_similarity(np.asarray(embeddings)[order])
    return sims


def similarity_diversity(embeddings: np.ndarray) -> float:
    """Standard deviation of off-diagonal similarities.

    A hard-separated representation saturates near ±1 in class blocks; a
    diverse one spreads values out.  Higher std of the full off-diagonal
    distribution -> more instance-level diversity (paper Fig. 3's claim for
    gradients).
    """
    sims = cosine_similarity(embeddings)
    n = len(sims)
    off_diag = sims[~np.eye(n, dtype=bool)]
    return float(off_diag.std())


def intra_inter_class_similarity(embeddings: np.ndarray,
                                 labels: np.ndarray) -> tuple[float, float]:
    """Mean similarity within classes and across classes."""
    sims = cosine_similarity(embeddings)
    labels = np.asarray(labels)
    same = labels[:, None] == labels[None, :]
    off_diag = ~np.eye(len(labels), dtype=bool)
    intra = sims[same & off_diag]
    inter = sims[~same]
    if intra.size == 0 or inter.size == 0:
        raise ValueError("need at least two classes with two members each")
    return float(intra.mean()), float(inter.mean())
