"""Exact t-SNE on numpy (for the paper's Fig. 2-style visualizations).

A deliberately small, readable implementation: exact pairwise affinities
(no Barnes-Hut), binary-search perplexity calibration, momentum gradient
descent with early exaggeration.  Suitable for the few hundred points the
qualitative figures use.
"""

from __future__ import annotations

import numpy as np

from ..utils.seed import seeded_rng

__all__ = ["tsne"]


def _conditional_probabilities(distances: np.ndarray,
                               perplexity: float) -> np.ndarray:
    """Row-wise affinities with per-point bandwidth matched to perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        row = distances[i].copy()
        row[i] = np.inf
        lo, hi = 1e-20, 1e20
        beta = 1.0
        for _ in range(50):
            weights = np.exp(-row * beta)
            total = weights.sum()
            if total <= 0:
                beta = lo = lo * 10
                continue
            probs = weights / total
            entropy = -(probs[probs > 0] * np.log(probs[probs > 0])).sum()
            if abs(entropy - target_entropy) < 1e-5:
                break
            if entropy > target_entropy:
                lo = beta
                beta = beta * 2 if hi == 1e20 else 0.5 * (beta + hi)
            else:
                hi = beta
                beta = beta / 2 if lo == 1e-20 else 0.5 * (beta + lo)
        p[i] = weights / max(weights.sum(), 1e-12)
    return p


def tsne(x: np.ndarray, *, dim: int = 2, perplexity: float = 30.0,
         iterations: int = 300, learning_rate: float = 100.0,
         seed: int = 0) -> np.ndarray:
    """Embed rows of ``x`` into ``dim`` dimensions with exact t-SNE."""
    x = np.asarray(x, dtype=np.float64)
    n = len(x)
    if n < 4:
        raise ValueError("t-SNE needs at least 4 points")
    perplexity = min(perplexity, (n - 1) / 3.0)

    sq = ((x[:, None, :] - x[None, :, :]) ** 2).sum(axis=2)
    p_cond = _conditional_probabilities(sq, perplexity)
    p = (p_cond + p_cond.T) / (2.0 * n)
    p = np.maximum(p, 1e-12)

    rng = seeded_rng(seed)
    y = 1e-4 * rng.normal(size=(n, dim))
    velocity = np.zeros_like(y)
    exaggeration = 4.0

    for step in range(iterations):
        if step == iterations // 4:
            exaggeration = 1.0
        diff = y[:, None, :] - y[None, :, :]
        dist = (diff ** 2).sum(axis=2)
        q_num = 1.0 / (1.0 + dist)
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), 1e-12)
        pq = (exaggeration * p - q) * q_num
        grad = 4.0 * (pq[:, :, None] * diff).sum(axis=1)
        momentum = 0.5 if step < 100 else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0, keepdims=True)
    return y
