"""Streaming fold statistics for cross-validation without re-copies.

The reference protocol materializes every fold's training matrix with
``np.concatenate`` and recomputes its standardization mean/std from
scratch — an O(folds x n x d) copy-and-reduce per repeat.  This module
computes the same per-fold quantities from **global sums minus the
held-out fold's sums**:

* one pass accumulates ``sum(x)`` and ``sum(x^2)`` over the full
  embedding matrix;
* each fold's complement (its training split) then gets its mean and
  standard deviation in O(fold x d) via subtraction, never touching the
  other folds' rows;
* degenerate folds (training split with fewer than two classes) are
  detected from label bincounts the same way, without building the index
  arrays.

The streaming mean/std agree with the reference's
:func:`repro.eval.protocol.standardize` to floating-point roundoff (a
hypothesis suite pins the tolerance); the evaluation engine's margin
guard (see :mod:`repro.eval.engine`) is what turns "agree to roundoff"
into bit-identical protocol results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FoldPlan", "plan_folds", "streaming_train_stats"]

#: Reference ``standardize`` clamps tiny deviations to 1.0; the streaming
#: path uses the identical threshold so constant features scale the same.
_STD_FLOOR = 1e-12


@dataclass
class FoldPlan:
    """Per-repeat cross-validation layout with streaming statistics.

    Attributes
    ----------
    folds:
        The shuffled fold index arrays (held-out split of each cell).
    valid:
        Positions of folds whose *training* complement has at least two
        classes; the reference protocol silently skips the rest.
    mean / std:
        ``(len(valid), d)`` streaming standardization statistics of each
        valid fold's training complement.
    train_sizes:
        ``(len(valid),)`` training-row counts ``n - len(fold)``.
    test_mask:
        ``(n, len(valid))`` float matrix; column ``j`` is 1.0 on the rows
        of valid fold ``j`` (the held-out split), 0.0 elsewhere.  The
        complement ``1 - test_mask`` weights training rows.
    covered:
        ``(len(valid),)`` bool; True when the fold's training split
        contains every global class, so a one-vs-rest problem over the
        global class set matches what the reference would fit.  Folds
        with partial coverage train a smaller classifier in the
        reference path and must be solved there.
    """

    folds: list[np.ndarray]
    valid: list[int]
    mean: np.ndarray
    std: np.ndarray
    train_sizes: np.ndarray
    test_mask: np.ndarray
    covered: np.ndarray

    @property
    def skipped(self) -> int:
        """Folds dropped because their training split was single-class."""
        return len(self.folds) - len(self.valid)

    def train_indices(self, position: int) -> np.ndarray:
        """Reference-ordered training indices of fold ``position``.

        Concatenates the other folds in fold order — the exact array (and
        row order) the reference path builds — for consumers that need a
        materialized split (the SGD classifier's minibatch walk, the
        margin-guard fallback refits).
        """
        return np.concatenate([f for j, f in enumerate(self.folds)
                               if j != position])


def streaming_train_stats(x: np.ndarray, fold: np.ndarray,
                          total_sum: np.ndarray,
                          total_sq: np.ndarray) -> tuple[np.ndarray,
                                                         np.ndarray]:
    """Mean/std of ``x`` with the ``fold`` rows held out, from global sums.

    ``total_sum`` / ``total_sq`` are the full-matrix column sums of ``x``
    and ``x**2``; the complement statistics come out by subtracting the
    fold's own sums.  The variance is clamped at zero (catastrophic
    cancellation can drive it slightly negative for near-constant
    columns) and deviations below the reference's ``1e-12`` floor are
    mapped to 1.0, mirroring :func:`repro.eval.protocol.standardize`.
    """
    rows = x[fold]
    n_train = x.shape[0] - len(fold)
    if n_train <= 0:
        raise ValueError("fold holds out every row; nothing to fit")
    mean = (total_sum - rows.sum(axis=0)) / n_train
    var = (total_sq - (rows * rows).sum(axis=0)) / n_train - mean * mean
    std = np.sqrt(np.maximum(var, 0.0))
    std[std < _STD_FLOOR] = 1.0
    return mean, std


def plan_folds(x: np.ndarray, class_ids: np.ndarray,
               fold_list: list[np.ndarray], num_classes: int) -> FoldPlan:
    """Build the streaming :class:`FoldPlan` for one repeat's folds.

    ``class_ids`` are dense label indices (``np.unique`` inverse) over all
    ``n`` rows; validity of a fold means its training complement still
    contains at least two classes — computed from bincount differences,
    matching the reference's ``len(np.unique(labels[train_idx])) < 2``
    skip rule exactly.
    """
    n, d = x.shape
    total_sum = x.sum(axis=0)
    total_sq = (x * x).sum(axis=0)
    total_counts = np.bincount(class_ids, minlength=num_classes)
    valid = []
    full_cover = []
    for i, fold in enumerate(fold_list):
        train_counts = total_counts - np.bincount(class_ids[fold],
                                                  minlength=num_classes)
        present = train_counts > 0
        if present.sum() >= 2:
            valid.append(i)
            full_cover.append(bool(present.all()))
    mean = np.empty((len(valid), d))
    std = np.empty((len(valid), d))
    train_sizes = np.empty(len(valid))
    test_mask = np.zeros((n, len(valid)))
    for j, i in enumerate(valid):
        fold = fold_list[i]
        mean[j], std[j] = streaming_train_stats(x, fold, total_sum, total_sq)
        train_sizes[j] = n - len(fold)
        test_mask[fold, j] = 1.0
    return FoldPlan(folds=fold_list, valid=valid, mean=mean, std=std,
                    train_sizes=train_sizes, test_mask=test_mask,
                    covered=np.asarray(full_cover, dtype=bool))
