"""Fast evaluation engine: lockstep fold solves with an equivalence guard.

The reference protocol (:mod:`repro.eval.protocol`) runs one scipy
L-BFGS fit per (repeat, fold) cell — 50 serial solver calls for the
paper's 10-fold x 5-repeat graph protocol, each over a freshly
concatenated, freshly standardized copy of the training split.  This
module returns identical ``(mean, std)`` results several times faster:

Streaming fold statistics
    Each repeat's per-fold standardization comes from
    :mod:`repro.eval.folds`: global column sums minus the held-out
    fold's sums, never re-reducing the other folds' rows.  Training
    splits are materialized once per cell straight into the solver's
    input buffer instead of the reference's concatenate-then-scale
    double copy.

Lockstep fold solves
    A fold's accuracy depends on scipy's *under-converged* L-BFGS
    endpoint (200 iterations), so a different solver trajectory is not
    an option.  The engine drives one reverse-communication
    ``setulb`` instance per fold — the exact routine, constants, and
    iteration policy behind ``optimize.minimize(method="L-BFGS-B")`` —
    and answers all pending (loss, gradient) requests per round with
    fused batched kernels: per-fold bias-augmented GEMMs over shared
    weight/gradient matrices plus one batched elementwise pass for the
    loss chain (squared hinge for the SVM, stabilized softmax for the
    logistic probe).  The trajectory matches the reference's to
    floating-point roundoff (the kernels are mathematically equal but
    associate differently), which the margin guard below turns into
    equal protocol results.

Margin guard + exact fallback
    Reproduced fold weights sit within ~1e-12 of the reference's, so a
    prediction can only differ where a test sample's top-2 score gap is
    of that order.  Every fold's minimum gap is checked against
    ``REPRO_EVAL_GUARD`` (default 1e-6 for the lockstep SVM, 1e-2 for
    the re-solved logistic probes); folds below it — none in practice —
    are re-fit on the exact reference path.  Folds whose training split
    misses a global class (the reference would fit a smaller
    classifier) take the same fallback.

Joint logistic solves
    The node protocol's probe repeats share one embedding matrix and
    train/test rows, so they stack into a single joint objective
    evaluated through one fused matmul over the raw embeddings, with
    each repeat's streaming mean/std folded into its weight columns.
    The joint solve converges tightly (a *converged* softmax minimizer
    is trajectory-independent up to ~1e-3, unlike the fold solves
    above) and a wider margin guard arbitrates.  It also backs the
    graph logistic folds if the lockstep driver is ever unavailable.

Parallel cross-validation
    The parallel unit is one repeat, fanned out through
    :func:`repro.pipeline.fork_map`.  Each repeat derives its RNG from
    the cell index alone (``seeded_rng(seed + repeat)``, the
    reference's own scheme) and every batched kernel operates
    slice-per-fold, so grouping does not perturb any fold's trajectory:
    results are bit-identical at every ``eval_workers`` setting.

The SGD classifier's trajectory depends on every minibatch draw, so its
folds keep the exact reference arithmetic — parallel repeats are its
only speedup.  :class:`EvalStats` records solver/fallback/skip counts
and timings for the run journal and ``repro report``.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from scipy import optimize

try:  # scipy's private L-BFGS-B core; probed before use, never required
    from scipy.optimize import _lbfgsb as _lbfgsb_core
except ImportError:  # pragma: no cover - scipy always ships it today
    _lbfgsb_core = None

from ..obs.tracing import trace
from ..pipeline.pool import fork_map, map_context
from ..utils.seed import seeded_rng
from .classifiers import make_classifier
from .folds import FoldPlan, plan_folds
from .metrics import accuracy, mean_std
from .protocol import kfold_indices, standardize

__all__ = ["EvalStats", "fast_evaluate_graph", "fast_evaluate_node",
           "guard_tau", "lockstep_available", "resolve_eval_workers"]

#: Tight convergence for the joint logistic solve: the batched solution
#: must sit close enough to the true minimizer that the margin guard's
#: threshold dominates the reference's own solution error.
_TIGHT_OPTIONS = {"ftol": 1e-14, "gtol": 1e-10}

#: Margin-guard defaults per solver family.  The lockstep reproduces the
#: reference trajectory to ~1e-12 in the weights, so 1e-6 leaves six
#: orders of slack; the re-solved logistic probes (joint solve) deviate
#: up to ~1e-3 from the reference's under-converged endpoint, hence the
#: wider 1e-2.
_GUARD_DEFAULTS = {"lockstep": 1e-6, "logreg": 1e-2}

# Constants scipy's minimize(method="L-BFGS-B") passes to setulb for the
# options the reference leaves at their defaults (maxiter is per fold).
_LBFGS_M = 10
_LBFGS_FACTR = 2.2204460492503131e-09 / np.finfo(np.float64).eps
_LBFGS_PGTOL = 1e-5
_LBFGS_MAXLS = 20
_LBFGS_MAXFUN = 15000


def guard_tau(kind: str = "logreg") -> float:
    """Margin-guard threshold (``REPRO_EVAL_GUARD`` env, else per-kind).

    Folds whose minimum top-2 test-score gap falls below this are re-fit
    on the exact reference path.  ``kind`` is the solver family
    (``"lockstep"`` or ``"logreg"`` for the joint solve) — the default
    depends on how closely that solver tracks the reference (see
    :data:`_GUARD_DEFAULTS`); the environment override applies to every
    family at once.
    """
    env = os.environ.get("REPRO_EVAL_GUARD")
    if env is not None:
        return float(env)
    return _GUARD_DEFAULTS.get(kind, _GUARD_DEFAULTS["logreg"])


def resolve_eval_workers(workers: int | None = None) -> int:
    """Eval worker count: explicit, else ``REPRO_EVAL_WORKERS``, else 0."""
    if workers is None:
        workers = int(os.environ.get("REPRO_EVAL_WORKERS", "0"))
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"eval workers must be >= 0, got {workers}")
    return workers


@dataclass
class EvalStats:
    """Telemetry from one protocol evaluation (fast or reference path)."""

    seconds: float = 0.0
    solver: str = "lockstep"      # lockstep | batched | reference | sgd
    workers: int = 0
    repeats: int = 0
    folds_total: int = 0
    folds_batched: int = 0        # solved by the lockstep / joint pass
    folds_fallback: int = 0       # margin-guard / coverage re-fits
    folds_skipped: int = 0        # degenerate folds the protocol drops
    fit_iterations: int = 0       # total L-BFGS iterations across solves
    repeat_seconds: tuple = field(default_factory=tuple)

    def to_fields(self) -> dict:
        """Flat journal-friendly dict (floats rounded for readability)."""
        fields = {
            "eval_seconds": round(self.seconds, 4),
            "eval_solver": self.solver,
            "eval_workers": self.workers,
            "eval_repeats": self.repeats,
            "eval_folds": self.folds_total,
            "eval_folds_batched": self.folds_batched,
            "eval_folds_fallback": self.folds_fallback,
            "eval_folds_skipped": self.folds_skipped,
            "eval_fit_iterations": self.fit_iterations,
        }
        if self.repeat_seconds:
            fields["eval_repeat_seconds"] = list(self.repeat_seconds)
        return fields


# ----------------------------------------------------------------------
# Lockstep L-BFGS-B driver
# ----------------------------------------------------------------------
class _LBFGSInstance:
    """One reverse-communication L-BFGS-B solve over shared state rows.

    ``x_row`` and ``g_row`` are row views into the lockstep's shared
    parameter/gradient matrices; ``setulb`` updates the parameters in
    place, and the batched kernels overwrite the gradient rows, exactly
    mirroring scipy's rebinding of ``g`` on every objective call.
    """

    __slots__ = ("x", "f", "g", "low", "up", "nbd", "wa", "iwa", "task",
                 "ln_task", "lsave", "isave", "dsave", "nfev", "nit",
                 "max_iter")

    def __init__(self, x_row: np.ndarray, g_row: np.ndarray,
                 max_iter: int):
        dim = x_row.size
        m = _LBFGS_M
        self.x = x_row
        self.f = np.array(0.0)
        self.g = g_row
        # Unbounded problem: nbd == 0 everywhere, bounds arrays unused.
        self.low = np.zeros(dim)
        self.up = np.zeros(dim)
        self.nbd = np.zeros(dim, np.int32)
        self.wa = np.zeros(2 * m * dim + 5 * dim + 11 * m * m + 8 * m)
        self.iwa = np.zeros(3 * dim, np.int32)
        self.task = np.zeros(2, np.int32)
        self.ln_task = np.zeros(2, np.int32)
        self.lsave = np.zeros(4, np.int32)
        self.isave = np.zeros(44, np.int32)
        self.dsave = np.zeros(29)
        self.nfev = 0
        self.nit = 0
        self.max_iter = max_iter

    def advance(self) -> bool:
        """Step the driver; True when it wants (f, g), False when done.

        Applies scipy's iteration policy between steps: task 1 is a
        completed iteration (stop at ``max_iter`` via status 504 or at
        ``maxfun`` via 502), task 3 requests an objective evaluation.
        """
        task = self.task
        x, g = self.x, self.g
        low, up, nbd = self.low, self.up, self.nbd
        wa, iwa = self.wa, self.iwa
        while True:
            _lbfgsb_core.setulb(_LBFGS_M, x, low, up, nbd, self.f, g,
                                _LBFGS_FACTR, _LBFGS_PGTOL, wa, iwa, task,
                                self.lsave, self.isave, self.dsave,
                                _LBFGS_MAXLS, self.ln_task)
            t = task[0]
            if t == 3:
                return True
            if t == 1:
                self.nit += 1
                if self.nit >= self.max_iter:
                    task[0] = 5
                    task[1] = 504
                elif self.nfev > _LBFGS_MAXFUN:
                    task[0] = 5
                    task[1] = 502
            else:
                return False


_lockstep_ok: bool | None = None


def lockstep_available() -> bool:
    """Whether scipy's ``setulb`` driver works here (probed once).

    The lockstep leans on a private scipy routine; if its signature ever
    shifts, the engine must fall back to reference fits rather than
    crash.  The probe minimizes a tiny quadratic through the driver and
    checks the solution, caching the verdict for the process.
    """
    global _lockstep_ok
    if _lockstep_ok is None:
        try:
            flat = np.zeros((1, 2))
            grad = np.zeros((1, 2))
            inst = _LBFGSInstance(flat[0], grad[0], 50)
            while inst.advance():
                inst.f = np.float64((flat[0, 0] - 1.0) ** 2
                                    + (flat[0, 1] + 2.0) ** 2)
                grad[0, 0] = 2.0 * (flat[0, 0] - 1.0)
                grad[0, 1] = 2.0 * (flat[0, 1] + 2.0)
                inst.nfev += 1
            _lockstep_ok = bool(abs(flat[0, 0] - 1.0) < 1e-6
                                and abs(flat[0, 1] + 2.0) < 1e-6)
        except Exception:
            _lockstep_ok = False
    return _lockstep_ok


class _LockstepState:
    """Shared buffers for one rectangular batch of lockstep solves.

    ``xaugs`` are bias-augmented standardized training matrices (ones in
    the last column) of one common shape ``(n, d + 1)``; ``y_list`` the
    matching dense class-index vectors.  Each fold's flat parameter
    vector is laid out as ``(d + 1, k)`` — weight rows then the bias
    row — so one GEMM per fold covers scores + bias forward and
    gradient + bias-gradient backward.
    """

    def __init__(self, xaugs: list[np.ndarray], y_list: list[np.ndarray],
                 k: int, l2: float, max_iter: int):
        count = len(xaugs)
        n, d1 = xaugs[0].shape
        self.count, self.n, self.d1, self.k = count, n, d1, k
        self.dk = (d1 - 1) * k
        self.dim = d1 * k
        self.l2 = l2
        self.flat = np.zeros((count, self.dim))
        self.grad = np.zeros((count, self.dim))
        self.insts = [_LBFGSInstance(self.flat[i], self.grad[i], max_iter)
                      for i in range(count)]
        self.wbs = [self.flat[i].reshape(d1, k) for i in range(count)]
        self.gfulls = [self.grad[i].reshape(d1, k) for i in range(count)]
        self.wpart = self.flat[:, : self.dk]
        self.xaugs = xaugs
        self.xaug_ts = [a.T for a in xaugs]
        onehot = np.zeros((count, n, k))
        for i, y_idx in enumerate(y_list):
            onehot[i, np.arange(n), y_idx] = 1.0
        self.onehot = onehot
        self.y_list = y_list
        self.act = np.empty((count, n, k))
        self.acts = [self.act[i] for i in range(count)]
        self.gm = np.empty((count, n, k))
        self.gms = [self.gm[i] for i in range(count)]
        self.wsq_buf = np.empty((count, self.dk))
        # l2 term staged with zeroed bias columns: adding it to the full
        # gradient matrix leaves the bias gradients untouched.
        self.l2_flat = np.zeros((count, self.dim))
        self.l2_w = self.l2_flat[:, : self.dk]

    def run(self, chain) -> tuple[np.ndarray, int]:
        """Drive all solves to termination; ``chain`` fills loss + gm.

        Per round: forward GEMMs put each active fold's bias-inclusive
        scores in ``act``; ``chain(active)`` must return the data-loss
        vector and leave each fold's score-gradient in ``gm``; backward
        GEMMs and the batched l2 terms finish the gradient.  Stale
        inactive rows are harmless — their instances never read f or g
        again.  Returns ``(wb, nit)`` with ``wb[i]`` the ``(d + 1, k)``
        solution of fold ``i``.
        """
        matmul = np.matmul
        multiply = np.multiply
        reduce_ = np.add.reduce
        insts, xaugs, xaug_ts = self.insts, self.xaugs, self.xaug_ts
        acts, gms, wbs, gfulls = self.acts, self.gms, self.wbs, self.gfulls
        half_l2 = 0.5 * self.l2
        active = list(range(self.count))
        while True:
            active = [i for i in active if insts[i].advance()]
            if not active:
                break
            for i in active:
                matmul(xaugs[i], wbs[i], out=acts[i])
            data_loss = chain(active)
            for i in active:
                matmul(xaug_ts[i], gms[i], out=gfulls[i])
            multiply(self.wpart, self.wpart, out=self.wsq_buf)
            loss = data_loss + half_l2 * reduce_(self.wsq_buf, axis=1)
            multiply(self.l2, self.wpart, out=self.l2_w)
            np.add(self.grad, self.l2_flat, out=self.grad)
            for i in active:
                inst = insts[i]
                inst.f = loss[i]
                inst.nfev += 1
        return (self.flat.reshape(self.count, self.d1, self.k),
                sum(inst.nit for inst in insts))


def _lockstep_svm_solve(xaugs: list[np.ndarray], y_list: list[np.ndarray],
                        k: int, l2: float,
                        max_iter: int) -> tuple[np.ndarray, int]:
    """Lockstep squared-hinge solves (reference ``LinearSVMClassifier``)."""
    state = _LockstepState(xaugs, y_list, k, l2, max_iter)
    signs = 2.0 * state.onehot - 1.0
    neg2signs = np.multiply(-2.0, signs)
    act, gm = state.act, state.gm
    count, n = state.count, state.n
    sq_flat = np.empty((count, n * k))
    sq = sq_flat.reshape(count, n, k)
    nk = float(n * k)
    fn = float(n)

    def chain(active):
        # margins -> squared-hinge loss means, grad_margin in gm
        np.multiply(signs, act, out=act)
        np.subtract(1.0, act, out=act)
        np.maximum(act, 0.0, out=act)
        np.multiply(act, act, out=sq)
        np.multiply(neg2signs, act, out=gm)
        np.divide(gm, fn, out=gm)
        return np.add.reduce(sq_flat, axis=1) / nk

    return state.run(chain)


def _lockstep_logreg_solve(xaugs: list[np.ndarray], y_list: list[np.ndarray],
                           k: int, l2: float,
                           max_iter: int) -> tuple[np.ndarray, int]:
    """Lockstep softmax solves (reference ``LogisticRegressionClassifier``)."""
    state = _LockstepState(xaugs, y_list, k, l2, max_iter)
    act, gm = state.act, state.gm
    count, n = state.count, state.n
    act_flat = act.reshape(count, n * k)
    rows = np.arange(count)[:, None]
    gather = np.stack([np.arange(n) * k + y_idx for y_idx in y_list])
    fn = float(n)

    def chain(active):
        # stabilized softmax -> nll means, (probs - targets)/n in gm
        np.subtract(act, act.max(axis=2, keepdims=True), out=act)
        np.exp(act, out=act)
        np.divide(act, np.add.reduce(act, axis=2, keepdims=True), out=act)
        picked = act_flat[rows, gather]
        np.add(picked, 1e-12, out=picked)
        np.log(picked, out=picked)
        nll = -(np.add.reduce(picked, axis=1) / fn)
        np.subtract(act, state.onehot, out=gm)
        np.divide(gm, fn, out=gm)
        return nll

    return state.run(chain)


def _min_top2_gap(test_scores: np.ndarray) -> float:
    """Smallest top-2 score gap across a fold's test rows."""
    top2 = np.partition(test_scores, test_scores.shape[1] - 2, axis=1)
    return float((top2[:, -1] - top2[:, -2]).min())


# ----------------------------------------------------------------------
# Joint logistic solve (graph logreg folds, node probes)
# ----------------------------------------------------------------------
def _joint_solve(x: np.ndarray, class_ids: np.ndarray, k: int,
                 plan: FoldPlan, l2: float,
                 max_iter: int) -> tuple[np.ndarray, int]:
    """Solve all of a plan's logistic folds in one L-BFGS run.

    Parametrized in each fold's *standardized* coordinates (so the
    regularizer matches the reference exactly) but evaluated through one
    fused matmul over the raw embeddings, with the per-fold mean/std
    folded into the weights.  Returns ``(scores, nit)`` where ``scores``
    has shape ``(n, F, k)`` — row scores of every sample under every
    fold's classifier — and ``nit`` is the solver's iteration count.
    """
    n, d = x.shape
    f_count = len(plan.valid)
    inv_std_t = (1.0 / plan.std).T                     # (d, F)
    mean_t = plan.mean.T                               # (d, F)
    train_w = 1.0 - plan.test_mask                     # (n, F)
    n_tr = plan.train_sizes                            # (F,)
    onehot = np.zeros((n, k))
    onehot[np.arange(n), class_ids] = 1.0
    rows = np.arange(n)[:, None]
    cols = np.arange(f_count)[None, :]

    def scores_of(flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        w = flat[: d * f_count * k].reshape(d, f_count, k)
        b = flat[d * f_count * k:].reshape(f_count, k)
        w_prime = w * inv_std_t[:, :, None]            # std folded in
        s = (x @ w_prime.reshape(d, f_count * k)).reshape(n, f_count, k)
        b_prime = b - np.einsum("fd,dfk->fk", plan.mean, w_prime)
        return s + b_prime[None], w

    def objective(flat: np.ndarray):
        s, w = scores_of(flat)
        shifted = s - s.max(axis=2, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=2, keepdims=True)
        picked = probs[rows, cols, class_ids[:, None]]
        nll = -(np.log(picked + 1e-12) * train_w).sum(axis=0) / n_tr
        loss = float(nll.sum())
        grad_s = ((probs - onehot[:, None, :]) * train_w[:, :, None]
                  / n_tr[None, :, None])
        loss += 0.5 * l2 * float((w ** 2).sum())
        xt_g = (x.T @ grad_s.reshape(n, f_count * k)).reshape(d, f_count, k)
        colsum = grad_s.sum(axis=0)                    # (F, k)
        grad_w = (inv_std_t[:, :, None]
                  * (xt_g - mean_t[:, :, None] * colsum[None])
                  + l2 * w)
        return loss, np.concatenate([grad_w.ravel(), colsum.ravel()])

    start = np.zeros(d * f_count * k + f_count * k)
    result = optimize.minimize(
        objective, start, jac=True, method="L-BFGS-B",
        options={"maxiter": max_iter * f_count, **_TIGHT_OPTIONS})
    scores, _ = scores_of(result.x)
    return scores, int(result.nit)


# ----------------------------------------------------------------------
# Graph protocol tasks (one per repeat; also the fork-pool task unit)
# ----------------------------------------------------------------------
@dataclass
class _GraphContext:
    """Shared read-only state for graph-protocol repeat tasks."""

    x: np.ndarray
    labels: np.ndarray
    class_ids: np.ndarray
    num_classes: int
    classes: np.ndarray
    classifier: str
    folds: int
    seed: int
    tau: float
    l2: float
    max_iter: int
    lockstep: bool = False


def _reference_cell(ctx, plan: FoldPlan, position: int, repeat: int) -> float:
    """One (repeat, fold) cell on the exact reference arithmetic."""
    train_idx = plan.train_indices(position)
    test_idx = plan.folds[position]
    x_train, x_test = standardize(ctx.x[train_idx], ctx.x[test_idx])
    model = make_classifier(ctx.classifier, seed=ctx.seed + repeat)
    model.fit(x_train, ctx.labels[train_idx])
    return accuracy(model.predict(x_test), ctx.labels[test_idx])


_LOCKSTEP_SOLVERS = {"svm": _lockstep_svm_solve,
                     "logreg": _lockstep_logreg_solve}


def _lockstep_repeat(ctx, plan: FoldPlan, repeat: int,
                     out: dict) -> list[float]:
    """One repeat's folds: lockstep solves + margin guard.

    Folds are grouped by training-split size (``np.array_split`` makes
    at most two sizes per repeat) so each lockstep batch is rectangular;
    uncovered or guard-tripped folds re-fit on the reference path.
    """
    solve = _LOCKSTEP_SOLVERS[ctx.classifier]
    x = ctx.x
    d = x.shape[1]
    k = ctx.num_classes

    scores_by_pos: dict[int, float] = {}
    groups: dict[int, list[int]] = {}
    for j, position in enumerate(plan.valid):
        if plan.covered[j]:
            groups.setdefault(len(plan.folds[position]), []).append(j)
        else:
            scores_by_pos[position] = _reference_cell(ctx, plan, position,
                                                      repeat)
            out["fallback"] += 1

    for members in groups.values():
        xaugs, y_list = [], []
        for j in members:
            train_idx = plan.train_indices(plan.valid[j])
            xaug = np.empty((len(train_idx), d + 1))
            np.subtract(x[train_idx], plan.mean[j], out=xaug[:, :d])
            xaug[:, :d] /= plan.std[j]
            xaug[:, d] = 1.0
            xaugs.append(xaug)
            y_list.append(ctx.class_ids[train_idx])
        with trace("eval/lockstep"):
            wb, nit = solve(xaugs, y_list, k, ctx.l2, ctx.max_iter)
        out["nit"] += nit
        for i, j in enumerate(members):
            position = plan.valid[j]
            test_idx = plan.folds[position]
            x_test = (x[test_idx] - plan.mean[j]) / plan.std[j]
            test_scores = x_test @ wb[i, :d] + wb[i, d]
            if _min_top2_gap(test_scores) >= ctx.tau:
                preds = ctx.classes[np.argmax(test_scores, axis=1)]
                scores_by_pos[position] = accuracy(preds,
                                                   ctx.labels[test_idx])
                out["batched"] += 1
            else:
                scores_by_pos[position] = _reference_cell(ctx, plan,
                                                          position, repeat)
                out["fallback"] += 1
    return [scores_by_pos[position] for position in plan.valid]


def _graph_repeat_task(repeat: int) -> dict:
    """Evaluate one repeat of the graph protocol on the fast engine."""
    ctx = map_context()
    started = time.perf_counter()
    rng = seeded_rng(ctx.seed + repeat)
    fold_list = kfold_indices(len(ctx.labels), ctx.folds, rng)
    plan = plan_folds(ctx.x, ctx.class_ids, fold_list, ctx.num_classes)
    out = {"score": None, "skipped": plan.skipped, "batched": 0,
           "fallback": 0, "nit": 0, "seconds": 0.0}
    if not plan.valid:
        out["seconds"] = time.perf_counter() - started
        return out

    if ctx.lockstep:
        fold_scores = _lockstep_repeat(ctx, plan, repeat, out)
    elif ctx.classifier == "logreg":
        # Missing lockstep driver: the joint solve still beats 10 scipy
        # wrapper round-trips on the copies alone.
        scores, nit = _joint_solve(ctx.x, ctx.class_ids, ctx.num_classes,
                                   plan, ctx.l2, ctx.max_iter)
        out["nit"] = nit
        fold_scores = []
        for j, position in enumerate(plan.valid):
            test_idx = plan.folds[position]
            test_scores = scores[test_idx, j, :]
            if plan.covered[j] and _min_top2_gap(test_scores) >= ctx.tau:
                preds = ctx.classes[np.argmax(test_scores, axis=1)]
                fold_scores.append(accuracy(preds, ctx.labels[test_idx]))
                out["batched"] += 1
            else:
                fold_scores.append(_reference_cell(ctx, plan, position,
                                                   repeat))
                out["fallback"] += 1
    else:
        # SGD (trajectory depends on every minibatch draw) or an SVM
        # without the driver: exact reference cells, parallel repeats
        # are the only speedup.
        fold_scores = [_reference_cell(ctx, plan, pos, repeat)
                       for pos in plan.valid]
        out["fallback"] = len(plan.valid)
    out["score"] = float(np.mean(fold_scores))
    out["seconds"] = time.perf_counter() - started
    return out


def fast_evaluate_graph(embeddings: np.ndarray, labels: np.ndarray, *,
                        classifier: str = "svm", folds: int = 10,
                        repeats: int = 5, seed: int = 0,
                        eval_workers: int | None = None,
                        ) -> tuple[float, float, EvalStats]:
    """Fast path for :func:`repro.eval.protocol.evaluate_graph_embeddings`.

    Returns ``(mean, std, stats)`` with the mean/std identical to the
    reference protocol at every ``eval_workers`` count.
    """
    started = time.perf_counter()
    x = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    classes, class_ids = np.unique(labels, return_inverse=True)
    workers = resolve_eval_workers(eval_workers)
    probe = make_classifier(classifier, seed=seed)
    lockstep = classifier in _LOCKSTEP_SOLVERS and lockstep_available()
    ctx = _GraphContext(x=x, labels=labels, class_ids=class_ids,
                        num_classes=len(classes), classes=classes,
                        classifier=classifier, folds=folds, seed=seed,
                        tau=guard_tau("lockstep" if lockstep else "logreg"),
                        l2=probe.l2, max_iter=probe.max_iter,
                        lockstep=lockstep)
    with trace("eval/graph"):
        results = fork_map(_graph_repeat_task, range(repeats),
                           workers=workers, context=ctx)
    run_scores = [r["score"] for r in results if r["score"] is not None]
    mean, std = mean_std(run_scores)
    if classifier == "sgd":
        solver = "sgd"
    elif lockstep:
        solver = "lockstep"
    else:
        solver = "batched" if classifier == "logreg" else "reference"
    stats = EvalStats(
        seconds=time.perf_counter() - started,
        solver=solver,
        workers=workers, repeats=repeats,
        folds_total=folds * repeats,
        folds_batched=sum(r["batched"] for r in results),
        folds_fallback=sum(r["fallback"] for r in results),
        folds_skipped=sum(r["skipped"] for r in results),
        fit_iterations=sum(r["nit"] for r in results),
        repeat_seconds=tuple(round(r["seconds"], 4) for r in results))
    return 100.0 * mean, 100.0 * std, stats


# ----------------------------------------------------------------------
# Node protocol (repeats batched into one joint solve)
# ----------------------------------------------------------------------
def _node_reference_repeat(x: np.ndarray, labels: np.ndarray,
                           subset: np.ndarray,
                           test_idx: np.ndarray) -> float:
    """One node-probe repeat on the exact reference arithmetic."""
    x_train, x_test = standardize(x[subset], x[test_idx])
    model = make_classifier("logreg")
    model.fit(x_train, labels[subset])
    return accuracy(model.predict(x_test), labels[test_idx])


def fast_evaluate_node(embeddings: np.ndarray, labels: np.ndarray,
                       train_mask: np.ndarray, test_mask: np.ndarray, *,
                       repeats: int = 3, seed: int = 0,
                       ) -> tuple[float, float, EvalStats]:
    """Fast path for :func:`repro.eval.protocol.evaluate_node_embeddings`.

    The probe repeats differ only in their subsampled training masks, so
    they batch into a single joint logistic solve over the train+test
    rows (the batch *is* the whole evaluation — worker count is moot).
    Guarded repeats fall back to the exact reference fit.
    """
    started = time.perf_counter()
    x = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    train_idx = np.flatnonzero(train_mask)
    test_idx = np.flatnonzero(test_mask)
    probe = make_classifier("logreg")

    # Reproduce the reference's subset draws exactly (same generators,
    # same call order within each independent per-repeat stream).
    subsets = []
    for repeat in range(repeats):
        rng = seeded_rng(seed + repeat)
        take = max(2, int(round(len(train_idx) * 0.9)))
        subset = rng.choice(train_idx, size=take, replace=False)
        if len(np.unique(labels[subset])) < 2:
            subset = train_idx
        subsets.append(subset)

    overlap = np.intersect1d(train_idx, test_idx).size > 0
    classes = np.unique(labels[train_idx])
    if overlap or len(classes) < 2:
        # Degenerate splits: run the reference path verbatim (including
        # its error behavior when the probe cannot be fit).
        scores = [_node_reference_repeat(x, labels, subset, test_idx)
                  for subset in subsets]
        mean, std = mean_std(scores)
        stats = EvalStats(seconds=time.perf_counter() - started,
                          solver="reference", repeats=repeats,
                          folds_total=repeats, folds_fallback=repeats)
        return 100.0 * mean, 100.0 * std, stats

    rows = np.concatenate([train_idx, test_idx])
    xs = x[rows]
    t_count = len(train_idx)
    cid_train = np.searchsorted(classes, labels[train_idx])
    cid_all = np.zeros(len(rows), dtype=np.int64)
    cid_all[:t_count] = cid_train      # test rows masked out of the loss
    total_sum = xs[:t_count].sum(axis=0)
    total_sq = (xs[:t_count] * xs[:t_count]).sum(axis=0)

    mean_arr = np.empty((repeats, x.shape[1]))
    std_arr = np.empty((repeats, x.shape[1]))
    sizes = np.empty(repeats)
    t_mask = np.ones((len(rows), repeats))    # complement of train weight
    covered = np.empty(repeats, dtype=bool)
    for r, subset in enumerate(subsets):
        pos = np.searchsorted(train_idx, subset)
        dropped = np.ones(t_count, dtype=bool)
        dropped[pos] = False
        drop_rows = xs[:t_count][dropped]
        take = len(subset)
        mu = (total_sum - drop_rows.sum(axis=0)) / take
        var = ((total_sq - (drop_rows * drop_rows).sum(axis=0)) / take
               - mu * mu)
        sd = np.sqrt(np.maximum(var, 0.0))
        sd[sd < 1e-12] = 1.0
        mean_arr[r], std_arr[r], sizes[r] = mu, sd, take
        t_mask[pos, r] = 0.0
        counts = np.bincount(cid_train[pos], minlength=len(classes))
        covered[r] = bool((counts > 0).all())

    plan = FoldPlan(folds=[], valid=list(range(repeats)), mean=mean_arr,
                    std=std_arr, train_sizes=sizes, test_mask=t_mask,
                    covered=covered)
    with trace("eval/node"):
        scores_all, nit = _joint_solve(xs, cid_all, len(classes), plan,
                                       probe.l2, probe.max_iter)
    tau = guard_tau("logreg")
    scores = []
    batched = fallback = 0
    for r, subset in enumerate(subsets):
        test_scores = scores_all[t_count:, r, :]
        if covered[r] and _min_top2_gap(test_scores) >= tau:
            preds = classes[np.argmax(test_scores, axis=1)]
            scores.append(accuracy(preds, labels[test_idx]))
            batched += 1
        else:
            scores.append(_node_reference_repeat(x, labels, subset,
                                                 test_idx))
            fallback += 1
    mean, std = mean_std(scores)
    stats = EvalStats(seconds=time.perf_counter() - started,
                      solver="batched", repeats=repeats,
                      folds_total=repeats, folds_batched=batched,
                      folds_fallback=fallback, fit_iterations=nit)
    return 100.0 * mean, 100.0 * std, stats
