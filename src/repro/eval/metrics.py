"""Evaluation metrics: accuracy, ROC-AUC, mean/std summaries."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "macro_f1", "roc_auc", "mean_std"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}")
    if len(labels) == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float((predictions == labels).mean())


def macro_f1(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores.

    Useful for the imbalanced multi-class node/graph datasets (e.g. the
    11-class RDT-M12K analogue) where accuracy hides minority classes.
    Classes absent from both predictions and labels are skipped.
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {labels.shape}")
    scores = []
    for c in np.unique(np.concatenate([labels, predictions])):
        tp = ((predictions == c) & (labels == c)).sum()
        fp = ((predictions == c) & (labels != c)).sum()
        fn = ((predictions != c) & (labels == c)).sum()
        if tp + fp + fn == 0:
            continue
        scores.append(2.0 * tp / (2.0 * tp + fp + fn))
    if not scores:
        raise ValueError("no classes present")
    return float(np.mean(scores))


def roc_auc(scores: np.ndarray, labels: np.ndarray) -> float:
    """Binary ROC-AUC via the Mann-Whitney rank statistic.

    ``scores`` are real-valued decision scores for the positive class,
    ``labels`` in {0, 1}.  Ties receive the midrank, matching sklearn.
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if set(np.unique(labels)) - {0, 1}:
        raise ValueError("labels must be binary 0/1")
    positives = int(labels.sum())
    negatives = len(labels) - positives
    if positives == 0 or negatives == 0:
        raise ValueError("ROC-AUC needs both classes present")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores))
    sorted_scores = scores[order]
    # Midranks for ties.
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[labels == 1].sum()
    u = rank_sum - positives * (positives + 1) / 2.0
    return float(u / (positives * negatives))


def mean_std(values) -> tuple[float, float]:
    """Mean and (population) standard deviation of a value list."""
    values = np.asarray(list(values), dtype=np.float64)
    if values.size == 0:
        raise ValueError("no values to summarize")
    return float(values.mean()), float(values.std())
