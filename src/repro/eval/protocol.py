"""Evaluation protocols mirroring the paper's setups.

* Graph classification: frozen embeddings -> SVM with k-fold CV (SGD
  classifier for large datasets), repeated over several seeds; report
  mean ± std accuracy (Table IV protocol).
* Node classification: frozen node embeddings -> linear probe trained on the
  transductive train mask, accuracy on the test mask (Table V/VII protocol).
"""

from __future__ import annotations

import numpy as np

from ..utils.seed import seeded_rng
from .classifiers import make_classifier
from .metrics import accuracy, mean_std

__all__ = ["standardize", "kfold_indices", "evaluate_graph_embeddings",
           "evaluate_node_embeddings"]


def standardize(train: np.ndarray,
                *others: np.ndarray) -> tuple[np.ndarray, ...]:
    """Zero-mean/unit-variance scaling fit on ``train`` only."""
    mean = train.mean(axis=0, keepdims=True)
    std = train.std(axis=0, keepdims=True)
    std[std < 1e-12] = 1.0
    return tuple((arr - mean) / std for arr in (train, *others))


def kfold_indices(n: int, folds: int,
                  rng: np.random.Generator) -> list[np.ndarray]:
    """Shuffled, nearly equal-sized fold index arrays."""
    if folds < 2:
        raise ValueError(f"need at least 2 folds, got {folds}")
    if n < folds:
        raise ValueError(f"cannot split {n} samples into {folds} folds")
    order = rng.permutation(n)
    return [np.asarray(chunk) for chunk in np.array_split(order, folds)]


def evaluate_graph_embeddings(embeddings: np.ndarray, labels: np.ndarray,
                              *, classifier: str = "svm", folds: int = 10,
                              repeats: int = 5,
                              seed: int = 0) -> tuple[float, float]:
    """k-fold cross-validated accuracy of a linear classifier, repeated.

    Returns ``(mean, std)`` in percent, the format of the paper's tables.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    run_scores = []
    for repeat in range(repeats):
        rng = seeded_rng(seed + repeat)
        fold_list = kfold_indices(len(labels), folds, rng)
        fold_scores = []
        for i, test_idx in enumerate(fold_list):
            train_idx = np.concatenate(
                [f for j, f in enumerate(fold_list) if j != i])
            if len(np.unique(labels[train_idx])) < 2:
                continue  # degenerate fold on tiny datasets
            x_train, x_test = standardize(embeddings[train_idx],
                                          embeddings[test_idx])
            model = make_classifier(classifier, seed=seed + repeat)
            model.fit(x_train, labels[train_idx])
            fold_scores.append(accuracy(model.predict(x_test),
                                        labels[test_idx]))
        if fold_scores:
            run_scores.append(float(np.mean(fold_scores)))
    mean, std = mean_std(run_scores)
    return 100.0 * mean, 100.0 * std


def evaluate_node_embeddings(embeddings: np.ndarray, labels: np.ndarray,
                             train_mask: np.ndarray, test_mask: np.ndarray,
                             *, repeats: int = 3,
                             seed: int = 0) -> tuple[float, float]:
    """Linear-probe accuracy on the transductive split, repeated.

    The probe itself is deterministic given the data; repeats vary the probe
    regularization split only through subsampled training masks, matching
    the small variance the paper reports.
    """
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    train_idx = np.flatnonzero(train_mask)
    test_idx = np.flatnonzero(test_mask)
    scores = []
    for repeat in range(repeats):
        rng = seeded_rng(seed + repeat)
        take = max(2, int(round(len(train_idx) * 0.9)))
        subset = rng.choice(train_idx, size=take, replace=False)
        if len(np.unique(labels[subset])) < 2:
            subset = train_idx
        x_train, x_test = standardize(embeddings[subset],
                                      embeddings[test_idx])
        model = make_classifier("logreg")
        model.fit(x_train, labels[subset])
        scores.append(accuracy(model.predict(x_test), labels[test_idx]))
    mean, std = mean_std(scores)
    return 100.0 * mean, 100.0 * std
