"""Evaluation protocols mirroring the paper's setups.

* Graph classification: frozen embeddings -> SVM with k-fold CV (SGD
  classifier for large datasets), repeated over several seeds; report
  mean ± std accuracy (Table IV protocol).
* Node classification: frozen node embeddings -> linear probe trained on the
  transductive train mask, accuracy on the test mask (Table V/VII protocol).

Both protocols run on the fast engine (:mod:`repro.eval.engine` —
streaming fold statistics, batched fold solves, optional parallel CV) by
default; the engine guarantees bit-identical ``(mean, std)`` to the
reference per-fold path, which stays available behind
``engine="reference"`` / ``REPRO_FAST_EVAL=0`` and anchors the
equivalence test suite.  :func:`last_eval_stats` exposes the most recent
evaluation's telemetry (solver, fallback/skip counts, timings) for the
run journal.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np

from ..utils.seed import seeded_rng
from .classifiers import make_classifier
from .metrics import accuracy, mean_std

__all__ = ["standardize", "kfold_indices", "evaluate_graph_embeddings",
           "evaluate_node_embeddings", "fast_eval_enabled",
           "last_eval_stats"]

#: Telemetry of the most recent protocol evaluation (an
#: :class:`repro.eval.engine.EvalStats`), for the run journal.
_last_stats = None


def fast_eval_enabled() -> bool:
    """Default engine choice: fast unless ``REPRO_FAST_EVAL`` disables it."""
    return os.environ.get("REPRO_FAST_EVAL", "1").lower() not in (
        "0", "false", "off")


def last_eval_stats():
    """Stats of the most recent protocol call (None before the first)."""
    return _last_stats


def _pick_engine(engine: str | None) -> bool:
    """True for the fast engine; validates the explicit switch value."""
    if engine is None:
        return fast_eval_enabled()
    if engine not in ("fast", "reference"):
        raise ValueError(
            f"engine must be 'fast' or 'reference', got {engine!r}")
    return engine == "fast"


def _finish(mean: float, std: float, stats) -> tuple[float, float]:
    """Record stats, surface silent fold skips, return the pair."""
    global _last_stats
    _last_stats = stats
    if stats.folds_skipped:
        warnings.warn(
            f"evaluation skipped {stats.folds_skipped} degenerate fold(s) "
            "whose training split had fewer than two classes; the reported "
            "mean/std covers the remaining folds only", RuntimeWarning,
            stacklevel=3)
    return mean, std


def standardize(train: np.ndarray,
                *others: np.ndarray) -> tuple[np.ndarray, ...]:
    """Zero-mean/unit-variance scaling fit on ``train`` only."""
    mean = train.mean(axis=0, keepdims=True)
    std = train.std(axis=0, keepdims=True)
    std[std < 1e-12] = 1.0
    return tuple((arr - mean) / std for arr in (train, *others))


def kfold_indices(n: int, folds: int,
                  rng: np.random.Generator) -> list[np.ndarray]:
    """Shuffled, nearly equal-sized fold index arrays."""
    if folds < 2:
        raise ValueError(f"need at least 2 folds, got {folds}")
    if n < folds:
        raise ValueError(f"cannot split {n} samples into {folds} folds")
    order = rng.permutation(n)
    return [np.asarray(chunk) for chunk in np.array_split(order, folds)]


def evaluate_graph_embeddings(embeddings: np.ndarray, labels: np.ndarray,
                              *, classifier: str = "svm", folds: int = 10,
                              repeats: int = 5, seed: int = 0,
                              engine: str | None = None,
                              eval_workers: int | None = None,
                              ) -> tuple[float, float]:
    """k-fold cross-validated accuracy of a linear classifier, repeated.

    Returns ``(mean, std)`` in percent, the format of the paper's tables.
    ``engine`` selects the fast batched engine or the reference per-fold
    path (``None`` defers to ``REPRO_FAST_EVAL``; both produce identical
    numbers).  ``eval_workers`` fans repeats across a fork pool on the
    fast path (``None`` defers to ``REPRO_EVAL_WORKERS``); the result is
    bit-identical at every worker count.
    """
    from .engine import EvalStats, fast_evaluate_graph

    if _pick_engine(engine):
        mean, std, stats = fast_evaluate_graph(
            embeddings, labels, classifier=classifier, folds=folds,
            repeats=repeats, seed=seed, eval_workers=eval_workers)
        return _finish(mean, std, stats)

    started = time.perf_counter()
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    run_scores = []
    skipped = 0
    for repeat in range(repeats):
        rng = seeded_rng(seed + repeat)
        fold_list = kfold_indices(len(labels), folds, rng)
        fold_scores = []
        for i, test_idx in enumerate(fold_list):
            train_idx = np.concatenate(
                [f for j, f in enumerate(fold_list) if j != i])
            if len(np.unique(labels[train_idx])) < 2:
                skipped += 1
                continue  # degenerate fold on tiny datasets
            x_train, x_test = standardize(embeddings[train_idx],
                                          embeddings[test_idx])
            model = make_classifier(classifier, seed=seed + repeat)
            model.fit(x_train, labels[train_idx])
            fold_scores.append(accuracy(model.predict(x_test),
                                        labels[test_idx]))
        if fold_scores:
            run_scores.append(float(np.mean(fold_scores)))
    mean, std = mean_std(run_scores)
    stats = EvalStats(seconds=time.perf_counter() - started,
                      solver="reference", repeats=repeats,
                      folds_total=folds * repeats,
                      folds_fallback=folds * repeats - skipped,
                      folds_skipped=skipped)
    return _finish(100.0 * mean, 100.0 * std, stats)


def evaluate_node_embeddings(embeddings: np.ndarray, labels: np.ndarray,
                             train_mask: np.ndarray, test_mask: np.ndarray,
                             *, repeats: int = 3, seed: int = 0,
                             engine: str | None = None,
                             ) -> tuple[float, float]:
    """Linear-probe accuracy on the transductive split, repeated.

    The probe itself is deterministic given the data; repeats vary the probe
    regularization split only through subsampled training masks, matching
    the small variance the paper reports.  ``engine`` works as in
    :func:`evaluate_graph_embeddings`.
    """
    from .engine import EvalStats, fast_evaluate_node

    if _pick_engine(engine):
        mean, std, stats = fast_evaluate_node(
            embeddings, labels, train_mask, test_mask, repeats=repeats,
            seed=seed)
        return _finish(mean, std, stats)

    started = time.perf_counter()
    embeddings = np.asarray(embeddings, dtype=np.float64)
    labels = np.asarray(labels)
    train_idx = np.flatnonzero(train_mask)
    test_idx = np.flatnonzero(test_mask)
    scores = []
    for repeat in range(repeats):
        rng = seeded_rng(seed + repeat)
        take = max(2, int(round(len(train_idx) * 0.9)))
        subset = rng.choice(train_idx, size=take, replace=False)
        if len(np.unique(labels[subset])) < 2:
            subset = train_idx
        x_train, x_test = standardize(embeddings[subset],
                                      embeddings[test_idx])
        model = make_classifier("logreg")
        model.fit(x_train, labels[subset])
        scores.append(accuracy(model.predict(x_test), labels[test_idx]))
    mean, std = mean_std(scores)
    stats = EvalStats(seconds=time.perf_counter() - started,
                      solver="reference", repeats=repeats,
                      folds_total=repeats, folds_fallback=repeats)
    return _finish(100.0 * mean, 100.0 * std, stats)
