"""Deterministic random-number management.

Every stochastic component in the library (dataset generation, augmentation,
weight init, dropout, training shuffles) draws from an explicit
``numpy.random.Generator`` so that experiments are reproducible end to end.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["seeded_rng", "set_global_seed"]


def seeded_rng(seed: int | None) -> np.random.Generator:
    """Return a fresh PCG64 generator for ``seed`` (fresh entropy if None)."""
    return np.random.default_rng(seed)


def set_global_seed(seed: int) -> None:
    """Seed python's and numpy's legacy global RNGs (used by networkx)."""
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))
