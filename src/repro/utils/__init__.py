"""Shared utilities: seeding, timing, and result-table formatting."""

from .seed import seeded_rng, set_global_seed
from .timer import Timer
from .tables import format_cell, format_table, print_table

__all__ = ["seeded_rng", "set_global_seed", "Timer", "format_cell",
           "format_table", "print_table"]
