"""Shared utilities: seeding, timing, and result-table formatting."""

from .seed import seeded_rng, set_global_seed
from .timer import LapStats, Timer, lap_statistics
from .tables import format_cell, format_table, print_table

__all__ = ["seeded_rng", "set_global_seed", "Timer", "LapStats",
           "lap_statistics", "format_cell", "format_table", "print_table"]
