"""Plain-text table rendering for the benchmark harness.

Each benchmark prints rows shaped like the paper's tables; these helpers keep
the formatting consistent (fixed-width columns, mean +/- std cells).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_cell", "format_table", "print_table"]


def format_cell(mean: float, std: float | None = None,
                digits: int = 2) -> str:
    """Format a metric cell as ``mean±std`` the way the paper reports it."""
    if std is None:
        return f"{mean:.{digits}f}"
    return f"{mean:.{digits}f}±{std:.{digits}f}"


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render rows as a fixed-width text table with a header rule."""
    rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*headers), fmt.format(*("-" * w for w in widths))]
    lines.extend(fmt.format(*row) for row in rows)
    return "\n".join(lines)


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence[object]]) -> None:
    """Print a titled table (used by every bench target)."""
    print(f"\n=== {title} ===")
    print(format_table(headers, rows))
