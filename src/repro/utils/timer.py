"""Small wall-clock timer used by the efficiency benchmarks (Table VIII)."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self):
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._start = None
