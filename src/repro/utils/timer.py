"""Wall-clock timing utilities for the efficiency benchmarks (Table VIII).

:class:`Timer` supports two styles:

* the original context-manager form, which records one interval in
  ``elapsed``; and
* explicit ``start()`` / ``lap()`` / ``stop()`` calls, which accumulate a
  list of per-lap durations in ``laps`` for robust aggregation.

:func:`lap_statistics` condenses a sample of durations into the order
statistics the benchmark tables report (p50/p95), which are far less
sensitive to scheduler noise than a mean over a handful of epochs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Timer", "LapStats", "lap_statistics"]


class Timer:
    """Wall-clock timer with context-manager and lap-recording APIs.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True

    >>> t = Timer()
    >>> t.start()
    >>> for _ in range(3):
    ...     _ = sum(range(1000))
    ...     _ = t.lap()
    >>> len(t.laps)
    3
    """

    def __init__(self):
        self.elapsed = 0.0
        self.laps: list[float] = []
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def start(self) -> "Timer":
        """Begin timing (also resets the current lap origin)."""
        self._start = time.perf_counter()
        return self

    def lap(self) -> float:
        """Record the time since ``start()``/the previous ``lap()``.

        Appends the duration to ``laps`` and restarts the lap clock.
        """
        if self._start is None:
            raise RuntimeError("Timer.lap() called before start()")
        now = time.perf_counter()
        duration = now - self._start
        self.laps.append(duration)
        self._start = now
        return duration

    def stop(self) -> float:
        """Stop timing; sets ``elapsed`` to the final interval."""
        if self._start is None:
            raise RuntimeError("Timer.stop() called before start()")
        self.elapsed = time.perf_counter() - self._start
        self._start = None
        return self.elapsed

    def statistics(self) -> "LapStats":
        """Aggregate the recorded laps (see :func:`lap_statistics`)."""
        return lap_statistics(self.laps)


@dataclass(frozen=True)
class LapStats:
    """Order statistics over a sample of durations (seconds)."""

    count: int
    total: float
    mean: float
    p50: float
    p95: float


def _percentile(ordered: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (matches ``numpy.percentile``)."""
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def lap_statistics(samples: Sequence[float]) -> LapStats:
    """Summarize durations with count/total/mean and p50/p95.

    Percentiles use linear interpolation between order statistics, the same
    convention as ``numpy.percentile``; pure python keeps this usable from
    contexts where the samples are plain lists (training histories).
    """
    if not samples:
        raise ValueError("lap_statistics needs at least one sample")
    ordered = sorted(float(s) for s in samples)
    total = sum(ordered)
    return LapStats(count=len(ordered), total=total,
                    mean=total / len(ordered),
                    p50=_percentile(ordered, 0.50),
                    p95=_percentile(ordered, 0.95))
