"""GradGCL: Gradient Graph Contrastive Learning — full reproduction.

This package reproduces *GradGCL: Gradient Graph Contrastive Learning*
(ICDE 2024) from scratch on numpy/scipy: a reverse-mode autodiff engine
(:mod:`repro.tensor`), GNN encoders (:mod:`repro.gnn`), graph augmentations
(:mod:`repro.augment`), eleven contrastive/generative baselines
(:mod:`repro.methods`), the GradGCL plug-in itself (:mod:`repro.core`),
synthetic stand-ins for the paper's benchmarks (:mod:`repro.datasets`), and
the full evaluation protocol (:mod:`repro.eval`).

Quickstart::

    import numpy as np
    from repro.datasets import load_tu_dataset
    from repro.methods import SimGRACE, train_graph_method
    from repro.core import gradgcl
    from repro.eval import evaluate_graph_embeddings

    dataset = load_tu_dataset("MUTAG")
    model = gradgcl(SimGRACE(dataset.num_features,
                             rng=np.random.default_rng(0)), weight=0.5)
    train_graph_method(model, dataset.graphs, epochs=20)
    acc, std = evaluate_graph_embeddings(model.embed(dataset.graphs),
                                         dataset.labels())
"""

__version__ = "0.1.0"

from . import augment, baselines, core, datasets, eval, gnn, graph, losses
from . import methods, nn, obs, pipeline, run, serve, tensor, utils

__all__ = ["augment", "baselines", "core", "datasets", "eval", "gnn",
           "graph", "losses", "methods", "nn", "obs", "pipeline", "run",
           "serve", "tensor", "utils", "__version__"]
