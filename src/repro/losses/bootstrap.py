"""Negative-free bootstrap losses (BGRL / SGCL).

BGRL predicts the target network's embedding from the online network's and
minimizes ``2 - 2 cos(prediction, target)``; no negatives are involved.
"""

from __future__ import annotations

from ..tensor import Tensor, l2_normalize

__all__ = ["bootstrap_cosine_loss"]


def bootstrap_cosine_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """BGRL loss ``mean_i (2 - 2 cos(p_i, z_i))``; ``target`` is detached."""
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: {prediction.shape} vs {target.shape}")
    cos = (l2_normalize(prediction) * l2_normalize(target.detach())).sum(axis=1)
    return (2.0 - 2.0 * cos).mean()
