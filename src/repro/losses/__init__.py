"""Contrastive and reconstruction losses plus representation-quality metrics."""

from .infonce import info_nce, nt_xent, similarity_matrix
from .hard_negative import hard_negative_info_nce
from .jsd import jsd_bipartite_loss, jsd_loss
from .sce import sce_loss
from .bootstrap import bootstrap_cosine_loss
from .align_uniform import (
    alignment_loss,
    alignment_value,
    uniformity_loss,
    uniformity_value,
)

__all__ = [
    "info_nce", "nt_xent", "similarity_matrix", "hard_negative_info_nce",
    "jsd_loss", "jsd_bipartite_loss",
    "sce_loss", "bootstrap_cosine_loss",
    "alignment_loss", "uniformity_loss", "alignment_value",
    "uniformity_value",
]
