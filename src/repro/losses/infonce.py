"""InfoNCE / NT-Xent contrastive losses (paper Eq. 4 and Eq. 20).

The InfoNCE loss is the estimator every data-augmentation GCL method in the
paper uses; minimizing it maximizes a lower bound on the mutual information
between the two views (paper Lemma 1).  Three similarity modes are supported:

* ``"dot"`` — raw inner products (matches the paper's Eq. 6 derivation);
* ``"cos"`` — cosine similarity, i.e. inner products of L2-normalized
  embeddings (what GraphCL/GRACE actually optimize);
* ``"euclid"`` — negative squared euclidean distance / 2 (paper Eq. 20, used
  in the dimensional-collapse analysis).
"""

from __future__ import annotations

from ..tensor import (
    Tensor,
    call,
    l2_normalize,
    log_softmax,
    pairwise_sqdist,
)

__all__ = ["similarity_matrix", "info_nce", "nt_xent"]

_SIM_MODES = ("dot", "cos", "euclid")


def similarity_matrix(u: Tensor, v: Tensor, sim: str = "cos") -> Tensor:
    """All-pairs similarity between rows of ``u`` and rows of ``v``."""
    if sim not in _SIM_MODES:
        raise ValueError(f"unknown similarity {sim!r}; choose from {_SIM_MODES}")
    if sim == "cos":
        return l2_normalize(u) @ l2_normalize(v).T
    if sim == "dot":
        return u @ v.T
    return pairwise_sqdist(u, v) * -0.5


def info_nce(u: Tensor, v: Tensor, tau: float = 0.5,
             sim: str = "cos", symmetric: bool = True,
             fused: bool | None = None) -> Tensor:
    """InfoNCE loss between paired views ``u`` and ``v`` (paper Eq. 4).

    Row ``n`` of ``u`` and row ``n`` of ``v`` are a positive pair; all other
    rows of ``v`` act as negatives for anchor ``u_n`` (in-batch negatives).
    The loss per anchor is ``-log softmax_n(sim(u_n, v_*) / tau)``.

    Parameters
    ----------
    symmetric:
        Average the loss over both anchoring directions (u -> v and v -> u),
        the convention of GraphCL/GRACE.
    fused:
        Force the single-node fused kernel (``True``) or the unfused
        reference composition (``False``); ``None`` (default) follows the
        registry dispatch policy (:func:`repro.tensor.use_fused` et al.).
    """
    if u.shape != v.shape:
        raise ValueError(f"view shapes differ: {u.shape} vs {v.shape}")
    if len(u) < 2:
        raise ValueError("InfoNCE needs at least 2 samples for negatives")
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    if sim not in _SIM_MODES:
        raise ValueError(f"unknown similarity {sim!r}; choose from {_SIM_MODES}")
    impl = None if fused is None else ("fused" if fused else "reference")
    return call("info_nce", u, v, tau=tau, sim=sim, symmetric=symmetric,
                impl=impl)


def nt_xent(u: Tensor, v: Tensor, tau: float = 0.5) -> Tensor:
    """SimCLR-style NT-Xent where negatives come from *both* views.

    Provided for completeness; the paper's formulation (Eq. 4) corresponds to
    :func:`info_nce`, which is what the method implementations use.
    """
    from ..tensor import concat

    if u.shape != v.shape:
        raise ValueError(f"view shapes differ: {u.shape} vs {v.shape}")
    n = len(u)
    z = concat([u, v], axis=0)
    logits = similarity_matrix(z, z, "cos") / tau
    # Mask self-similarity by subtracting a large constant on the diagonal.
    import numpy as np

    mask = np.eye(2 * n) * 1e9
    logits = logits - Tensor(mask)
    log_probs = log_softmax(logits, axis=1)
    idx = np.arange(2 * n)
    pos = np.concatenate([np.arange(n, 2 * n), np.arange(n)])
    return -log_probs[idx, pos].mean()
