"""Jensen-Shannon divergence MI estimator (InfoGraph / MVGRL objective).

The JSD estimator scores positive pairs with ``-softplus(-T)`` and negative
pairs with ``-softplus(T)``; maximizing the gap maximizes a JSD-based lower
bound on mutual information.  We expose it both as a paired-view loss (like
InfoNCE) and as a masked bipartite loss for local-global (node-graph)
contrast, which is how InfoGraph and MVGRL use it.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor

__all__ = ["jsd_loss", "jsd_bipartite_loss"]


def jsd_loss(u: Tensor, v: Tensor) -> Tensor:
    """Paired-view JSD loss: diagonal pairs positive, off-diagonal negative."""
    if u.shape != v.shape:
        raise ValueError(f"view shapes differ: {u.shape} vs {v.shape}")
    n = len(u)
    if n < 2:
        raise ValueError("JSD loss needs at least 2 samples for negatives")
    scores = u @ v.T
    positive_mask = np.eye(n, dtype=bool)
    return _masked_jsd(scores, positive_mask)


def jsd_bipartite_loss(local: Tensor, global_: Tensor,
                       positive_mask: np.ndarray) -> Tensor:
    """Local-global JSD loss over an arbitrary positive-pair mask.

    ``positive_mask[i, j]`` is True when local unit ``i`` (e.g. a node)
    belongs to global unit ``j`` (e.g. its graph).
    """
    scores = local @ global_.T
    return _masked_jsd(scores, positive_mask)


def _masked_jsd(scores: Tensor, positive_mask: np.ndarray) -> Tensor:
    """JSD objective on a score matrix with a boolean positive mask."""
    positive_mask = np.asarray(positive_mask, dtype=bool)
    if positive_mask.shape != scores.shape:
        raise ValueError("mask shape must match score matrix shape")
    num_pos = positive_mask.sum()
    num_neg = positive_mask.size - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ValueError("JSD needs both positive and negative pairs")
    pos_weight = Tensor(positive_mask.astype(np.float64) / num_pos)
    neg_weight = Tensor((~positive_mask).astype(np.float64) / num_neg)
    # E_pos[softplus(-T)] + E_neg[softplus(T)], the (negated) JSD MI bound.
    expectation_pos = ((-scores).softplus() * pos_weight).sum()
    expectation_neg = (scores.softplus() * neg_weight).sum()
    return expectation_pos + expectation_neg
