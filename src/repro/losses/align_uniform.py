"""Alignment and uniformity metrics (Wang & Isola; paper Eq. 24-25).

These diagnose representation quality: alignment measures how close positive
pairs sit, uniformity measures how evenly embeddings spread on the unit
hypersphere.  The paper's Fig. 7 tracks both during training, and Fig. 12(b)
uses the alignment term directly as a baseline regularizer.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, l2_normalize, pairwise_sqdist

__all__ = ["alignment_loss", "uniformity_loss", "alignment_value",
           "uniformity_value"]


def alignment_loss(u: Tensor, v: Tensor, alpha: float = 2.0) -> Tensor:
    """Expected positive-pair distance ``E ||u - v||^alpha`` (Eq. 24).

    Inputs are L2-normalized first, matching the hypersphere setting.
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    diff = l2_normalize(u) - l2_normalize(v)
    sq = (diff * diff).sum(axis=1)
    if alpha == 2.0:
        return sq.mean()
    return ((sq + 1e-12) ** (alpha / 2.0)).mean()


def uniformity_loss(u: Tensor, t: float = 2.0) -> Tensor:
    """Log expected Gaussian potential between random pairs (Eq. 25)."""
    if t <= 0:
        raise ValueError(f"t must be positive, got {t}")
    z = l2_normalize(u)
    n = len(z)
    if n < 2:
        raise ValueError("uniformity needs at least 2 samples")
    sq = pairwise_sqdist(z, z)
    off_diag = ~np.eye(n, dtype=bool)
    potentials = (sq * -t).exp()[off_diag]
    return potentials.mean().log()


def alignment_value(u: np.ndarray, v: np.ndarray, alpha: float = 2.0) -> float:
    """Numpy convenience wrapper returning a float (for logging curves)."""
    return alignment_loss(Tensor(u), Tensor(v), alpha).item()


def uniformity_value(u: np.ndarray, t: float = 2.0) -> float:
    """Numpy convenience wrapper returning a float (for logging curves)."""
    return uniformity_loss(Tensor(u), t).item()
