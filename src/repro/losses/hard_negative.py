"""Hard-negative-weighted InfoNCE (HCL-style reweighting).

The paper argues (Sec. III-A.2) that existing GCL fails on hard negatives
and that the *gradient channel* supplies the missing instance-level signal.
An alternative family of fixes reweights hard negatives explicitly
(Robinson et al. 2021's hard-negative contrastive loss); we implement that
competitor so the extra-ablation bench can compare "explicit hard-negative
pressure" against GradGCL's implicit one.

Each negative's weight is ``exp(beta * sim)`` (normalized), concentrating
the repulsion budget on the most confusable negatives; ``beta = 0``
recovers plain InfoNCE.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, l2_normalize, log_softmax, softmax

__all__ = ["hard_negative_info_nce"]


def hard_negative_info_nce(u: Tensor, v: Tensor, tau: float = 0.5,
                           beta: float = 1.0) -> Tensor:
    """InfoNCE with hard-negative up-weighting.

    Parameters
    ----------
    beta:
        Hardness concentration; 0 recovers the plain (asymmetric) InfoNCE.
    """
    if u.shape != v.shape:
        raise ValueError(f"view shapes differ: {u.shape} vs {v.shape}")
    if len(u) < 2:
        raise ValueError("needs at least 2 samples for negatives")
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")

    n = len(u)
    u_hat, v_hat = l2_normalize(u), l2_normalize(v)
    sims = u_hat @ v_hat.T                       # (n, n)
    diag = np.eye(n, dtype=bool)

    # Importance weights over negatives: w_ij ∝ exp(beta * sim_ij), with
    # the positive excluded and each row renormalized to sum to (n - 1) so
    # beta = 0 gives uniform weight 1 per negative (plain InfoNCE).
    neg_logits = sims * beta - Tensor(diag * 1e9)
    weights = softmax(neg_logits, axis=1) * float(n - 1)

    # Weighted log-denominator: log(exp(pos/tau) + sum_j w_ij exp(neg/tau)).
    scaled = sims / tau
    pos_term = scaled[diag].reshape(n, 1)
    # Use a weighted softmax trick: logits + log(weights) implements the
    # weighting inside logsumexp; the positive keeps weight 1.
    log_weights = (weights + 1e-12).log() * Tensor((~diag).astype(float))
    adjusted = scaled + log_weights - Tensor(diag * 0.0)
    log_probs = pos_term - _logsumexp_rows(adjusted)
    return -log_probs.mean()


def _logsumexp_rows(x: Tensor) -> Tensor:
    shift = Tensor(x.data.max(axis=1, keepdims=True))
    return (x - shift).exp().sum(axis=1, keepdims=True).log() + shift
