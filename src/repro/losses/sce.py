"""Scaled cosine error — GraphMAE's reconstruction loss.

SCE is *not* a contrastive loss; the paper's Fig. 11 ablation shows GradGCL
does not help it (there is no positive/negative structure for gradients to
soften).  We implement it so that ablation can be reproduced.
"""

from __future__ import annotations

from ..tensor import Tensor, l2_normalize

__all__ = ["sce_loss"]


def sce_loss(reconstruction: Tensor, target: Tensor,
             gamma: float = 2.0) -> Tensor:
    """Scaled cosine error ``mean((1 - cos(x, x_hat))^gamma)``."""
    if reconstruction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: {reconstruction.shape} vs {target.shape}")
    if gamma < 1:
        raise ValueError(f"gamma must be >= 1, got {gamma}")
    cos = (l2_normalize(reconstruction) * l2_normalize(target)).sum(axis=1)
    return ((1.0 - cos) ** gamma).mean()
