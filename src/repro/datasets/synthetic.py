"""Synthetic graph generators with plantable class signal.

No network access is available in this environment, so the paper's public
benchmarks (TUDataset, Planetoid, OGB, MoleculeNet) are replaced by seeded
generators that mimic each dataset's *statistics* (graph counts, sizes,
class counts) while planting learnable class structure:

* **graph classification** — each class combines a distinct edge-density
  regime, a distinct planted motif (triangle/clique/star/cycle), and a noisy
  class-prototype feature direction;
* **node classification** — a stochastic block model whose blocks are the
  classes, with per-class feature prototypes;
* **molecules** (transfer learning) — random backbones decorated with
  functional-group motifs from a shared vocabulary; downstream labels depend
  on motif presence, so motif-aware pretraining transfers.

The class signal is deliberately redundant across structure and features,
the same property that makes real benchmarks learnable by GCL.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = [
    "erdos_renyi_edges",
    "barabasi_albert_edges",
    "ring_lattice_edges",
    "plant_motif",
    "class_prototypes",
    "graph_classification_sample",
    "sbm_node_graph",
    "MOTIFS",
]


# ----------------------------------------------------------------------
# Edge-list generators (faster than networkx for many small graphs)
# ----------------------------------------------------------------------
def erdos_renyi_edges(n: int, p: float, rng: np.random.Generator) -> np.ndarray:
    """All-pairs Bernoulli edges for a small graph."""
    if n < 2:
        return np.empty((0, 2), dtype=np.int64)
    iu = np.triu_indices(n, k=1)
    mask = rng.random(len(iu[0])) < p
    return np.stack([iu[0][mask], iu[1][mask]], axis=1).astype(np.int64)


def barabasi_albert_edges(n: int, m: int,
                          rng: np.random.Generator) -> np.ndarray:
    """Preferential-attachment edges (BA model, ``m`` edges per new node)."""
    m = max(1, min(m, n - 1))
    edges: list[tuple[int, int]] = []
    targets = list(range(m))
    repeated: list[int] = list(range(m))
    for source in range(m, n):
        chosen = set()
        while len(chosen) < m:
            chosen.add(int(repeated[int(rng.integers(0, len(repeated)))])
                       if repeated else int(rng.integers(0, source)))
        for t in chosen:
            edges.append((t, source))
            repeated.extend([t, source])
    return Graph.canonical_edges(np.array(edges, dtype=np.int64))


def ring_lattice_edges(n: int, k: int = 2) -> np.ndarray:
    """Ring lattice: each node connects to its ``k`` nearest ring neighbours."""
    edges = []
    for i in range(n):
        for offset in range(1, k + 1):
            edges.append((i, (i + offset) % n))
    return Graph.canonical_edges(np.array(edges, dtype=np.int64))


# ----------------------------------------------------------------------
# Motifs
# ----------------------------------------------------------------------
MOTIFS: dict[str, np.ndarray] = {
    "triangle": np.array([[0, 1], [1, 2], [0, 2]]),
    "square": np.array([[0, 1], [1, 2], [2, 3], [0, 3]]),
    "clique4": np.array([[0, 1], [0, 2], [0, 3], [1, 2], [1, 3], [2, 3]]),
    "star4": np.array([[0, 1], [0, 2], [0, 3], [0, 4]]),
    "path4": np.array([[0, 1], [1, 2], [2, 3]]),
    "pentagon": np.array([[0, 1], [1, 2], [2, 3], [3, 4], [0, 4]]),
}

_MOTIF_CYCLE = list(MOTIFS)


def plant_motif(edges: np.ndarray, num_nodes: int, motif: str,
                rng: np.random.Generator) -> np.ndarray:
    """Overlay a motif onto randomly chosen existing nodes."""
    template = MOTIFS[motif]
    size = int(template.max()) + 1
    if num_nodes < size:
        return edges
    anchors = rng.choice(num_nodes, size=size, replace=False)
    planted = anchors[template]
    combined = (np.concatenate([edges, planted], axis=0)
                if edges.size else planted)
    return Graph.canonical_edges(combined)


# ----------------------------------------------------------------------
# Features
# ----------------------------------------------------------------------
def class_prototypes(num_classes: int, dim: int,
                     rng: np.random.Generator) -> np.ndarray:
    """Random near-orthogonal unit prototype per class."""
    protos = rng.normal(size=(num_classes, dim))
    return protos / np.linalg.norm(protos, axis=1, keepdims=True)


# ----------------------------------------------------------------------
# Graph-classification sampler
# ----------------------------------------------------------------------
def graph_classification_sample(label: int, num_classes: int, avg_nodes: int,
                                feature_dim: int, prototypes: np.ndarray,
                                rng: np.random.Generator, *,
                                feature_noise: float = 1.0,
                                structure_strength: float = 1.0,
                                density: float | None = None) -> Graph:
    """Sample one labelled graph.

    Class signal is planted three ways: (1) class-dependent edge density,
    (2) class-dependent motif overlays, (3) class-prototype node features.
    ``structure_strength`` scales (1)-(2), ``feature_noise`` the inverse of
    (3)'s signal-to-noise.
    """
    if not 0 <= label < num_classes:
        raise ValueError(f"label {label} out of range for {num_classes} classes")
    n = max(4, int(rng.poisson(avg_nodes)))

    base_density = density if density is not None else min(4.0 / n, 0.9)
    # Class-dependent density bump keeps densities distinguishable.
    bump = 1.0 + structure_strength * 0.35 * (label / max(num_classes - 1, 1))
    edges = erdos_renyi_edges(n, base_density * bump, rng)

    # Plant label-specific motifs (count scales with graph size).
    motif = _MOTIF_CYCLE[label % len(_MOTIF_CYCLE)]
    num_motifs = max(1, int(round(structure_strength * n / 12)))
    for _ in range(num_motifs):
        edges = plant_motif(edges, n, motif, rng)

    # Ensure connectivity-ish: chain isolated nodes to a random neighbour.
    degree = np.zeros(n, dtype=np.int64)
    if edges.size:
        np.add.at(degree, edges.ravel(), 1)
    isolated = np.flatnonzero(degree == 0)
    if isolated.size and n > 1:
        extra = [(int(i), int((i + 1) % n)) for i in isolated]
        edges = Graph.canonical_edges(
            np.concatenate([edges, np.array(extra, dtype=np.int64)], axis=0)
            if edges.size else np.array(extra, dtype=np.int64))

    features = (prototypes[label][None, :]
                + feature_noise * rng.normal(size=(n, feature_dim)))
    return Graph(n, edges, features, y=label)


# ----------------------------------------------------------------------
# Node-classification (SBM) sampler
# ----------------------------------------------------------------------
def sbm_node_graph(num_nodes: int, num_classes: int, feature_dim: int,
                   rng: np.random.Generator, *, p_in: float = 0.05,
                   p_out: float = 0.005, feature_noise: float = 1.0) -> Graph:
    """Stochastic-block-model graph whose blocks are the node classes."""
    if num_classes < 2:
        raise ValueError("need at least 2 classes")
    labels = rng.integers(0, num_classes, size=num_nodes)
    prototypes = class_prototypes(num_classes, feature_dim, rng)

    # Vectorized SBM edge sampling over the upper triangle.
    iu, ju = np.triu_indices(num_nodes, k=1)
    same = labels[iu] == labels[ju]
    probs = np.where(same, p_in, p_out)
    mask = rng.random(len(iu)) < probs
    edges = np.stack([iu[mask], ju[mask]], axis=1).astype(np.int64)

    features = (prototypes[labels]
                + feature_noise * rng.normal(size=(num_nodes, feature_dim)))
    graph = Graph(num_nodes, edges, features)
    graph.node_y = labels.astype(np.int64)
    return graph
