"""TU-style graph-classification datasets (paper Table I).

Each named dataset is generated synthetically with the class structure of
:func:`repro.datasets.synthetic.graph_classification_sample`, sized to mimic
the real benchmark at a configurable scale.  ``scale="paper"`` reproduces
Table I's graph counts; the default ``scale="small"`` keeps everything
runnable on one CPU while preserving class balance, class count, and the
relative size ordering of the datasets.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..graph import Graph
from ..utils.seed import seeded_rng
from .synthetic import class_prototypes, graph_classification_sample

__all__ = ["TUSpec", "GraphDataset", "TU_SPECS", "load_tu_dataset",
           "tu_dataset_names"]


@dataclass(frozen=True)
class TUSpec:
    """Statistics of one Table-I dataset plus generator knobs."""

    name: str
    category: str
    num_graphs: int          # paper-scale graph count (Table I)
    num_classes: int
    avg_nodes: float         # paper-scale average node count
    small_graphs: int        # graphs at scale="small"
    small_avg_nodes: int     # average nodes at scale="small"
    feature_dim: int = 8
    feature_noise: float = 1.0
    structure_strength: float = 1.0


# Table I of the paper, with the scaled-down defaults we actually run.
# The ``feature_noise`` knobs are calibrated so frozen-embedding accuracy
# lands in the paper's 50-90% band (saturated generators would hide the
# base-vs-GradGCL differences the benchmarks measure).
TU_SPECS: dict[str, TUSpec] = {spec.name: spec for spec in [
    TUSpec("NCI1", "Biochemical", 4110, 2, 29.87, 360, 24,
           feature_noise=4.5),
    TUSpec("PROTEINS", "Biochemical", 1113, 2, 39.06, 240, 30,
           feature_noise=4.5),
    TUSpec("DD", "Biochemical", 1178, 2, 284.32, 160, 70,
           feature_noise=5.0),
    TUSpec("MUTAG", "Biochemical", 188, 2, 17.93, 188, 18,
           feature_noise=3.5),
    TUSpec("COLLAB", "Social Networks", 5000, 2, 74.49, 320, 40,
           feature_noise=4.5),
    TUSpec("IMDB-B", "Social Networks", 1000, 2, 19.77, 300, 20,
           feature_noise=4.0),
    TUSpec("RDT-B", "Social Networks", 2000, 2, 429.63, 160, 60,
           feature_noise=4.5),
    TUSpec("RDT-M5K", "Social Networks", 4999, 5, 508.52, 250, 50,
           feature_noise=3.0),
    TUSpec("RDT-M12K", "Social Networks", 11929, 11, 391.41, 330, 40,
           feature_noise=3.0),
    TUSpec("TWITTER-RGP", "Social Networks", 144033, 2, 4.03, 900, 6,
           feature_noise=4.0),
]}


class GraphDataset:
    """A labelled collection of graphs with Table-I style statistics."""

    def __init__(self, name: str, graphs: list[Graph], num_classes: int,
                 category: str = "Synthetic"):
        if not graphs:
            raise ValueError("dataset must contain at least one graph")
        self.name = name
        self.graphs = graphs
        self.num_classes = num_classes
        self.category = category

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, index: int) -> Graph:
        return self.graphs[index]

    @property
    def num_features(self) -> int:
        return self.graphs[0].num_features

    def labels(self) -> np.ndarray:
        return np.array([g.y for g in self.graphs], dtype=np.int64)

    def statistics(self) -> dict[str, float]:
        """Row of Table I: counts, classes, average nodes/edges."""
        nodes = [g.num_nodes for g in self.graphs]
        edges = [g.num_edges for g in self.graphs]
        return {
            "name": self.name,
            "category": self.category,
            "num_graphs": len(self.graphs),
            "num_classes": self.num_classes,
            "avg_nodes": float(np.mean(nodes)),
            "avg_edges": float(np.mean(edges)),
        }


def tu_dataset_names() -> list[str]:
    """Names of the available Table-I style datasets."""
    return list(TU_SPECS)


def load_tu_dataset(name: str, *, scale: str = "small",
                    seed: int = 0) -> GraphDataset:
    """Generate the named TU-style dataset deterministically.

    Parameters
    ----------
    scale:
        ``"small"`` (default, single-CPU friendly), ``"tiny"`` (for unit
        tests and quick benches), or ``"paper"`` (Table I graph counts).
    seed:
        Generator seed; the same (name, scale, seed) always yields the same
        dataset.
    """
    if name not in TU_SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {tu_dataset_names()}")
    spec = TU_SPECS[name]
    if scale == "paper":
        num_graphs, avg_nodes = spec.num_graphs, int(round(spec.avg_nodes))
    elif scale == "small":
        num_graphs, avg_nodes = spec.small_graphs, spec.small_avg_nodes
    elif scale == "tiny":
        num_graphs = max(8 * spec.num_classes, spec.small_graphs // 5)
        avg_nodes = max(6, spec.small_avg_nodes // 2)
    else:
        raise ValueError(f"unknown scale {scale!r}")

    rng = seeded_rng(seed + zlib.crc32(name.encode()) % (2 ** 16))
    prototypes = class_prototypes(spec.num_classes, spec.feature_dim, rng)
    labels = np.arange(num_graphs) % spec.num_classes  # balanced classes
    rng.shuffle(labels)
    graphs = [
        graph_classification_sample(
            int(label), spec.num_classes, avg_nodes, spec.feature_dim,
            prototypes, rng, feature_noise=spec.feature_noise,
            structure_strength=spec.structure_strength)
        for label in labels
    ]
    return GraphDataset(name, graphs, spec.num_classes, spec.category)
