"""Dataset caching: save/load generated datasets as ``.npz`` archives.

Generation is deterministic and fast, but caching matters when running
many benches against the same (name, scale, seed) triple or when shipping
a frozen copy of an experiment's data.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..graph import Graph
from .tudataset import GraphDataset

__all__ = ["save_graph_dataset", "load_graph_dataset"]


def save_graph_dataset(dataset: GraphDataset, path: str | Path) -> Path:
    """Serialize a :class:`GraphDataset` (graphs + labels) to ``path``."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "__name__": np.array(dataset.name),
        "__category__": np.array(dataset.category),
        "__num_classes__": np.array(dataset.num_classes),
        "__num_graphs__": np.array(len(dataset)),
    }
    for i, graph in enumerate(dataset.graphs):
        payload[f"g{i}_edges"] = graph.edges
        payload[f"g{i}_x"] = graph.x
        payload[f"g{i}_y"] = np.array(-1 if graph.y is None else graph.y)
    np.savez_compressed(path, **payload)
    return path


def load_graph_dataset(path: str | Path) -> GraphDataset:
    """Inverse of :func:`save_graph_dataset`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        count = int(archive["__num_graphs__"])
        graphs = []
        for i in range(count):
            x = archive[f"g{i}_x"]
            y = int(archive[f"g{i}_y"])
            graphs.append(Graph(len(x), archive[f"g{i}_edges"], x,
                                None if y < 0 else y))
        return GraphDataset(str(archive["__name__"]), graphs,
                            int(archive["__num_classes__"]),
                            str(archive["__category__"]))
