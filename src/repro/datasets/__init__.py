"""Synthetic dataset generators mirroring the paper's benchmark tables."""

from .synthetic import (
    MOTIFS,
    barabasi_albert_edges,
    class_prototypes,
    erdos_renyi_edges,
    graph_classification_sample,
    plant_motif,
    ring_lattice_edges,
    sbm_node_graph,
)
from .tudataset import (
    TU_SPECS,
    GraphDataset,
    TUSpec,
    load_tu_dataset,
    tu_dataset_names,
)
from .citation import (
    NODE_SPECS,
    NodeDataset,
    NodeSpec,
    load_node_dataset,
    node_dataset_names,
)
from .io import load_graph_dataset, save_graph_dataset
from .molecules import (
    MOLECULE_SPECS,
    NUM_ATOM_TYPES,
    MoleculeSpec,
    load_molecule_dataset,
    load_pretrain_dataset,
    molecule_dataset_names,
)

__all__ = [
    "MOTIFS", "erdos_renyi_edges", "barabasi_albert_edges",
    "ring_lattice_edges", "plant_motif", "class_prototypes",
    "graph_classification_sample", "sbm_node_graph",
    "TUSpec", "TU_SPECS", "GraphDataset", "load_tu_dataset",
    "tu_dataset_names",
    "NodeSpec", "NODE_SPECS", "NodeDataset", "load_node_dataset",
    "node_dataset_names",
    "MoleculeSpec", "MOLECULE_SPECS", "NUM_ATOM_TYPES",
    "load_molecule_dataset", "load_pretrain_dataset",
    "molecule_dataset_names",
    "save_graph_dataset", "load_graph_dataset",
]
