"""Node-classification datasets (paper Table II).

Citation / co-purchase / co-authorship graphs are replaced by stochastic
block models whose blocks are the node classes, with class-prototype
features, sized down from Table II.  Train/val/test splits follow the
transductive protocol of GRACE/MVGRL: a small labelled training set, the
rest split between validation and test.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..graph import Graph
from ..utils.seed import seeded_rng
from .synthetic import sbm_node_graph

__all__ = ["NodeSpec", "NodeDataset", "NODE_SPECS", "load_node_dataset",
           "node_dataset_names"]


@dataclass(frozen=True)
class NodeSpec:
    """Statistics of one Table-II dataset plus generator knobs."""

    name: str
    num_nodes: int           # paper-scale node count (Table II)
    num_classes: int
    feature_dim_paper: int
    small_nodes: int         # nodes at scale="small"
    feature_dim: int = 32    # feature dim at scale="small"
    p_in: float = 0.05
    p_out: float = 0.005
    feature_noise: float = 1.2
    train_per_class: int = 20


NODE_SPECS: dict[str, NodeSpec] = {spec.name: spec for spec in [
    NodeSpec("Cora", 2708, 7, 1433, 560),
    NodeSpec("CiteSeer", 3327, 6, 3703, 540),
    NodeSpec("PubMed", 19717, 3, 500, 600),
    NodeSpec("WikiCS", 11701, 10, 300, 700, p_in=0.06),
    NodeSpec("Amazon-Computers", 13752, 10, 767, 700, p_in=0.06),
    NodeSpec("Amazon-Photo", 7650, 8, 745, 640, p_in=0.06),
    NodeSpec("Coauthor-CS", 18333, 15, 6805, 750, p_in=0.08),
    NodeSpec("Coauthor-Physics", 34493, 5, 8415, 650),
    NodeSpec("ogbn-Arxiv", 169343, 40, 128, 1200, p_in=0.10,
             feature_noise=1.0, train_per_class=10),
]}


class NodeDataset:
    """A node-labelled graph with transductive train/val/test masks."""

    def __init__(self, name: str, graph: Graph, num_classes: int,
                 train_mask: np.ndarray, val_mask: np.ndarray,
                 test_mask: np.ndarray):
        if graph.node_y is None:
            raise ValueError("node dataset requires per-node labels")
        self.name = name
        self.graph = graph
        self.num_classes = num_classes
        self.train_mask = train_mask
        self.val_mask = val_mask
        self.test_mask = test_mask

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def num_features(self) -> int:
        return self.graph.num_features

    def labels(self) -> np.ndarray:
        return self.graph.node_y

    def statistics(self) -> dict[str, float]:
        """Row of Table II: nodes, edges, features, classes."""
        return {
            "name": self.name,
            "nodes": self.graph.num_nodes,
            "edges": self.graph.num_edges,
            "features": self.graph.num_features,
            "classes": self.num_classes,
        }


def node_dataset_names() -> list[str]:
    """Names of the available Table-II style datasets."""
    return list(NODE_SPECS)


def load_node_dataset(name: str, *, scale: str = "small",
                      seed: int = 0) -> NodeDataset:
    """Generate the named node-classification dataset deterministically."""
    if name not in NODE_SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {node_dataset_names()}")
    spec = NODE_SPECS[name]
    if scale == "small":
        num_nodes, feature_dim = spec.small_nodes, spec.feature_dim
    elif scale == "tiny":
        num_nodes = max(30 * spec.num_classes, spec.small_nodes // 4)
        feature_dim = max(8, spec.feature_dim // 2)
    elif scale == "paper":
        num_nodes, feature_dim = spec.num_nodes, spec.feature_dim_paper
    else:
        raise ValueError(f"unknown scale {scale!r}")

    rng = seeded_rng(seed + zlib.crc32(name.encode()) % (2 ** 16))
    graph = sbm_node_graph(num_nodes, spec.num_classes, feature_dim, rng,
                           p_in=spec.p_in, p_out=spec.p_out,
                           feature_noise=spec.feature_noise)

    labels = graph.node_y
    train_mask = np.zeros(num_nodes, dtype=bool)
    for c in range(spec.num_classes):
        members = np.flatnonzero(labels == c)
        rng.shuffle(members)
        take = min(spec.train_per_class, max(1, len(members) // 3))
        train_mask[members[:take]] = True
    remaining = np.flatnonzero(~train_mask)
    rng.shuffle(remaining)
    split = len(remaining) // 3
    val_mask = np.zeros(num_nodes, dtype=bool)
    test_mask = np.zeros(num_nodes, dtype=bool)
    val_mask[remaining[:split]] = True
    test_mask[remaining[split:]] = True
    return NodeDataset(name, graph, spec.num_classes, train_mask, val_mask,
                       test_mask)
