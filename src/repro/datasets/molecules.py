"""Molecule-style datasets for transfer learning (paper Table III).

The paper pretrains on ZINC-2M / PPI-306K and finetunes on MoleculeNet / PPI
splits.  Our substitute: "molecules" are random sparse backbones decorated
with functional-group motifs drawn from a shared vocabulary; every atom
carries a one-hot "atom type" feature influenced by its motif.  Downstream
binary labels are logical functions of motif presence plus label noise, so a
pretrained encoder that has learned to recognize motifs transfers — exactly
the mechanism pretrain-finetune experiments probe.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from ..graph import Graph
from ..utils.seed import seeded_rng
from .synthetic import MOTIFS
from .tudataset import GraphDataset

__all__ = ["MoleculeSpec", "MOLECULE_SPECS", "load_pretrain_dataset",
           "load_molecule_dataset", "molecule_dataset_names",
           "NUM_ATOM_TYPES"]

NUM_ATOM_TYPES = 8
_VOCAB = list(MOTIFS)  # shared functional-group vocabulary


@dataclass(frozen=True)
class MoleculeSpec:
    """One Table-III finetuning dataset: size and labelling rule."""

    name: str
    num_graphs_paper: int
    small_graphs: int
    avg_nodes: int
    # Label = 1 when any of these motifs is present (xor with noise below).
    positive_motifs: tuple[str, ...]
    label_noise: float = 0.1


MOLECULE_SPECS: dict[str, MoleculeSpec] = {spec.name: spec for spec in [
    MoleculeSpec("BBBP", 2039, 160, 20, ("triangle",)),
    MoleculeSpec("Tox21", 7831, 200, 18, ("clique4",)),
    MoleculeSpec("ToxCast", 8576, 200, 18, ("star4",)),
    MoleculeSpec("SIDER", 1427, 140, 24, ("square",)),
    MoleculeSpec("ClinTox", 1477, 140, 22, ("pentagon",)),
    MoleculeSpec("MUV", 93087, 220, 20, ("triangle", "square")),
    MoleculeSpec("HIV", 41127, 220, 20, ("clique4", "star4")),
    MoleculeSpec("BACE", 1513, 150, 24, ("pentagon", "triangle")),
    MoleculeSpec("PPI", 24, 160, 30, ("star4", "square"), label_noise=0.05),
]}


def molecule_dataset_names() -> list[str]:
    """Names of the available Table-III style finetune datasets."""
    return list(MOLECULE_SPECS)


def _sample_molecule(avg_nodes: int, rng: np.random.Generator,
                     motifs: list[str]) -> tuple[Graph, set[str]]:
    """One molecule: path backbone + planted functional groups."""
    n = max(6, int(rng.poisson(avg_nodes)))
    # Chain backbone keeps the "molecule" connected and sparse.
    backbone = np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
    edges = backbone.astype(np.int64)
    atom_types = rng.integers(0, NUM_ATOM_TYPES, size=n)

    present: set[str] = set()
    num_groups = int(rng.integers(1, 4))
    for _ in range(num_groups):
        motif = motifs[int(rng.integers(0, len(motifs)))]
        template = MOTIFS[motif]
        size = int(template.max()) + 1
        if n < size:
            continue
        anchors = rng.choice(n, size=size, replace=False)
        edges = Graph.canonical_edges(
            np.concatenate([edges, anchors[template]], axis=0))
        # Functional group biases its atoms towards a motif-specific type.
        atom_types[anchors] = _VOCAB.index(motif) % NUM_ATOM_TYPES
        present.add(motif)

    features = np.zeros((n, NUM_ATOM_TYPES))
    features[np.arange(n), atom_types] = 1.0
    return Graph(n, edges, features), present


def load_pretrain_dataset(name: str = "ZINC-2M", *, scale: str = "small",
                          seed: int = 0) -> GraphDataset:
    """Unlabelled pretraining corpus (ZINC-2M or PPI-306K analogue)."""
    sizes = {"ZINC-2M": (2_000_000, 400, 20),
             "PPI-306K": (306_925, 300, 26)}
    if name not in sizes:
        raise KeyError(f"unknown pretrain dataset {name!r}")
    paper_count, small_count, avg_nodes = sizes[name]
    if scale == "paper":
        count = paper_count
    elif scale == "small":
        count = small_count
    elif scale == "tiny":
        count = small_count // 5
    else:
        raise ValueError(f"unknown scale {scale!r}")
    rng = seeded_rng(seed + zlib.crc32(name.encode()) % (2 ** 16))
    graphs = [_sample_molecule(avg_nodes, rng, _VOCAB)[0]
              for _ in range(count)]
    return GraphDataset(name, graphs, num_classes=1, category="Pretrain")


def load_molecule_dataset(name: str, *, scale: str = "small",
                          seed: int = 0) -> GraphDataset:
    """Labelled finetuning dataset with a motif-based labelling rule."""
    if name not in MOLECULE_SPECS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {molecule_dataset_names()}")
    spec = MOLECULE_SPECS[name]
    if scale == "paper":
        count = spec.num_graphs_paper
    elif scale == "small":
        count = spec.small_graphs
    elif scale == "tiny":
        count = max(40, spec.small_graphs // 4)
    else:
        raise ValueError(f"unknown scale {scale!r}")

    rng = seeded_rng(seed + zlib.crc32(name.encode()) % (2 ** 16))
    graphs = []
    for _ in range(count):
        graph, present = _sample_molecule(spec.avg_nodes, rng, _VOCAB)
        label = int(bool(present & set(spec.positive_motifs)))
        if rng.random() < spec.label_noise:
            label = 1 - label
        graph.y = label
        graphs.append(graph)
    return GraphDataset(name, graphs, num_classes=2, category="Biochemical")
