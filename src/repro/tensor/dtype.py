"""Floating-point dtype policy for the tensor engine.

The engine historically computed everything in float64.  That is the right
default for gradcheck and the theory benches (their assertions sit at 1e-8
tolerances), but training itself is bandwidth-bound on CPU and runs close to
2x faster in float32 at indistinguishable final accuracy.  This module holds
the module-level switch:

* :func:`set_default_dtype` — change the dtype new leaf tensors are created
  with (``float32`` or ``float64``);
* :func:`autocast` — context manager that sets and restores the default,
  intended for training loops and benchmarks;
* :func:`get_default_dtype` — read the current policy.

The policy applies at *tensor creation*: ``Tensor(...)``, ``as_tensor`` on
scalars/arrays, and parameter initialization all coerce to the default.
Interior autograd nodes keep the dtype their inputs produced, so a graph
built under ``autocast("float32")`` stays float32 end to end (gradients
included) while an explicitly float64 workload is never silently downcast
mid-graph.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["set_default_dtype", "get_default_dtype", "autocast"]

_ALLOWED = {
    np.dtype(np.float32): np.float32,
    np.dtype(np.float64): np.float64,
}

_DEFAULT_DTYPE = np.float64


def _validate(dtype) -> type:
    try:
        key = np.dtype(dtype)
    except TypeError:
        raise ValueError(f"unsupported dtype {dtype!r}") from None
    if key not in _ALLOWED:
        raise ValueError(
            f"unsupported dtype {dtype!r}; choose float32 or float64")
    return _ALLOWED[key]


def set_default_dtype(dtype) -> type:
    """Set the dtype for newly created leaf tensors; returns the previous one.

    Accepts ``np.float32``/``np.float64`` or the strings ``"float32"`` /
    ``"float64"``.
    """
    global _DEFAULT_DTYPE
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = _validate(dtype)
    return previous


def get_default_dtype() -> type:
    """Return the current default floating dtype (float32 or float64)."""
    return _DEFAULT_DTYPE


@contextlib.contextmanager
def autocast(dtype=np.float32):
    """Temporarily switch the default dtype (like a coarse torch.autocast).

    Build the model *and* run the training steps inside the context so
    parameters, inputs, and constants agree; mixing float64 parameters with
    float32 activations silently promotes everything back to float64.
    """
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)
