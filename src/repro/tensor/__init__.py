"""Numpy-backed reverse-mode autodiff substrate (replaces PyTorch autograd)."""

from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from .dtype import autocast, get_default_dtype, set_default_dtype
from .ops import (
    concat,
    cosine_similarity_matrix,
    dot_rows,
    dropout_mask,
    gather_rows,
    l2_normalize,
    log_softmax,
    logsumexp,
    pairwise_sqdist,
    segment_max,
    segment_mean,
    segment_sum,
    softmax,
    spmm,
    stack,
    where,
)
from .fused import (
    fused_gradient_features,
    fused_info_nce,
    fused_l2_normalize,
    fused_linear,
    fused_segment_mean,
)
from .registry import (
    OpEntry,
    call,
    fused_kernels,
    get_op,
    op_impl,
    op_names,
    register_op,
    set_fused,
    use_fused,
)
from .plan import Plan, PlanCache, PlanCaptureError, capture, plan_cache_for

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "autocast", "get_default_dtype", "set_default_dtype",
    "concat", "stack", "spmm", "segment_sum", "segment_mean", "segment_max",
    "gather_rows", "logsumexp", "softmax", "log_softmax", "l2_normalize",
    "cosine_similarity_matrix", "pairwise_sqdist", "dot_rows", "where",
    "dropout_mask",
    "fused_info_nce", "fused_gradient_features", "fused_linear",
    "fused_l2_normalize", "fused_segment_mean",
    "OpEntry", "register_op", "get_op", "op_names", "call", "op_impl",
    "fused_kernels", "set_fused", "use_fused",
    "Plan", "PlanCache", "PlanCaptureError", "capture", "plan_cache_for",
]
