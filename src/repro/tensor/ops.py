"""Composite and structured differentiable operations.

These build on the :class:`~repro.tensor.tensor.Tensor` primitives and supply
what graph neural networks need beyond basic arithmetic:

* numerically stable ``softmax`` / ``log_softmax`` / ``logsumexp``;
* ``concat`` / ``stack`` for combining tensors;
* ``spmm`` — sparse (scipy) x dense matmul, the message-passing workhorse;
* ``segment_sum`` / ``segment_mean`` / ``segment_max`` — per-graph readout of
  node features in a block-diagonal batch;
* embedding-style ``gather_rows``;
* ``l2_normalize``, ``cosine_similarity_matrix``, ``pairwise_sqdist`` used by
  the contrastive losses.

``segment_sum`` dispatches to a ``np.add.reduceat`` kernel when the segment
ids are sorted (always true for block-diagonal batches), which is roughly an
order of magnitude faster than the ``np.add.at`` scatter it falls back to.
All ops preserve the dtype of their inputs so float32 graphs (see
:mod:`repro.tensor.dtype`) stay float32 end to end.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, as_tensor

__all__ = [
    "concat", "stack", "spmm", "segment_sum", "segment_mean", "segment_max",
    "gather_rows", "logsumexp", "softmax", "log_softmax", "l2_normalize",
    "cosine_similarity_matrix", "pairwise_sqdist", "dot_rows", "where",
    "dropout_mask",
]


def _const(data: np.ndarray) -> Tensor:
    """Wrap an ndarray as a constant tensor preserving its dtype."""
    return Tensor(data, dtype=np.asarray(data).dtype)


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def forward(*arrays, out=None):
        return np.concatenate(arrays, axis=axis, out=out)

    def backward(grad):
        slicer = [slice(None)] * grad.ndim
        pieces = []
        for i in range(len(tensors)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            pieces.append(grad[tuple(slicer)])
        return tuple(pieces)

    return Tensor._make(out_data, tensors, backward,
                        op="concat", forward=forward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def forward(*arrays, out=None):
        return np.stack(arrays, axis=axis)

    def backward(grad):
        return tuple(np.take(grad, i, axis=axis) for i in range(len(tensors)))

    return Tensor._make(out_data, tensors, backward,
                        op="stack", forward=forward)


def spmm(matrix: sp.spmatrix, dense: Tensor) -> Tensor:
    """Multiply a constant scipy sparse matrix by a dense tensor.

    ``matrix`` is treated as a constant (adjacency structure), so only the
    dense operand receives a gradient: ``d(M @ X)/dX = M^T @ grad``.  The
    transpose is taken lazily inside the backward closure (as a CSC view, no
    copy), so inference-mode forwards pay nothing for it.
    """
    dense = as_tensor(dense)
    csr = matrix.tocsr()
    if csr.dtype != dense.data.dtype:
        csr = csr.astype(dense.data.dtype)
    out_data = csr @ dense.data

    def backward(grad):
        return (csr.T @ grad,)

    return Tensor._make(out_data, (dense,), backward,
                        op="spmm", forward=_spmm_forward, extras=(matrix,))


def _spmm_forward(x: np.ndarray, matrix, out=None) -> np.ndarray:
    """Replay kernel for :func:`spmm`: same tocsr/astype/matmul as eager."""
    csr = matrix.tocsr()
    if csr.dtype != x.dtype:
        csr = csr.astype(x.dtype)
    return csr @ x


def _segment_sum_kernel(values: np.ndarray, segment_ids: np.ndarray,
                        num_segments: int) -> np.ndarray:
    """Sum-readout forward shared by the eager op and plan replay."""
    out_data = np.zeros((num_segments,) + values.shape[1:],
                        dtype=values.dtype)
    if segment_ids.size:
        if np.all(segment_ids[1:] >= segment_ids[:-1]):
            # Sorted ids (the block-diagonal batch layout): contiguous
            # reduction, ~10x faster than the np.add.at scatter.  reduceat
            # misbehaves on empty segments (repeated offsets), so reduce
            # only the nonempty ones and scatter into the zero output.
            starts, nonempty = _sorted_segment_bounds(segment_ids,
                                                      num_segments)
            reduced = np.add.reduceat(values, starts[nonempty], axis=0)
            out_data[nonempty] = reduced
        else:
            np.add.at(out_data, segment_ids, values)
    return out_data


def _segment_mean_counts(segment_ids: np.ndarray, num_segments: int,
                         dtype, ndim: int) -> np.ndarray:
    """Per-segment divisor (clipped at 1) broadcast against the values."""
    counts = np.bincount(segment_ids, minlength=num_segments).astype(dtype)
    return np.maximum(counts, 1.0).reshape(
        (num_segments,) + (1,) * (ndim - 1))


def _sorted_segment_bounds(segment_ids: np.ndarray,
                           num_segments: int) -> tuple[np.ndarray, np.ndarray]:
    """(start offsets, nonempty mask) for sorted ids, for np.add.reduceat."""
    starts = np.searchsorted(segment_ids, np.arange(num_segments),
                             side="left")
    counts = np.bincount(segment_ids, minlength=num_segments)
    return starts, counts > 0


def segment_sum(values: Tensor, segment_ids: np.ndarray,
                num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets.

    This is the sum-readout for a block-diagonal graph batch: row ``i`` of the
    output is the sum of node features whose ``segment_ids`` equal ``i``.
    """
    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_data = _segment_sum_kernel(values.data, segment_ids, num_segments)

    def forward(v, ids, out=None):
        return _segment_sum_kernel(v, ids, num_segments)

    def backward(grad):
        return (grad[segment_ids],)

    return Tensor._make(out_data, (values,), backward,
                        op="segment_sum", forward=forward,
                        extras=(segment_ids,))


def segment_mean(values: Tensor, segment_ids: np.ndarray,
                 num_segments: int) -> Tensor:
    """Mean-readout over segments; empty segments yield zeros.

    A single graph node computing exactly what the historical
    ``segment_sum(...) / counts`` composition computed (same kernel, same
    division, same gradient values) — collapsed so the op is expressible as
    one replayable plan step whose only per-request operand is
    ``segment_ids``.
    """
    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    counts = _segment_mean_counts(segment_ids, num_segments,
                                  values.data.dtype, values.ndim)
    out_data = _segment_sum_kernel(values.data, segment_ids,
                                   num_segments) / counts

    def forward(v, ids, out=None):
        divisor = _segment_mean_counts(ids, num_segments, v.dtype, v.ndim)
        summed = _segment_sum_kernel(v, ids, num_segments)
        return np.divide(summed, divisor, out=out)

    def backward(grad):
        return ((grad / counts)[segment_ids],)

    return Tensor._make(out_data, (values,), backward,
                        op="segment_mean", forward=forward,
                        extras=(segment_ids,))


def segment_max(values: Tensor, segment_ids: np.ndarray,
                num_segments: int) -> Tensor:
    """Max-readout over segments (gradient flows to the argmax rows)."""
    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    dtype = values.data.dtype
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.full(out_shape, -np.inf, dtype=dtype)
    np.maximum.at(out_data, segment_ids, values.data)
    out_data[np.isneginf(out_data)] = 0.0
    # Mask of rows/columns attaining the per-segment maximum.
    attains = (values.data == out_data[segment_ids])
    # Split ties evenly within a segment.
    tie_counts = np.zeros(out_shape, dtype=dtype)
    np.add.at(tie_counts, segment_ids, attains.astype(dtype))
    tie_counts = np.maximum(tie_counts, 1.0)

    def forward(v, ids, out=None):
        pooled = np.full((num_segments,) + v.shape[1:], -np.inf, dtype=v.dtype)
        np.maximum.at(pooled, ids, v)
        pooled[np.isneginf(pooled)] = 0.0
        return pooled

    def backward(grad):
        return (grad[segment_ids] * attains / tie_counts[segment_ids],)

    return Tensor._make(out_data, (values,), backward,
                        op="segment_max", forward=forward,
                        extras=(segment_ids,))


def gather_rows(values: Tensor, indices: np.ndarray) -> Tensor:
    """Select rows ``values[indices]`` with scatter-add backward."""
    values = as_tensor(values)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = values.data[indices]
    original_shape = values.shape
    dtype = values.data.dtype

    def backward(grad):
        full = np.zeros(original_shape, dtype=dtype)
        np.add.at(full, indices, grad)
        return (full,)

    return Tensor._make(out_data, (values,), backward, op="gather_rows")


def logsumexp(x: Tensor, axis: int = -1, keepdims: bool = False) -> Tensor:
    """Numerically stable log-sum-exp along ``axis``."""
    x = as_tensor(x)
    shift = _const(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    result = shifted.exp().sum(axis=axis, keepdims=True).log() + shift
    if not keepdims:
        result = result.reshape(tuple(
            s for i, s in enumerate(result.shape)
            if i != (axis % x.ndim)))
    return result


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - _const(x.data.max(axis=axis, keepdims=True))
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Stable log-softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x - _const(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize rows to unit L2 norm (safe at zero)."""
    x = as_tensor(x)
    norms = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norms


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs cosine similarity: result[i, j] = cos(a_i, b_j)."""
    return l2_normalize(a) @ l2_normalize(b).T


def dot_rows(a: Tensor, b: Tensor) -> Tensor:
    """Row-wise dot products: result[i] = <a_i, b_i>."""
    return (a * b).sum(axis=-1)


def pairwise_sqdist(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs squared euclidean distances between rows of a and b."""
    a_sq = (a * a).sum(axis=-1, keepdims=True)            # (n, 1)
    b_sq = (b * b).sum(axis=-1, keepdims=True).T          # (1, m)
    cross = a @ b.T                                       # (n, m)
    return (a_sq + b_sq - cross * 2.0).clip(low=0.0)


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection by a constant boolean mask."""
    a, b = as_tensor(a), as_tensor(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad):
        zero = np.zeros((), dtype=grad.dtype)
        return (np.where(condition, grad, zero) * np.ones_like(a.data),
                np.where(condition, zero, grad) * np.ones_like(b.data))

    return Tensor._make(out_data, (a, b), backward, op="where")


def dropout_mask(shape: tuple[int, ...], rate: float,
                 rng: np.random.Generator) -> np.ndarray:
    """Sample an inverted-dropout mask (scaled so expectation is identity)."""
    from .dtype import get_default_dtype

    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    keep = 1.0 - rate
    return (rng.random(shape) < keep).astype(get_default_dtype()) / keep
