"""Named-op registry: one dispatch layer for reference vs fused kernels.

Every differentiable op with more than one implementation is registered here
under a stable name, with its unfused *reference* composition and (when one
exists) the closed-form *fused* kernel side by side.  Call sites stop
branching on ``use_fused()`` themselves and go through :func:`call`, which
owns the whole dispatch policy:

1. an explicit ``impl=`` argument at the call site;
2. a per-op override installed with :func:`op_impl`;
3. the context-local switch scoped by :func:`fused_kernels`
   (a :class:`contextvars.ContextVar`, so serve's worker threads and
   concurrent tests cannot race each other's toggles);
4. the process-wide value last set by :func:`set_fused`;
5. the ``REPRO_FUSED`` environment variable, read lazily on every resolve
   (changing it after import behaves the same as before import);
6. fused by default.

Ops whose entry has no fused implementation always run the reference.
:func:`call` also feeds ``repro.obs`` engine counters with per-op dispatch
counts keyed ``"<name>.<impl>"``, replacing the hand-maintained strings the
observability layer used to track.

Each entry carries an ``example`` factory producing representative inputs;
``tests/tensor/test_registry.py`` iterates the registry and gradchecks
reference == fused on those examples, so a newly registered op is covered
automatically.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..obs.engine_hooks import ENGINE
from . import fused as _fused
from . import ops as _ops
from .tensor import Tensor

__all__ = [
    "OpEntry", "register_op", "get_op", "op_names", "call",
    "use_fused", "set_fused", "fused_kernels", "op_impl",
]

_IMPLS = ("reference", "fused")


# ---------------------------------------------------------------------------
# Dispatch policy
# ---------------------------------------------------------------------------

# Context-local override scoped by fused_kernels(); None means "not scoped".
_CTX_FUSED: contextvars.ContextVar[bool | None] = contextvars.ContextVar(
    "repro_fused_ctx", default=None)

# Context-local per-op overrides scoped by op_impl(); maps name -> impl.
_CTX_OP_IMPL: contextvars.ContextVar[dict] = contextvars.ContextVar(
    "repro_op_impl_ctx", default={})

# Process-wide value last set by set_fused(); None means "never set", fall
# through to the environment.
_PROCESS_FUSED: bool | None = None


def use_fused() -> bool:
    """Resolve the global fused/reference switch for the current context."""
    scoped = _CTX_FUSED.get()
    if scoped is not None:
        return scoped
    if _PROCESS_FUSED is not None:
        return _PROCESS_FUSED
    return os.environ.get("REPRO_FUSED", "1") != "0"


def set_fused(enabled: bool) -> bool:
    """Set the process-wide fused default; returns the previous resolved value.

    Prefer the scoped :func:`fused_kernels` in tests and request handlers —
    this process-wide setter exists for CLI entry points and as the
    compatibility target of the deprecated ``repro.tensor.fused.set_fused``.
    """
    global _PROCESS_FUSED
    previous = use_fused()
    _PROCESS_FUSED = bool(enabled)
    return previous


@contextlib.contextmanager
def fused_kernels(enabled: bool):
    """Scope the fused switch to the current context (thread/task-local)."""
    token = _CTX_FUSED.set(bool(enabled))
    try:
        yield
    finally:
        _CTX_FUSED.reset(token)


@contextlib.contextmanager
def op_impl(name: str, which: str):
    """Force one op to ``"reference"`` or ``"fused"`` within the context."""
    if which not in _IMPLS:
        raise ValueError(f"unknown impl {which!r}; choose from {_IMPLS}")
    get_op(name)  # validate the name eagerly
    overrides = dict(_CTX_OP_IMPL.get())
    overrides[name] = which
    token = _CTX_OP_IMPL.set(overrides)
    try:
        yield
    finally:
        _CTX_OP_IMPL.reset(token)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OpEntry:
    """One named op: reference composition, optional fused kernel, examples.

    ``example`` takes a :class:`numpy.random.Generator` and returns
    ``(args, kwargs)`` pairs representative of real call sites, used by the
    registry-driven equivalence suite.
    """

    name: str
    reference: Callable
    fused: Callable | None = None
    example: Callable | None = None


_REGISTRY: dict[str, OpEntry] = {}


def register_op(entry: OpEntry) -> OpEntry:
    """Add (or replace) an entry; returns it for chaining."""
    _REGISTRY[entry.name] = entry
    return entry


def get_op(name: str) -> OpEntry:
    """Look up an entry; raises ``KeyError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown op {name!r}; registered: {sorted(_REGISTRY)}") from None


def op_names() -> tuple[str, ...]:
    """Registered op names in sorted order."""
    return tuple(sorted(_REGISTRY))


def _resolve(entry: OpEntry, impl: str | None) -> str:
    if impl is None:
        impl = _CTX_OP_IMPL.get().get(entry.name)
    if impl is None:
        impl = "fused" if use_fused() else "reference"
    elif impl not in _IMPLS:
        raise ValueError(f"unknown impl {impl!r}; choose from {_IMPLS}")
    if impl == "fused" and entry.fused is None:
        impl = "reference"
    return impl


def call(name: str, *args, impl: str | None = None, **kwargs):
    """Dispatch op ``name`` per policy (or the explicit ``impl`` override)."""
    entry = get_op(name)
    which = _resolve(entry, impl)
    if ENGINE.enabled:
        ENGINE.record_dispatch(name, which)
    fn = entry.fused if which == "fused" else entry.reference
    return fn(*args, **kwargs)


# ---------------------------------------------------------------------------
# Built-in ops
# ---------------------------------------------------------------------------
# Reference compositions are written here against the primitive ops so the
# registry depends only on repro.tensor (no upward imports into losses/nn);
# the call sites that used to own these compositions now call through the
# registry.  Each reference must stay numerically identical to the historical
# call-site composition — the equivalence suite and the plan-replay
# bit-identity gate both lean on that.


def _ref_l2_normalize(x: Tensor, eps: float = 1e-12) -> Tensor:
    return _ops.l2_normalize(x, axis=-1, eps=eps)


def _ref_linear(x: Tensor, weight: Tensor, bias: Tensor | None = None,
                activation: str | None = None) -> Tensor:
    if activation not in (None, "relu"):
        raise ValueError(f"unsupported activation {activation!r}")
    out = x @ weight
    if bias is not None:
        out = out + bias
    if activation == "relu":
        out = out.relu()
    return out


def _ref_info_nce(u: Tensor, v: Tensor, tau: float = 0.5, sim: str = "cos",
                  symmetric: bool = True) -> Tensor:
    def similarity(a: Tensor, b: Tensor) -> Tensor:
        if sim == "cos":
            return _ops.l2_normalize(a) @ _ops.l2_normalize(b).T
        if sim == "dot":
            return a @ b.T
        if sim == "euclid":
            return _ops.pairwise_sqdist(a, b) * -0.5
        raise ValueError(f"unknown similarity {sim!r}")

    def one_direction(a: Tensor, b: Tensor) -> Tensor:
        logits = similarity(a, b) / tau
        log_probs = _ops.log_softmax(logits, axis=1)
        n = len(a)
        return -log_probs[range(n), range(n)].mean()

    loss = one_direction(u, v)
    if symmetric:
        loss = (loss + one_direction(v, u)) * 0.5
    return loss


def _ref_gradient_features(anchor: Tensor, candidates: Tensor,
                           tau: float) -> Tensor:
    # Dot-product-logit form of Eq. 6 (cos mode pre-normalizes the inputs
    # before calling; the euclid form is a different op entirely and lives in
    # repro.core.gradient_features).
    logits = (anchor @ candidates.T) / tau
    p = _ops.softmax(logits, axis=1)
    return p @ candidates - candidates


def _pair(rng: np.random.Generator, n: int = 6, d: int = 4):
    u = Tensor(rng.normal(size=(n, d)), requires_grad=True)
    v = Tensor(rng.normal(size=(n, d)), requires_grad=True)
    return u, v


def _ex_l2_normalize(rng):
    x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
    return [((x,), {})]


def _ex_linear(rng):
    x = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
    w = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
    b = Tensor(rng.normal(size=(3,)), requires_grad=True)
    return [((x, w), {}),
            ((x, w, b), {}),
            ((x, w, b), {"activation": "relu"})]


def _ex_info_nce(rng):
    cases = []
    for sim in ("cos", "dot", "euclid"):
        for symmetric in (True, False):
            u, v = _pair(rng)
            cases.append(((u, v), {"tau": 0.7, "sim": sim,
                                   "symmetric": symmetric}))
    return cases


def _ex_gradient_features(rng):
    u, v = _pair(rng)
    return [((u, v, 0.5), {})]


def _ex_segment_mean(rng):
    values = Tensor(rng.normal(size=(7, 3)), requires_grad=True)
    sorted_ids = np.array([0, 0, 1, 1, 1, 3, 3])   # segment 2 empty
    shuffled_ids = np.array([2, 0, 1, 0, 2, 1, 0])
    return [((values, sorted_ids, 4), {}),
            ((values, shuffled_ids, 3), {})]


register_op(OpEntry("l2_normalize", _ref_l2_normalize,
                    _fused.fused_l2_normalize, _ex_l2_normalize))
register_op(OpEntry("linear", _ref_linear, _fused.fused_linear, _ex_linear))
register_op(OpEntry("info_nce", _ref_info_nce, _fused.fused_info_nce,
                    _ex_info_nce))
register_op(OpEntry("gradient_features", _ref_gradient_features,
                    _fused.fused_gradient_features, _ex_gradient_features))
register_op(OpEntry("segment_mean", _ops.segment_mean,
                    _fused.fused_segment_mean, _ex_segment_mean))
