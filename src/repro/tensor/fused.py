"""Fused forward+backward kernels for the contrastive hot path.

Profiling the training loop shows a handful of op chains dominating: the
InfoNCE pipeline (l2-normalize -> similarity matrix -> log-softmax -> diag
NLL), the Eq. 6 gradient-feature combination (softmax-weighted candidate
mixing), and the linear(+bias)(+relu) stack inside every GIN/GCN layer.
Composed from primitives each chain allocates a dozen interior nodes and
re-derives gradients numerically equivalent to closed forms we know on
paper.  The kernels here collapse each chain into a *single* autograd node
with a hand-written closed-form backward: one forward allocation, one
backward pass, no interior bookkeeping.

Every kernel has an unfused reference composition elsewhere in the library
(``repro.losses.infonce``, ``repro.core.gradient_features``,
``repro.nn.layers``); the ``set_fused`` switch (or ``REPRO_FUSED=0`` in the
environment) selects the reference path globally, and
``benchmarks/bench_tensor_ops.py`` asserts fused == reference before timing
so speedups cannot silently change numerics.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "use_fused", "set_fused", "fused_kernels",
    "fused_l2_normalize", "fused_linear", "fused_info_nce",
    "fused_gradient_features", "fused_segment_mean",
]


# Dispatch policy lives in repro.tensor.registry now; these shims survive so
# historical imports (`from repro.tensor.fused import set_fused`) keep
# working.  The imports are lazy because registry imports this module for the
# fused implementations it registers.

def use_fused() -> bool:
    """Whether dispatch currently resolves to the fused kernels.

    Deprecated alias for :func:`repro.tensor.registry.use_fused`.
    """
    from . import registry
    return registry.use_fused()


def set_fused(enabled: bool) -> bool:
    """Toggle fused-kernel dispatch process-wide; returns the previous value.

    Deprecated alias for :func:`repro.tensor.registry.set_fused`.
    """
    from . import registry
    return registry.set_fused(enabled)


def fused_kernels(enabled: bool):
    """Context manager scoping the fused switch (used by tests/benches).

    Deprecated alias for :func:`repro.tensor.registry.fused_kernels`.
    """
    from . import registry
    return registry.fused_kernels(enabled)


def _normalize_fwd(x: np.ndarray, eps: float) -> tuple[np.ndarray, np.ndarray]:
    """Row-normalized array and the (keepdims) norms, matching l2_normalize."""
    norms = np.sqrt((x * x).sum(axis=-1, keepdims=True) + eps)
    return x / norms, norms


def _normalize_bwd(grad_unit: np.ndarray, unit: np.ndarray,
                   norms: np.ndarray) -> np.ndarray:
    """Adjoint of x -> x / sqrt(|x|^2 + eps) given the cached forward."""
    inner = (grad_unit * unit).sum(axis=-1, keepdims=True)
    return (grad_unit - unit * inner) / norms


def fused_l2_normalize(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Row-wise L2 normalization as a single autograd node.

    Equivalent to :func:`repro.tensor.l2_normalize` with ``axis=-1``.
    """
    x = as_tensor(x)
    unit, norms = _normalize_fwd(x.data, eps)

    def forward(a, out=None):
        n = np.sqrt((a * a).sum(axis=-1, keepdims=True) + eps)
        return np.divide(a, n, out=out)

    def backward(grad):
        return (_normalize_bwd(grad, unit, norms),)

    return Tensor._make(unit, (x,), backward,
                        op="l2_normalize", forward=forward)


def fused_linear(x: Tensor, weight: Tensor, bias: Tensor | None = None,
                 activation: str | None = None) -> Tensor:
    """``relu?(x @ W + b)`` as one autograd node with closed-form backward.

    Equivalent to the ``Linear``(+``ReLU``) composition in
    :mod:`repro.nn.layers` for 2-D inputs.
    """
    if activation not in (None, "relu"):
        raise ValueError(f"unsupported activation {activation!r}")
    x, weight = as_tensor(x), as_tensor(weight)
    if x.ndim != 2:
        raise ValueError(f"fused_linear expects 2-D input, got {x.shape}")
    out_data = x.data @ weight.data
    if bias is not None:
        out_data += bias.data
    mask = None
    if activation == "relu":
        mask = out_data > 0
        out_data = out_data * mask
    parents = (x, weight) if bias is None else (x, weight, bias)

    def forward(a, w, *rest, out=None):
        res = np.matmul(a, w, out=out)
        if rest:
            res += rest[0]
        if activation == "relu":
            np.multiply(res, res > 0, out=res)
        return res

    def backward(grad):
        if mask is not None:
            grad = grad * mask
        grad_x = grad @ weight.data.T
        grad_w = x.data.T @ grad
        if bias is None:
            return (grad_x, grad_w)
        return (grad_x, grad_w, grad.sum(axis=0))

    return Tensor._make(out_data, parents, backward,
                        op="linear", forward=forward)


def _similarity_fwd(u: np.ndarray, v: np.ndarray, tau: float,
                    sim: str) -> tuple[np.ndarray, dict]:
    """Logits ``sim(u, v)/tau`` plus the cache the adjoint needs."""
    cache: dict = {}
    if sim == "cos":
        uh, un = _normalize_fwd(u, 1e-12)
        vh, vn = _normalize_fwd(v, 1e-12)
        cache.update(uh=uh, vh=vh, un=un, vn=vn)
        logits = (uh @ vh.T) / tau
    elif sim == "dot":
        logits = (u @ v.T) / tau
    elif sim == "euclid":
        sq = ((u * u).sum(axis=-1, keepdims=True)
              + (v * v).sum(axis=-1, keepdims=True).T
              - 2.0 * (u @ v.T))
        # Reference pairwise_sqdist clips negatives; its clip gradient is
        # zero exactly where the raw value dipped below zero.
        cache["clip_mask"] = sq >= 0
        logits = -0.5 * np.clip(sq, 0.0, None) / tau
    else:
        raise ValueError(f"unknown similarity {sim!r}")
    return logits, cache


def _similarity_bwd(grad_logits: np.ndarray, u: np.ndarray, v: np.ndarray,
                    tau: float, sim: str,
                    cache: dict) -> tuple[np.ndarray, np.ndarray]:
    """Adjoint of the logits w.r.t. the raw inputs ``u`` and ``v``."""
    if sim == "cos":
        uh, vh = cache["uh"], cache["vh"]
        grad_uh = (grad_logits @ vh) / tau
        grad_vh = (grad_logits.T @ uh) / tau
        return (_normalize_bwd(grad_uh, uh, cache["un"]),
                _normalize_bwd(grad_vh, vh, cache["vn"]))
    if sim == "dot":
        return (grad_logits @ v) / tau, (grad_logits.T @ u) / tau
    # euclid: logits = -0.5 * clip(|u_i - v_j|^2) / tau
    g = np.where(cache["clip_mask"], grad_logits, 0.0) * (-0.5 / tau)
    grad_u = 2.0 * (g.sum(axis=1, keepdims=True) * u - g @ v)
    grad_v = 2.0 * (g.sum(axis=0)[:, None] * v - g.T @ u)
    return grad_u, grad_v


def _log_softmax_rows(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def fused_info_nce(u: Tensor, v: Tensor, tau: float = 0.5, sim: str = "cos",
                   symmetric: bool = True) -> Tensor:
    """InfoNCE (paper Eq. 4) as a single autograd node.

    Fuses l2-normalize -> similarity matrix -> log-softmax -> diagonal NLL
    (both anchoring directions when ``symmetric``) with the closed-form
    gradient ``dL/dS = (P - I)/n`` pushed through the similarity adjoint.
    Equivalent to :func:`repro.losses.info_nce`.
    """
    u, v = as_tensor(u), as_tensor(v)
    if u.shape != v.shape:
        raise ValueError(f"view shapes differ: {u.shape} vs {v.shape}")
    if len(u) < 2:
        raise ValueError("InfoNCE needs at least 2 samples for negatives")
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    n = len(u)
    logits, cache = _similarity_fwd(u.data, v.data, tau, sim)
    log_p_uv = _log_softmax_rows(logits)
    loss = -np.trace(log_p_uv) / n
    if symmetric:
        log_p_vu = _log_softmax_rows(logits.T)
        loss = 0.5 * (loss - np.trace(log_p_vu) / n)

    def backward(grad):
        scale = float(grad) / n
        eye = np.eye(n, dtype=logits.dtype)
        grad_logits = np.exp(log_p_uv) - eye
        if symmetric:
            grad_logits = 0.5 * (grad_logits
                                 + (np.exp(log_p_vu) - eye).T)
        grad_logits = grad_logits * scale
        return _similarity_bwd(grad_logits, u.data, v.data, tau, sim, cache)

    # No replay closure: the loss never sits on a grad-free serving path, so
    # capturing it would only grow plans that are discarded anyway.
    return Tensor._make(np.asarray(loss, dtype=u.data.dtype),
                        (u, v), backward, op="info_nce")


def fused_gradient_features(anchor: Tensor, candidates: Tensor,
                            tau: float) -> Tensor:
    """Eq. 6 gradient features ``softmax(A C^T / tau) @ C - C`` in one node.

    This is the softmax-weighted candidate combination at the heart of
    GradGCL; the closed-form backward routes the upstream gradient through
    the softmax Jacobian and both matmuls without materializing interior
    nodes.  Equivalent to ``_anchor_gradient`` in
    :mod:`repro.core.gradient_features` for dot-product logits (the ``dot``
    and pre-normalized ``cos`` modes).
    """
    anchor, candidates = as_tensor(anchor), as_tensor(candidates)
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    a, c = anchor.data, candidates.data
    logits = (a @ c.T) / tau
    logits -= logits.max(axis=1, keepdims=True)
    p = np.exp(logits)
    p /= p.sum(axis=1, keepdims=True)
    out_data = p @ c - c

    def forward(a2, c2, out=None):
        lg = (a2 @ c2.T) / tau
        lg -= lg.max(axis=1, keepdims=True)
        probs = np.exp(lg)
        probs /= probs.sum(axis=1, keepdims=True)
        res = np.matmul(probs, c2, out=out)
        np.subtract(res, c2, out=res)
        return res

    def backward(grad):
        grad_p = grad @ c.T
        # Row-wise softmax Jacobian: dS = P * (dP - <dP, P>).
        grad_logits = p * (grad_p
                           - (grad_p * p).sum(axis=1, keepdims=True))
        grad_anchor = (grad_logits @ c) / tau
        grad_cand = p.T @ grad - grad + (grad_logits.T @ a) / tau
        return (grad_anchor, grad_cand)

    return Tensor._make(out_data, (anchor, candidates), backward,
                        op="gradient_features", forward=forward)


def fused_segment_mean(values: Tensor, segment_ids: np.ndarray,
                       num_segments: int) -> Tensor:
    """Mean-readout over segments as one node (empty segments yield zeros).

    Equivalent to :func:`repro.tensor.segment_mean` (which composes
    segment_sum and a division node).
    """
    from .ops import _sorted_segment_bounds

    values = as_tensor(values)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    dtype = values.data.dtype
    out_shape = (num_segments,) + values.shape[1:]
    out_data = np.zeros(out_shape, dtype=dtype)
    counts = np.bincount(segment_ids, minlength=num_segments)
    inv = (1.0 / np.maximum(counts, 1)).astype(dtype)
    if segment_ids.size:
        if np.all(segment_ids[1:] >= segment_ids[:-1]):
            starts, nonempty = _sorted_segment_bounds(segment_ids,
                                                      num_segments)
            out_data[nonempty] = np.add.reduceat(values.data,
                                                 starts[nonempty], axis=0)
        else:
            np.add.at(out_data, segment_ids, values.data)
    out_data *= inv.reshape((num_segments,) + (1,) * (values.ndim - 1))

    def forward(v, ids, out=None):
        from .ops import _segment_sum_kernel

        res = _segment_sum_kernel(v, ids, num_segments)
        cnt = np.bincount(ids, minlength=num_segments)
        scale = (1.0 / np.maximum(cnt, 1)).astype(v.dtype)
        res *= scale.reshape((num_segments,) + (1,) * (v.ndim - 1))
        if out is not None:
            out[...] = res
            return out
        return res

    def backward(grad):
        scaled = grad * inv.reshape((num_segments,)
                                    + (1,) * (grad.ndim - 1))
        return (scaled[segment_ids],)

    return Tensor._make(out_data, (values,), backward,
                        op="segment_mean", forward=forward,
                        extras=(segment_ids,))
