"""Captured-plan executor: replay grad-free forwards without graph rebuild.

Steady-state serving and probe evaluation run the *same* forward over and
over with fresh data of recurring shapes; eager execution rebuilds the whole
``Tensor`` graph (node objects, backward closures, dispatch) every time even
though nothing about the computation changes.  This module captures one
eager forward into a flat replay program and re-executes it as a straight
loop of numpy kernels writing into a reusable output arena.

Capture
-------
:func:`capture` installs a tape in ``repro.tensor.tensor._TAPE`` and runs
the forward once.  Every ``Tensor._make`` call on the capturing thread
records ``(op, forward, parents, extras, out_array)``; ops constructed
without a replay closure (``forward=None``) poison the tape.  After the
forward, each recorded operand is resolved to exactly one of:

* **slot** — produced by an earlier step of this plan;
* **input** — identified (by array identity) as part of the request batch:
  node features, the node-to-graph assignment, or a cached adjacency;
* **param** — identified (by array identity, or the identity of the view's
  base) as a parameter or registered buffer of the module, held by
  reference so optimizer/BatchNorm in-place updates stay visible;
* **const** — a size-1 array, copied into the plan (op attributes such as
  scalar scales).

Anything else — in particular data-dependent interior constants like the
softmax family's row-max — fails the capture.  Failing is the point: a
value that is neither request input, module state, slot, nor scalar cannot
be proven request-independent, and baking it in would replay stale data.
Failed shapes are tombstoned and served eagerly forever.

Replay
------
:meth:`Plan.replay` walks the steps, resolving operands and invoking each
step's closure with ``out=`` pointing into a per-plan arena of preallocated
arrays (closures that cannot write in place simply ignore it; the arena
slot is dropped after the first replay).  The final output is copied out of
the arena so callers may hold it across replays.  The first replay of every
plan is verified bit-for-bit against an eager recompute of the same batch —
a mismatch discards the plan, tombstones its shape bucket, and returns the
eager result, so replay can never silently diverge.

:class:`PlanCache` buckets plans by batch shape/dtype/dispatch-mode, with
LRU eviction (capacity from ``REPRO_PLAN_CACHE``, default 32; ``0``
disables capture entirely) and ``plan.*`` counters for the serve journal.
"""

from __future__ import annotations

import contextlib
import os
import threading
import weakref
from collections import OrderedDict

import numpy as np

from . import tensor as _tensor_mod
from .dtype import get_default_dtype
from .tensor import Tensor

__all__ = ["Plan", "PlanCache", "PlanCaptureError", "capture",
           "plan_cache_for", "DEFAULT_PLAN_CACHE_CAPACITY"]

DEFAULT_PLAN_CACHE_CAPACITY = 32

# Operand binding kinds (see module docstring).
_SLOT, _INPUT, _PARAM, _CONST = 0, 1, 2, 3

# One capture at a time process-wide: the tape slot in repro.tensor.tensor
# is a single module global (reads are filtered by thread id, so concurrent
# eager work on other threads is unaffected — it just cannot capture).
_CAPTURE_LOCK = threading.Lock()


class PlanCaptureError(RuntimeError):
    """A forward could not be captured; carries the reason."""


class _Tape:
    """Raw step recorder installed into ``tensor._TAPE`` during capture."""

    __slots__ = ("tid", "raw", "failure")

    def __init__(self, tid: int):
        self.tid = tid
        self.raw: list = []
        self.failure: str | None = None

    # Called from Tensor._make on the capturing thread.
    def record(self, op, forward, parents, extras, data) -> None:
        if self.failure is not None:
            return
        if forward is None:
            self.failure = f"op {op or '<anonymous>'} has no replay kernel"
            return
        self.raw.append((op, forward, parents, extras, data))


class _Step:
    """One replayable kernel invocation."""

    __slots__ = ("op", "forward", "bindings", "extra_bindings",
                 "shape", "dtype")

    def __init__(self, op, forward, bindings, extra_bindings, shape, dtype):
        self.op = op
        self.forward = forward
        self.bindings = bindings
        self.extra_bindings = extra_bindings
        self.shape = shape
        self.dtype = dtype


def _batch_input_ids(batch) -> dict[int, tuple]:
    """Array identity -> request-input descriptor for a GraphBatch.

    Built *after* the captured forward so adjacencies materialized during it
    (``batch.adjacency(norm)`` memoizes into ``_adj_cache``) are included.
    """
    ids = {id(batch.x): ("x",),
           id(batch.node_to_graph): ("node_to_graph",)}
    for norm, matrix in batch._adj_cache.items():
        ids[id(matrix)] = ("adj", norm)
    return ids


def _fetch_input(batch, desc: tuple):
    """Materialize a request-input descriptor against a new batch."""
    kind = desc[0]
    if kind == "x":
        return batch.x
    if kind == "node_to_graph":
        return batch.node_to_graph
    if kind == "adj":
        return batch.adjacency(desc[1])
    raise KeyError(f"unknown input descriptor {desc!r}")


def _owned_arrays(module) -> set[int]:
    """Identities of every array the module owns (params + buffers)."""
    owned = {id(p.data) for _, p in module.named_parameters()}
    owned.update(id(b) for _, b in module.named_buffers())
    return owned


class Plan:
    """A finalized replay program for one (module, batch-shape) pair."""

    __slots__ = ("steps", "output_slot", "input_descs", "arena", "verified")

    def __init__(self, steps: list[_Step], output_slot: int):
        self.steps = steps
        self.output_slot = output_slot
        self.input_descs = sorted(
            {b[1] for s in steps
             for b in (*s.bindings, *s.extra_bindings) if b[0] == _INPUT})
        self.arena: list | None = None
        self.verified = False

    def __len__(self) -> int:
        return len(self.steps)

    def replay(self, batch) -> np.ndarray:
        """Execute the plan against ``batch``; returns a caller-owned copy."""
        first = self.arena is None
        if first:
            self.arena = [np.empty(s.shape, s.dtype) for s in self.steps]
        slots: list = [None] * len(self.steps)
        fetched: dict = {}
        for desc in self.input_descs:
            fetched[desc] = _fetch_input(batch, desc)
        for i, step in enumerate(self.steps):
            args = []
            for kind, payload in step.bindings:
                if kind == _SLOT:
                    args.append(slots[payload])
                elif kind == _INPUT:
                    args.append(fetched[payload])
                elif kind == _PARAM:
                    args.append(payload.data)
                else:
                    args.append(payload)
            for kind, payload in step.extra_bindings:
                args.append(fetched[payload] if kind == _INPUT else payload)
            out = self.arena[i]
            result = step.forward(*args, out=out)
            if first and result is not out:
                # The closure cannot write in place (view/reduction/sparse);
                # drop the preallocated buffer instead of carrying it.
                self.arena[i] = None
            slots[i] = result
        return np.copy(slots[self.output_slot])


@contextlib.contextmanager
def _taping(tape: _Tape):
    with _CAPTURE_LOCK:
        previous = _tensor_mod._TAPE
        _tensor_mod._TAPE = tape
        try:
            yield
        finally:
            _tensor_mod._TAPE = previous


def capture(module, forward_fn, batch) -> tuple[Tensor, Plan]:
    """Run ``forward_fn(batch)`` once eagerly while recording a plan.

    Returns the eager output tensor and the finalized plan; raises
    :class:`PlanCaptureError` (after the eager forward completed — callers
    can still use its ``.args[1]``, the output tensor) when the forward is
    not replayable.
    """
    tape = _Tape(threading.get_ident())
    with _taping(tape):
        out = forward_fn(batch)
    try:
        plan = _finalize(tape, module, batch, out)
    except PlanCaptureError as exc:
        raise PlanCaptureError(str(exc), out) from None
    return out, plan


def _finalize(tape: _Tape, module, batch, out_tensor: Tensor) -> Plan:
    if tape.failure is not None:
        raise PlanCaptureError(tape.failure)
    if not tape.raw:
        raise PlanCaptureError("forward recorded no ops")
    input_ids = _batch_input_ids(batch)
    owned = _owned_arrays(module)

    def _is_owned(arr) -> bool:
        if id(arr) in owned:
            return True
        base = getattr(arr, "base", None)
        return base is not None and id(base) in owned

    produced: dict[int, int] = {}
    steps: list[_Step] = []
    for op, forward, parents, extras, data in tape.raw:
        bindings = []
        for parent in parents:
            arr = parent.data
            slot = produced.get(id(arr))
            if slot is not None:
                bindings.append((_SLOT, slot))
            elif id(arr) in input_ids:
                bindings.append((_INPUT, input_ids[id(arr)]))
            elif _is_owned(arr):
                # Keep the Tensor (not the array): its .data view tracks
                # in-place optimizer steps and running-stat updates.
                bindings.append((_PARAM, parent))
            elif arr.size == 1:
                bindings.append((_CONST, np.copy(arr)))
            else:
                raise PlanCaptureError(
                    f"op {op}: operand of shape {arr.shape} is neither a "
                    "plan slot, request input, module state, nor scalar")
        extra_bindings = []
        for extra in extras:
            if id(extra) in input_ids:
                extra_bindings.append((_INPUT, input_ids[id(extra)]))
            elif isinstance(extra, np.ndarray) and _is_owned(extra):
                extra_bindings.append((_CONST, extra))
            else:
                raise PlanCaptureError(
                    f"op {op}: extra operand {type(extra).__name__} is not "
                    "identified with the request batch")
        produced[id(data)] = len(steps)
        steps.append(_Step(op, forward, tuple(bindings),
                           tuple(extra_bindings), data.shape, data.dtype))
    output_slot = produced.get(id(out_tensor.data))
    if output_slot is None:
        raise PlanCaptureError("forward output is not an op result")
    # Steps after the output can never feed it (slots only look backwards).
    return Plan(steps[:output_slot + 1], output_slot)


def _cache_capacity() -> int:
    raw = os.environ.get("REPRO_PLAN_CACHE", "")
    try:
        return int(raw)
    except ValueError:
        return DEFAULT_PLAN_CACHE_CAPACITY


_TOMBSTONE = object()


class PlanCache:
    """Shape-bucketed LRU of captured plans with eager fallback.

    ``run(module, forward_fn, batch)`` is the single entry point: it
    captures on first sight of a shape bucket, verifies the first replay
    bit-for-bit against eager, replays thereafter, and falls back to plain
    eager execution for tombstoned buckets or a disabled cache.  Always
    returns the embedding **array** (callers on this path are grad-free).
    """

    _COUNTERS = ("hits", "misses", "captures", "capture_failures",
                 "replays", "verify_failures", "fallbacks", "evictions")

    def __init__(self, capacity: int | None = None):
        self.capacity = _cache_capacity() if capacity is None else int(capacity)
        self._plans: OrderedDict = OrderedDict()
        self._lock = threading.RLock()
        self.counters = {name: 0 for name in self._COUNTERS}

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    def metrics(self) -> dict:
        """``plan.*`` counter snapshot for journals and ``/metrics``."""
        with self._lock:
            out = {f"plan.{k}": v for k, v in self.counters.items()}
            out["plan.size"] = sum(
                1 for v in self._plans.values() if v is not _TOMBSTONE)
            out["plan.capacity"] = self.capacity
            return out

    def _key(self, batch) -> tuple:
        from .registry import use_fused

        return (batch.num_graphs, batch.num_nodes, batch.x.shape[1],
                np.dtype(get_default_dtype()).str, use_fused())

    @staticmethod
    def _prepare(batch) -> None:
        """Normalize batch arrays so leaf wrapping is identity-preserving.

        ``Tensor(batch.x)`` must not copy (capture identifies request inputs
        by array identity), so the dtype/contiguity conversion the engine
        would do implicitly is done here, once, on the batch itself.
        """
        dtype = get_default_dtype()
        if batch.x.dtype != dtype or not batch.x.flags["C_CONTIGUOUS"]:
            batch.x = np.ascontiguousarray(batch.x, dtype=dtype)
        ntg = batch.node_to_graph
        if ntg.dtype != np.int64 or not ntg.flags["C_CONTIGUOUS"]:
            batch.node_to_graph = np.ascontiguousarray(ntg, dtype=np.int64)

    def _store(self, key, value) -> None:
        self._plans[key] = value
        self._plans.move_to_end(key)
        while len(self._plans) > max(self.capacity, 1):
            self._plans.popitem(last=False)
            self.counters["evictions"] += 1

    def run(self, module, forward_fn, batch) -> np.ndarray:
        """Embed ``batch`` through the plan path (eager on any fallback)."""
        if not self.enabled:
            return forward_fn(batch).data
        with self._lock:
            self._prepare(batch)
            key = self._key(batch)
            entry = self._plans.get(key)
            if entry is _TOMBSTONE:
                self._plans.move_to_end(key)
                self.counters["fallbacks"] += 1
                return forward_fn(batch).data
            if entry is None:
                self.counters["misses"] += 1
                try:
                    out, plan = capture(module, forward_fn, batch)
                except PlanCaptureError as exc:
                    self._store(key, _TOMBSTONE)
                    self.counters["capture_failures"] += 1
                    out = exc.args[1] if len(exc.args) > 1 else None
                    return (out.data if out is not None
                            else forward_fn(batch).data)
                self._store(key, plan)
                self.counters["captures"] += 1
                return out.data
            self._plans.move_to_end(key)
            self.counters["hits"] += 1
            if entry.verified:
                self.counters["replays"] += 1
                return entry.replay(batch)
            replayed = entry.replay(batch)
            eager = forward_fn(batch).data
            if (replayed.shape == eager.shape
                    and replayed.dtype == eager.dtype
                    and replayed.tobytes() == eager.tobytes()):
                entry.verified = True
                self.counters["replays"] += 1
                return replayed
            self._store(key, _TOMBSTONE)
            self.counters["verify_failures"] += 1
            return eager


# Per-module plan caches, weak-keyed so cloned/garbage-collected modules do
# not pin plans (Module.clone() deepcopies — the clone gets its own cache).
_MODULE_CACHES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def plan_cache_for(module, capacity: int | None = None) -> PlanCache:
    """The (lazily created) plan cache attached to ``module``."""
    cache = _MODULE_CACHES.get(module)
    if cache is None:
        cache = PlanCache(capacity)
        _MODULE_CACHES[module] = cache
    return cache
