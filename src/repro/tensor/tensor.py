"""A reverse-mode automatic differentiation engine over numpy arrays.

This module is the substrate that replaces PyTorch autograd in the GradGCL
reproduction.  It implements a :class:`Tensor` wrapping a ``numpy.ndarray``
together with the primitive differentiable operations needed by the rest of
the library: broadcasting arithmetic, matrix multiplication, reductions,
element-wise nonlinearities, indexing, and shape manipulation.

The design is deliberately simple and explicit:

* every operation returns a new :class:`Tensor` holding references to its
  parents and a ``_backward`` closure that accumulates gradients into them;
* :meth:`Tensor.backward` topologically sorts the graph and runs the closures
  in reverse order;
* gradients are plain numpy arrays stored on ``Tensor.grad``.

First-order autodiff is all GradGCL needs: the paper's Eq. (6) gradient
features are implemented as an explicit composition of these primitives (see
:mod:`repro.core.gradient_features`), so the gradient contrastive loss trains
the encoder without second-order machinery.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

# Global autograd switch, toggled by the ``no_grad`` context manager.
_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``.

    Numpy broadcasting expands leading axes and size-1 axes; the adjoint of a
    broadcast is a sum over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Remove extra leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a float64 numpy array.
    requires_grad:
        When True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{flag})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view; do not mutate mid-graph)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create a result tensor wired into the autograd graph."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.array(grad, dtype=np.float64, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to 1 for scalar tensors.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only valid "
                    f"for scalar tensors, got shape {self.shape}")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"seed gradient shape {grad.shape} does not match tensor "
                f"shape {self.shape}")

        # Topological sort of the reachable subgraph.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        # Seed and run closures in reverse topological order.
        grads: dict[int, np.ndarray] = {id(self): grad}
        self._accumulate(grad)
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None or node._backward is None:
                continue
            # The closure receives the upstream gradient and pushes into
            # parents via ``_push`` captured below.
            node._run_backward(node_grad, grads)

    def _run_backward(self, upstream: np.ndarray,
                      grads: dict[int, np.ndarray]) -> None:
        """Invoke the backward closure, routing parent grads via ``grads``."""
        contributions = self._backward(upstream)
        for parent, contribution in zip(self._parents, contributions):
            if contribution is None or not parent.requires_grad:
                continue
            contribution = np.asarray(contribution, dtype=np.float64)
            key = id(parent)
            if key in grads:
                grads[key] = grads[key] + contribution
            else:
                grads[key] = contribution
            parent._accumulate(contribution)

    # ------------------------------------------------------------------
    # Arithmetic (broadcasting)
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            return (_unbroadcast(grad * other.data, self.shape),
                    _unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(grad):
            return (_unbroadcast(grad / other.data, self.shape),
                    _unbroadcast(-grad * self.data / other.data ** 2,
                                 other.shape))

        return Tensor._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        return Tensor._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                # Dot product: grad is scalar.
                return (grad * b, grad * a)
            if a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                return (grad @ b.T, np.outer(a, grad))
            if b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                return (np.outer(grad, b), a.T @ grad)
            return (grad @ b.swapaxes(-1, -2), a.swapaxes(-1, -2) @ grad)

        return Tensor._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return numpy arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            return (grad / self.data,)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            return (grad / (2.0 * out_data),)

        return Tensor._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        def backward(grad):
            return (grad * np.sign(self.data),)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)

        def backward(grad):
            return (grad * scale,)

        return Tensor._make(self.data * scale, (self,), backward)

    def softplus(self) -> "Tensor":
        # Numerically stable log(1 + exp(x)).
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad):
            return (grad / (1.0 + np.exp(-self.data)),)

        return Tensor._make(out_data, (self,), backward)

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        return Tensor._make(out_data, (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        count = (self.data.size if axis is None
                 else np.prod([self.shape[a] for a in np.atleast_1d(axis)]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded)
            # Split ties evenly so the gradient of max stays well defined.
            counts = mask.sum(axis=axis, keepdims=True)
            return (np.broadcast_to(g, self.shape) * mask / counts,)

        return Tensor._make(out_data, (self,), backward)

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def var(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation and indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            return (grad.reshape(original),)

        return Tensor._make(out_data, (self,), backward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out_data = self.data.transpose(axes)
        inverse = (None if axes is None
                   else tuple(np.argsort(axes)))

        def backward(grad):
            return (grad.transpose(inverse),)

        return Tensor._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        original_shape = self.shape

        def backward(grad):
            full = np.zeros(original_shape, dtype=np.float64)
            np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(out_data, (self,), backward)


def as_tensor(value) -> Tensor:
    """Coerce numbers/arrays/Tensors to a :class:`Tensor` without copying."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)
