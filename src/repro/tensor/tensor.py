"""A reverse-mode automatic differentiation engine over numpy arrays.

This module is the substrate that replaces PyTorch autograd in the GradGCL
reproduction.  It implements a :class:`Tensor` wrapping a ``numpy.ndarray``
together with the primitive differentiable operations needed by the rest of
the library: broadcasting arithmetic, matrix multiplication, reductions,
element-wise nonlinearities, indexing, and shape manipulation.

The design is deliberately simple and explicit:

* every operation returns a new :class:`Tensor` holding references to its
  parents and a ``_backward`` closure that accumulates gradients into them;
* :meth:`Tensor.backward` topologically sorts the graph and runs the closures
  in reverse order, routing intermediate gradients through a buffer dict and
  materializing ``.grad`` only on *leaf* tensors (nodes without a backward
  closure) — interior nodes never allocate a ``.grad`` array;
* after the sweep the graph is freed (closures and parent links dropped)
  unless ``retain_graph=True``, so step ``t``'s graph cannot pin memory into
  step ``t+1``.

Leaf tensors default to the dtype policy in :mod:`repro.tensor.dtype`
(float64 unless changed); interior nodes keep whatever dtype the numpy
kernels produce, so a float32 graph stays float32 through backward.

First-order autodiff is all GradGCL needs: the paper's Eq. (6) gradient
features are implemented as an explicit composition of these primitives (see
:mod:`repro.core.gradient_features`), so the gradient contrastive loss trains
the encoder without second-order machinery.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from typing import Callable, Sequence

import numpy as np

from ..obs.engine_hooks import ENGINE
from .dtype import get_default_dtype

__all__ = ["Tensor", "as_tensor", "no_grad", "is_grad_enabled"]

# Context-local autograd switch, toggled by the ``no_grad`` context manager.
# A ContextVar (not a module global) so concurrent contexts — serve's HTTP
# handler threads, the micro-batcher worker — each see their own flag and a
# ``no_grad`` scope in one thread cannot leak into another.
_GRAD_ENABLED: contextvars.ContextVar[bool] = contextvars.ContextVar(
    "repro_grad_enabled", default=True)

# Active capture tape installed by :mod:`repro.tensor.plan` while recording
# one eager forward into a replayable plan.  ``None`` almost always, so the
# hot-path cost in ``Tensor._make`` is a single load+is-check; the tape
# filters on thread id so other threads' eager ops never pollute a capture.
_TAPE = None


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (like torch.no_grad)."""
    token = _GRAD_ENABLED.set(False)
    try:
        yield
    finally:
        _GRAD_ENABLED.reset(token)


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED.get()


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``.

    Numpy broadcasting expands leading axes and size-1 axes; the adjoint of a
    broadcast is a sum over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # Remove extra leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _is_basic_index(index) -> bool:
    """True when ``index`` is basic (view) indexing: no duplicate positions.

    Slices, integers, Ellipsis, newaxis, and tuples of those select each
    source element at most once, so the adjoint is a direct slice assignment
    instead of the much slower ``np.add.at`` scatter.  Boolean masks also
    never repeat positions, but integer arrays/lists can and must scatter.
    """
    if isinstance(index, tuple):
        return all(_is_basic_index(i) for i in index)
    if isinstance(index, (slice, type(Ellipsis), type(None))):
        return True
    return isinstance(index, (int, np.integer)) and not isinstance(index, bool)


# ----------------------------------------------------------------------
# Pure-numpy replay kernels (plan-executor ``forward`` closures).
#
# Each mirrors the eager computation of the op that registers it
# bit-for-bit; ``out`` is an optional preallocated buffer (the plan arena)
# which ufunc/matmul kernels write into and view/scatter kernels ignore.
# ----------------------------------------------------------------------
def _fw_add(a, b, out=None):
    return np.add(a, b, out=out)


def _fw_sub(a, b, out=None):
    return np.subtract(a, b, out=out)


def _fw_rsub(a, b, out=None):
    return np.subtract(b, a, out=out)


def _fw_mul(a, b, out=None):
    return np.multiply(a, b, out=out)


def _fw_div(a, b, out=None):
    return np.divide(a, b, out=out)


def _fw_neg(a, out=None):
    return np.negative(a, out=out)


def _fw_matmul(a, b, out=None):
    if out is not None and a.ndim == 2 and b.ndim == 2:
        return np.matmul(a, b, out=out)
    return a @ b


def _fw_exp(a, out=None):
    return np.exp(a, out=out)


def _fw_log(a, out=None):
    return np.log(a, out=out)


def _fw_sqrt(a, out=None):
    return np.sqrt(a, out=out)


def _fw_abs(a, out=None):
    return np.abs(a, out=out)


def _fw_tanh(a, out=None):
    return np.tanh(a, out=out)


def _fw_sigmoid(a, out=None):
    return 1.0 / (1.0 + np.exp(-a))


def _fw_relu(a, out=None):
    return np.multiply(a, a > 0, out=out)


def _fw_softplus(a, out=None):
    return np.logaddexp(0.0, a, out=out)


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a floating-point numpy array.
    requires_grad:
        When True, gradients are accumulated into :attr:`grad` during
        :meth:`backward`.
    dtype:
        Explicit dtype override; defaults to the module dtype policy
        (:func:`repro.tensor.set_default_dtype`).
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_freed")

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(
            data, dtype=get_default_dtype() if dtype is None else dtype)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED.get()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._freed = False

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{flag})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view; do not mutate mid-graph)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data, dtype=self.data.dtype)

    def astype(self, dtype) -> "Tensor":
        """Differentiable dtype cast (gradient is cast back)."""
        original = self.data.dtype
        out_data = self.data.astype(dtype, copy=False)

        def backward(grad):
            return (grad.astype(original, copy=False),)

        def forward(a, out=None):
            return a.astype(dtype, copy=False)

        return Tensor._make(out_data, (self,), backward,
                            op="astype", forward=forward)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad,
                      dtype=self.data.dtype)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None], *,
              op: str | None = None,
              forward: Callable | None = None,
              extras: tuple = ()) -> "Tensor":
        """Create a result tensor wired into the autograd graph.

        Interior nodes keep the dtype the numpy kernel produced rather than
        coercing to the default policy (see module docstring).

        ``op``/``forward``/``extras`` feed the plan executor
        (:mod:`repro.tensor.plan`): ``forward(*arrays, out=None)`` is a pure
        numpy re-execution of this node — bit-identical to ``data`` given
        the parent arrays followed by ``extras`` (non-Tensor operands such
        as segment ids or a sparse adjacency).  Ops without a ``forward``
        closure simply cannot be captured; an active capture falls back to
        eager execution when it meets one.
        """
        data = np.asarray(data)
        if ENGINE.enabled:
            ENGINE.record_op(data.nbytes)
        tape = _TAPE
        if tape is not None and tape.tid == threading.get_ident():
            tape.record(op, forward, parents, extras, data)
        requires = _GRAD_ENABLED.get() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, dtype=data.dtype)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, donate: bool = False) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer.

        ``donate=True`` signals that the caller owns ``grad`` exclusively
        (freshly allocated during the backward sweep) so it can be adopted
        as ``.grad`` without a defensive copy.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            if (donate and isinstance(grad, np.ndarray)
                    and grad.dtype == self.data.dtype
                    and grad.shape == self.data.shape):
                self.grad = grad
            else:
                self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None,
                 retain_graph: bool = False) -> None:
        """Backpropagate from this tensor through the recorded graph.

        Gradients are routed through a per-sweep buffer dict; only leaf
        tensors (``requires_grad=True`` with no backward closure) get their
        ``.grad`` materialized.  Unless ``retain_graph=True``, the traversed
        graph is freed afterwards (closures and parent links dropped) and a
        second ``backward()`` through it raises ``RuntimeError``.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to 1 for scalar tensors.
        retain_graph:
            Keep the graph alive for another backward pass.
        """
        if self._freed:
            raise RuntimeError(
                "graph has already been freed by a previous backward(); "
                "pass retain_graph=True to backpropagate through it again")
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient is only valid "
                    f"for scalar tensors, got shape {self.shape}")
            grad = np.ones_like(self.data)
            seed_owned = True
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            seed_owned = False
        if grad.shape != self.data.shape:
            raise ValueError(
                f"seed gradient shape {grad.shape} does not match tensor "
                f"shape {self.shape}")

        # Topological sort of the reachable subgraph.
        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))
        if ENGINE.enabled:
            ENGINE.record_backward(len(order))

        # Reverse sweep.  ``grads`` maps node id -> accumulated upstream
        # gradient; ``owned`` tracks which buffers this sweep allocated and
        # may therefore mutate in place or donate to a leaf's ``.grad``.
        # Buffers received straight from a closure are *not* owned: they may
        # alias the closure's upstream gradient or a sibling contribution.
        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: dict[int, bool] = {id(self): seed_owned}
        for node in reversed(order):
            key = id(node)
            node_grad = grads.pop(key, None)
            if node_grad is None:
                continue
            node_owned = owned.pop(key, False)
            if node._backward is None:
                node._accumulate(node_grad, donate=node_owned)
                continue
            contributions = node._backward(node_grad)
            for parent, contribution in zip(node._parents, contributions):
                if contribution is None or not parent.requires_grad:
                    continue
                contribution = np.asarray(contribution)
                pkey = id(parent)
                existing = grads.get(pkey)
                if existing is None:
                    grads[pkey] = contribution
                    owned[pkey] = False
                elif owned[pkey]:
                    existing += contribution
                else:
                    grads[pkey] = existing + contribution
                    owned[pkey] = True

        if not retain_graph:
            for node in order:
                if node._backward is not None:
                    node._backward = None
                    node._parents = ()
                    node._freed = True

    # ------------------------------------------------------------------
    # Arithmetic (broadcasting)
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        out_data = self.data + other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward,
                            op="add", forward=_fw_add)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        out_data = self.data - other.data

        def backward(grad):
            return (_unbroadcast(grad, self.shape),
                    _unbroadcast(-grad, other.shape))

        return Tensor._make(out_data, (self, other), backward,
                            op="sub", forward=_fw_sub)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        out_data = self.data * other.data

        def backward(grad):
            return (_unbroadcast(grad * other.data, self.shape),
                    _unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward,
                            op="mul", forward=_fw_mul)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        out_data = self.data / other.data

        def backward(grad):
            return (_unbroadcast(grad / other.data, self.shape),
                    _unbroadcast(-grad * self.data / other.data ** 2,
                                 other.shape))

        return Tensor._make(out_data, (self, other), backward,
                            op="div", forward=_fw_div)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other, dtype=self.data.dtype).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return (-grad,)

        return Tensor._make(-self.data, (self,), backward,
                            op="neg", forward=_fw_neg)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(grad):
            return (grad * exponent * self.data ** (exponent - 1),)

        def forward(a, out=None):
            return np.power(a, exponent, out=out)

        return Tensor._make(out_data, (self,), backward,
                            op="pow", forward=forward)

    def __matmul__(self, other) -> "Tensor":
        other = as_tensor(other, dtype=self.data.dtype)
        out_data = self.data @ other.data

        def backward(grad):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                # Dot product: grad is scalar.
                return (grad * b, grad * a)
            if a.ndim == 1:
                # (k,) @ (k, n) -> (n,)
                return (grad @ b.T, np.outer(a, grad))
            if b.ndim == 1:
                # (m, k) @ (k,) -> (m,)
                return (np.outer(grad, b), a.T @ grad)
            return (grad @ b.swapaxes(-1, -2), a.swapaxes(-1, -2) @ grad)

        return Tensor._make(out_data, (self, other), backward,
                            op="matmul", forward=_fw_matmul)

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable; return numpy arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            return (grad * out_data,)

        return Tensor._make(out_data, (self,), backward,
                            op="exp", forward=_fw_exp)

    def log(self) -> "Tensor":
        def backward(grad):
            return (grad / self.data,)

        return Tensor._make(np.log(self.data), (self,), backward,
                            op="log", forward=_fw_log)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            return (grad / (2.0 * out_data),)

        return Tensor._make(out_data, (self,), backward,
                            op="sqrt", forward=_fw_sqrt)

    def abs(self) -> "Tensor":
        def backward(grad):
            return (grad * np.sign(self.data),)

        return Tensor._make(np.abs(self.data), (self,), backward,
                            op="abs", forward=_fw_abs)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return (grad * (1.0 - out_data ** 2),)

        return Tensor._make(out_data, (self,), backward,
                            op="tanh", forward=_fw_tanh)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad):
            return (grad * out_data * (1.0 - out_data),)

        return Tensor._make(out_data, (self,), backward,
                            op="sigmoid", forward=_fw_sigmoid)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(self.data * mask, (self,), backward,
                            op="relu", forward=_fw_relu)

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope).astype(self.data.dtype)

        def forward(a, out=None):
            s = np.where(a > 0, 1.0, negative_slope).astype(a.dtype)
            return np.multiply(a, s, out=out)

        def backward(grad):
            return (grad * scale,)

        return Tensor._make(self.data * scale, (self,), backward,
                            op="leaky_relu", forward=forward)

    def softplus(self) -> "Tensor":
        # Numerically stable log(1 + exp(x)).
        out_data = np.logaddexp(0.0, self.data)

        def backward(grad):
            return (grad / (1.0 + np.exp(-self.data)),)

        return Tensor._make(out_data, (self,), backward,
                            op="softplus", forward=_fw_softplus)

    def clip(self, low: float | None = None, high: float | None = None) -> "Tensor":
        out_data = np.clip(self.data, low, high)
        mask = np.ones_like(self.data)
        if low is not None:
            mask = mask * (self.data >= low)
        if high is not None:
            mask = mask * (self.data <= high)

        def forward(a, out=None):
            return np.clip(a, low, high, out=out)

        def backward(grad):
            return (grad * mask,)

        return Tensor._make(out_data, (self,), backward,
                            op="clip", forward=forward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
            return (np.broadcast_to(g, self.shape).copy(),)

        def forward(a, out=None):
            return np.sum(a, axis=axis, keepdims=keepdims, out=out)

        return Tensor._make(out_data, (self,), backward,
                            op="sum", forward=forward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        count = (self.data.size if axis is None
                 else np.prod([self.shape[a] for a in np.atleast_1d(axis)]))
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            g = np.asarray(grad)
            expanded = out_data
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = (self.data == expanded)
            # Split ties evenly so the gradient of max stays well defined.
            counts = mask.sum(axis=axis, keepdims=True)
            return (np.broadcast_to(g, self.shape) * mask / counts,)

        def forward(a, out=None):
            return a.max(axis=axis, keepdims=keepdims)

        return Tensor._make(out_data, (self,), backward,
                            op="max", forward=forward)

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    def var(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation and indexing
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            return (grad.reshape(original),)

        def forward(a, out=None):
            return a.reshape(shape)

        return Tensor._make(out_data, (self,), backward,
                            op="reshape", forward=forward)

    def flatten(self) -> "Tensor":
        return self.reshape(-1)

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        out_data = self.data.transpose(axes)
        inverse = (None if axes is None
                   else tuple(np.argsort(axes)))

        def backward(grad):
            return (grad.transpose(inverse),)

        def forward(a, out=None):
            return a.transpose(axes)

        return Tensor._make(out_data, (self,), backward,
                            op="transpose", forward=forward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]
        original_shape = self.shape
        original_dtype = self.data.dtype
        # Basic indexing and boolean masks select each position at most
        # once, so the adjoint is a direct assignment; only integer-array
        # indices (which may repeat) need the slow np.add.at scatter.
        direct = (_is_basic_index(index)
                  or (isinstance(index, np.ndarray) and index.dtype == bool))

        def backward(grad):
            full = np.zeros(original_shape, dtype=original_dtype)
            if direct:
                full[index] = grad
            else:
                np.add.at(full, index, grad)
            return (full,)

        return Tensor._make(out_data, (self,), backward, op="getitem")


def as_tensor(value, dtype=None) -> Tensor:
    """Coerce numbers/arrays/Tensors to a :class:`Tensor` without copying.

    ``dtype`` applies only when ``value`` is not already a Tensor; it lets
    ops wrap python scalars at the dtype of the graph they join instead of
    the global default (keeping float32 graphs float32).
    """
    if isinstance(value, Tensor):
        return value
    return Tensor(value, dtype=dtype)
