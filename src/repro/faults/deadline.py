"""Deadline and retry policy: the repo's single source of timeout truth.

Every subsystem that bounds a wait — the micro-batcher's per-request
deadline, the serving client's retry loop, the fork pool's crash-recovery
timeout — expresses it through a :class:`Deadline` or a
:class:`RetryPolicy` from this module.  ``scripts/lint_repro.py`` (rule 8)
bans bare ``time.monotonic()`` arithmetic everywhere else in the library,
so there is exactly one place where "how long is left" can be computed,
tested, and reasoned about.

Defaults are environment-tunable:

* ``REPRO_DEADLINE_MS`` — per-request serving deadline (default 30000);
* ``REPRO_FORWARD_TIMEOUT_MS`` — watchdog threshold for a hung forward
  (default: the request deadline);
* ``REPRO_POOL_RECOVER_S`` — how long the pipeline waits on a fork-pool
  chunk before declaring the worker dead and replaying the chunk
  in-process (default 60).

:class:`RetryPolicy` implements capped exponential backoff with
deterministic (seedable) jitter and honors server-provided ``Retry-After``
hints; jitter draws from :mod:`random` (never the global numpy RNG, which
the determinism lint bans).
"""

from __future__ import annotations

import math
import os
import random
import time
from dataclasses import dataclass

__all__ = ["Deadline", "RetryPolicy", "DEFAULT_DEADLINE_MS",
           "DEFAULT_POOL_RECOVER_S", "default_deadline_ms",
           "default_forward_timeout_ms", "default_pool_recover_s"]

DEFAULT_DEADLINE_MS = 30_000.0
DEFAULT_POOL_RECOVER_S = 60.0


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name)
    if raw is None:
        return fallback
    value = float(raw)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {raw!r}")
    return value


def default_deadline_ms() -> float:
    """Per-request serving deadline (``REPRO_DEADLINE_MS``)."""
    return _env_float("REPRO_DEADLINE_MS", DEFAULT_DEADLINE_MS)


def default_forward_timeout_ms() -> float:
    """Hung-forward watchdog threshold (``REPRO_FORWARD_TIMEOUT_MS``).

    Defaults to the request deadline: a forward that outlives every
    deadline that could be waiting on it is hung by definition.
    """
    return _env_float("REPRO_FORWARD_TIMEOUT_MS", default_deadline_ms())


def default_pool_recover_s() -> float:
    """Fork-pool chunk recovery timeout (``REPRO_POOL_RECOVER_S``)."""
    return _env_float("REPRO_POOL_RECOVER_S", DEFAULT_POOL_RECOVER_S)


class Deadline:
    """A monotonic point in time that waits can be bounded against.

    All ``time.monotonic()`` arithmetic in the library happens here.  A
    deadline is cheap (one slot), comparison-free to pass around, and
    composes: the remaining budget of an outer request bounds each inner
    wait (queue admission, ``Event.wait``, socket timeout).
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline":
        """A deadline ``seconds`` from now; ``None`` never expires."""
        if seconds is None:
            return cls.never()
        return cls(time.monotonic() + float(seconds))

    @classmethod
    def after_ms(cls, ms: float | None) -> "Deadline":
        """A deadline ``ms`` milliseconds from now; ``None`` never expires."""
        if ms is None:
            return cls.never()
        return cls(time.monotonic() + float(ms) / 1000.0)

    @classmethod
    def never(cls) -> "Deadline":
        return cls(math.inf)

    def remaining(self) -> float:
        """Seconds left (clamped at 0; ``inf`` for a never-deadline)."""
        if math.isinf(self.expires_at):
            return math.inf
        return max(0.0, self.expires_at - time.monotonic())

    def remaining_or_none(self) -> float | None:
        """Seconds left, or ``None`` for a never-deadline — the form
        ``Event.wait`` / ``Queue.get`` accept as their timeout."""
        remaining = self.remaining()
        return None if math.isinf(remaining) else remaining

    def expired(self) -> bool:
        return self.remaining() == 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if math.isinf(self.expires_at):
            return "Deadline(never)"
        return f"Deadline(remaining={self.remaining():.3f}s)"


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``delay(attempt)`` for attempts ``0, 1, 2, ...`` grows as
    ``base_delay * multiplier**attempt`` capped at ``max_delay``, then a
    jitter fraction of the delay is randomized (full-jitter style on that
    fraction) so synchronized clients do not retry in lockstep.  A
    server-provided ``retry_after`` hint is a *floor*: the client never
    comes back sooner than the server asked.

    The jitter RNG is owned by the policy (seedable for reproducible
    tests) and is :mod:`random`, not numpy — the global-numpy-RNG lint
    applies to the whole library.
    """

    retries: int = 4
    base_delay: float = 0.1
    max_delay: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def __post_init__(self):
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}/{self.max_delay}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        object.__setattr__(self, "_rng", random.Random(self.seed))

    def delay(self, attempt: int,
              retry_after: float | None = None) -> float:
        """Backoff before retry ``attempt`` (0-based), in seconds."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = min(self.base_delay * self.multiplier ** attempt,
                   self.max_delay)
        jittered = base * (1.0 - self.jitter * self._rng.random())
        if retry_after is not None:
            jittered = max(jittered, float(retry_after))
        return jittered
