"""Deterministic fault injection: named points, trigger predicates, replay.

A :class:`FaultPlan` is a list of :class:`FaultRule` entries, each naming
an **injection point** (a string like ``"serve.forward"`` or
``"pipeline.chunk"``) and a fault kind:

* ``slow`` — sleep ``delay_s`` at the point (a hung forward, a stalled
  disk);
* ``raise`` — raise :class:`FaultInjected` (a crashing forward, an IO
  error);
* ``kill`` — ``os._exit`` the current process — but **only** inside a
  forked pipeline worker; in the parent process a ``kill`` rule is inert,
  so a plan written for ``--workers N`` is safe to run serially;
* ``drop`` — return the ``"drop"`` action for the call site to apply (the
  micro-batcher drops the batch's results so waiters must be rescued by
  their deadlines).

Trigger predicates are counted **per point**: the ``n``-th call to
:func:`inject` at a point fires a rule when ``n >= at`` and, with
``every`` set, ``(n - at) % every == 0``, up to ``times`` firings.
``probability`` adds a coin flip drawn from a per-rule PCG-free
:mod:`random` stream seeded from ``(plan.seed, rule index)`` — so a chaos
run replays *exactly* under the same plan, process layout, and request
order.

The active plan is a module global (not a contextvar) on purpose: fork
pool workers inherit it through copy-on-write memory, which is how
``kill`` rules reach the child processes.

Module-level fault counters (``faults.injected`` / ``faults.timeouts`` /
``faults.respawns`` / ``faults.retries``) are the cross-subsystem tally:
the serving stack mirrors them into its :class:`~repro.obs.MetricRegistry`
snapshot and the trainer journals them as a ``metrics`` event (which
journal canonicalization strips, keeping chaos runs bit-comparable to
fault-free ones).
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["FaultInjected", "FaultRule", "FaultPlan", "KINDS",
           "active_plan", "use_fault_plan", "activate", "deactivate",
           "inject", "record", "counters_snapshot", "reset_counters"]

KINDS = ("slow", "raise", "kill", "drop")

#: The cross-subsystem fault tally, journaled/served as ``faults.*``.
COUNTER_NAMES = ("faults.injected", "faults.timeouts", "faults.respawns",
                 "faults.retries")


class FaultInjected(RuntimeError):
    """An injected fault fired (``raise`` rules and their downstream)."""


@dataclass
class FaultRule:
    """One trigger: fire ``kind`` at ``point`` on matching call indices."""

    point: str
    kind: str
    at: int = 1                  # first 1-based call index that can fire
    every: int | None = None     # fire every Nth call from ``at`` onward
    times: int | None = 1        # max firings (None = unlimited)
    probability: float | None = None
    delay_s: float = 0.05        # sleep length for ``slow`` rules
    fired: int = field(default=0, repr=False)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"choose from {KINDS}")
        if self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if (self.probability is not None
                and not 0.0 < self.probability <= 1.0):
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def matches(self, n: int, rng: random.Random) -> bool:
        """Whether the ``n``-th call at this rule's point fires it."""
        if n < self.at:
            return False
        if self.every is None:
            if n != self.at:
                return False
        elif (n - self.at) % self.every != 0:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability is not None and rng.random() >= self.probability:
            return False
        return True

    def to_dict(self) -> dict:
        record = {"point": self.point, "kind": self.kind, "at": self.at}
        if self.every is not None:
            record["every"] = self.every
        record["times"] = self.times
        if self.probability is not None:
            record["probability"] = self.probability
        if self.kind == "slow":
            record["delay_s"] = self.delay_s
        return record


class FaultPlan:
    """A seeded, replayable set of fault rules plus its firing record.

    Thread-safe: the per-point call counters and rule state are guarded by
    one lock, so concurrent injection points (HTTP handler threads, the
    batcher worker) count deterministically *given* a deterministic call
    order.  Forked children each inherit a copy of the plan at fork time;
    their counters then track per-process calls, which is what a
    ``kill``-the-worker rule wants.
    """

    def __init__(self, rules=(), *, seed: int = 0):
        self.rules = [rule if isinstance(rule, FaultRule)
                      else FaultRule(**rule) for rule in rules]
        self.seed = int(seed)
        self.origin_pid = os.getpid()
        self.counters: dict[str, int] = {}
        self._calls: dict[str, int] = {}
        self._lock = threading.Lock()
        # One independent stream per rule (string seeds hash with
        # sha512, stable across processes and python versions).
        self._rngs = [random.Random(f"fault:{self.seed}:{index}")
                      for index in range(len(self.rules))]

    # -- construction --------------------------------------------------
    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(data.get("rules", ()), seed=data.get("seed", 0))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        return cls.from_dict(json.loads(Path(path).read_text()))

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    def to_file(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    # -- firing --------------------------------------------------------
    def fire(self, point: str) -> FaultRule | None:
        """Count one call at ``point``; return the rule that fires, if any.

        The first matching rule wins (rule order is part of the plan).
        ``kill`` rules are skipped outside forked children so a worker
        plan cannot take down the training process itself.
        """
        with self._lock:
            n = self._calls.get(point, 0) + 1
            self._calls[point] = n
            for rule, rng in zip(self.rules, self._rngs):
                if rule.point != point or not rule.matches(n, rng):
                    continue
                if rule.kind == "kill" and not _in_forked_child():
                    continue
                rule.fired += 1
                key = f"{point}.{rule.kind}"
                self.counters[key] = self.counters.get(key, 0) + 1
                return rule
        return None

    def calls(self, point: str) -> int:
        with self._lock:
            return self._calls.get(point, 0)


def _in_forked_child() -> bool:
    """True inside a multiprocessing child (where ``kill`` may fire)."""
    return multiprocessing.parent_process() is not None


# ----------------------------------------------------------------------
# The active plan (module global so fork children inherit it)
# ----------------------------------------------------------------------

_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    return _ACTIVE


def activate(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previous plan."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def deactivate() -> None:
    activate(None)


@contextlib.contextmanager
def use_fault_plan(plan: FaultPlan | None):
    """Scope a plan to a ``with`` block (tests, the chaos CI tier)."""
    previous = activate(plan)
    try:
        yield plan
    finally:
        activate(previous)


def inject(point: str, metrics=None) -> str | None:
    """The one call an instrumented site makes: maybe fault, else no-op.

    With no active plan this is a dict lookup away from free.  When a rule
    fires, ``slow`` sleeps here, ``raise`` raises :class:`FaultInjected`,
    ``kill`` hard-exits a forked worker, and ``drop`` is returned for the
    caller to apply.  Every firing increments the global
    ``faults.injected`` counter (and ``metrics``' mirror when given).
    """
    plan = _ACTIVE
    if plan is None:
        return None
    rule = plan.fire(point)
    if rule is None:
        return None
    record("injected")
    if metrics is not None:
        metrics.counter("faults.injected").inc()
    if rule.kind == "slow":
        time.sleep(rule.delay_s)
        return "slow"
    if rule.kind == "raise":
        raise FaultInjected(
            f"injected fault at {point!r} (call {plan.calls(point)})")
    if rule.kind == "kill":
        os._exit(17)
    return "drop"


# ----------------------------------------------------------------------
# Cross-subsystem fault counters
# ----------------------------------------------------------------------

_COUNTER_LOCK = threading.Lock()
_COUNTERS: dict[str, int] = {name: 0 for name in COUNTER_NAMES}


def record(kind: str, amount: int = 1) -> None:
    """Bump one of the ``faults.*`` counters (injected/timeouts/respawns/
    retries)."""
    name = f"faults.{kind}"
    if name not in _COUNTERS:
        raise ValueError(f"unknown fault counter {kind!r}; "
                         f"choose from {sorted(_COUNTERS)}")
    with _COUNTER_LOCK:
        _COUNTERS[name] += amount


def counters_snapshot() -> dict[str, int]:
    """Current ``faults.*`` tallies (always all four keys)."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_counters() -> None:
    """Zero the tallies (tests and fresh chaos sessions)."""
    with _COUNTER_LOCK:
        for name in _COUNTERS:
            _COUNTERS[name] = 0
