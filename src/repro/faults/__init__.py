"""Fault tolerance: deadlines, retries, and deterministic chaos injection.

The robustness layer the serving/pipeline/training stacks build on:

* :mod:`repro.faults.deadline` — :class:`Deadline` (the only place in the
  library allowed to do ``time.monotonic()`` arithmetic; lint rule 8) and
  :class:`RetryPolicy` (capped exponential backoff + deterministic jitter,
  honoring ``Retry-After``);
* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, replayable
  fault-injection harness with named points (``serve.forward``,
  ``pipeline.chunk``, ``train.epoch``) and trigger predicates for
  ``slow`` / ``raise`` / ``kill`` / ``drop`` faults, plus the process-wide
  ``faults.*`` counters (injected / timeouts / respawns / retries).

See ``docs/robustness.md`` for the fault model and the chaos CI recipe
(``make chaos`` / CI tier f).
"""

from .deadline import (
    DEFAULT_DEADLINE_MS,
    DEFAULT_POOL_RECOVER_S,
    Deadline,
    RetryPolicy,
    default_deadline_ms,
    default_forward_timeout_ms,
    default_pool_recover_s,
)
from .plan import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    activate,
    active_plan,
    counters_snapshot,
    deactivate,
    inject,
    record,
    reset_counters,
    use_fault_plan,
)

__all__ = [
    "Deadline", "RetryPolicy",
    "DEFAULT_DEADLINE_MS", "DEFAULT_POOL_RECOVER_S",
    "default_deadline_ms", "default_forward_timeout_ms",
    "default_pool_recover_s",
    "FaultInjected", "FaultPlan", "FaultRule",
    "activate", "active_plan", "deactivate", "use_fault_plan", "inject",
    "record", "counters_snapshot", "reset_counters",
]
