"""Command-line interface for the GradGCL reproduction.

Subcommands
-----------
``run``
    The unified experiment runner: build a :class:`repro.run.RunConfig`
    from a JSON config file and/or flags, train via the registry-driven
    :class:`repro.run.Trainer`, evaluate, and optionally checkpoint.
    ``--list-methods`` enumerates every registered method;
    ``--resume RUN_DIR`` continues an interrupted run bit-identically.
``datasets``
    Print the statistics tables (paper Tables I/II/III) of the synthetic
    benchmark registry.
``train-graph``
    Train a graph-level method (optionally GradGCL-wrapped) and report the
    SVM evaluation accuracy (a thin shim over ``run``).
``train-node``
    Same for node-level methods with the linear-probe protocol.
``spectrum``
    Collapse analysis: train SimGRACE at a gradient weight and print the
    covariance spectrum summary.
``flow``
    Run the Lemma 2/3 linear-encoder gradient-flow simulation.
``sweep``
    Gradient-weight sensitivity curve (Fig. 8): train one method at
    several weights ``a`` and print the accuracy-vs-weight table.
``report``
    Render the JSONL telemetry journal of a ``--run-dir`` training run as
    text tables (config, per-epoch losses/grad-norms/throughput, collapse
    spectrum, span timings, engine counters, metric snapshots — including
    the serving counters a ``repro serve`` session journals).
``serve``
    Embedding inference service: load a frozen encoder from a
    checkpointed run directory and serve ``/embed`` / ``/healthz`` /
    ``/metrics`` over HTTP with dynamic micro-batching, an embedding LRU
    cache, and bounded-queue load shedding.
``embed``
    Offline bulk embedding: run the same frozen encoder over a whole
    dataset and write ``embeddings.npz`` (the byte-exact reference for
    the served numbers).

Examples::

    repro run --list-methods
    repro run --method SimGRACE --weight 0.5 --dataset MUTAG
    repro run config.json --epochs 40 --run-dir runs/exp1
    repro run --resume runs/exp1
    repro datasets --family tu
    repro train-graph --method GraphCL --epochs 2 --run-dir runs/smoke
    repro report runs/smoke
    repro train-node --method GRACE --dataset Cora --weight 0.2
    repro spectrum --dataset IMDB-B --weight 0.5
    repro sweep --method SimGRACE --weights 0.0 0.5 1.0
    repro flow --weight 0.5
    repro serve --run-dir runs/exp1 --port 8080 --max-wait-ms 5
    repro embed --run-dir runs/exp1 --out embeddings.npz
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.run.registry import method_names
from repro.utils.seed import seeded_rng

__all__ = ["main", "build_parser"]

_SCALES = ["tiny", "small", "paper"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GradGCL (ICDE 2024) reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    rn = sub.add_parser(
        "run", help="run (or resume) an experiment from a config/flags")
    rn.add_argument("config", nargs="?", default=None,
                    help="JSON RunConfig file; flags override its fields")
    rn.add_argument("--list-methods", action="store_true",
                    help="print every registered method and exit")
    rn.add_argument("--resume", default=None, metavar="RUN_DIR",
                    help="continue an interrupted run from its directory")
    rn.add_argument("--method", choices=method_names(), default=None)
    rn.add_argument("--level", choices=["graph", "node"], default=None,
                    help="training level (inferred from the method when "
                         "unambiguous)")
    rn.add_argument("--dataset", default=None)
    rn.add_argument("--scale", choices=_SCALES, default=None)
    rn.add_argument("--weight", type=float, default=None,
                    help="gradient-loss weight a (0 = base model)")
    rn.add_argument("--epochs", type=int, default=None)
    rn.add_argument("--batch-size", type=int, default=None)
    rn.add_argument("--lr", type=float, default=None)
    rn.add_argument("--weight-decay", type=float, default=None)
    rn.add_argument("--grad-clip", type=float, default=None)
    rn.add_argument("--patience", type=int, default=None,
                    help="early-stopping patience in epochs")
    rn.add_argument("--min-delta", type=float, default=None,
                    help="early-stopping improvement threshold")
    rn.add_argument("--seed", type=int, default=None)
    rn.add_argument("--hidden-dim", type=int, default=None)
    rn.add_argument("--out-dim", type=int, default=None)
    rn.add_argument("--layers", type=int, default=None)
    rn.add_argument("--workers", type=int, default=None,
                    help="augmentation worker processes (default: "
                         "REPRO_WORKERS or 0 = serial)")
    rn.add_argument("--eval-workers", type=int, default=None,
                    help="evaluation worker processes for parallel "
                         "cross-validation; results are identical at "
                         "every count (default: REPRO_EVAL_WORKERS or "
                         "0 = serial)")
    rn.add_argument("--run-dir", default=None,
                    help="journal + config + checkpoint directory")
    rn.add_argument("--spectrum-every", type=int, default=None)
    rn.add_argument("--checkpoint-every", type=int, default=None,
                    help="write a resumable checkpoint every N epochs "
                         "(requires --run-dir)")
    rn.add_argument("--stop-after", type=int, default=None,
                    help="simulate an interruption after N epochs "
                         "(for resume drills)")
    rn.add_argument("--retries", type=int, default=None,
                    help="auto-resume from the last checkpoint up to N "
                         "times when a recoverable fault (worker crash, "
                         "IO error, injected fault) interrupts training "
                         "(requires --run-dir)")
    rn.add_argument("--fault-plan", default=None, metavar="PLAN_JSON",
                    help="activate a deterministic fault-injection plan "
                         "for this run (chaos drills; see "
                         "docs/robustness.md)")
    rn.add_argument("--save", default=None,
                    help="path to save the trained encoder (.npz)")
    _add_cache_arguments(rn)

    ds = sub.add_parser("datasets", help="print benchmark statistics")
    ds.add_argument("--family", choices=["tu", "node", "molecule", "all"],
                    default="all")
    ds.add_argument("--scale", default="small", choices=_SCALES)
    ds.add_argument("--seed", type=int, default=0)

    tg = sub.add_parser("train-graph",
                        help="train and evaluate a graph-level method")
    tg.add_argument("--method", choices=method_names("graph"),
                    default="SimGRACE")
    tg.add_argument("--dataset", default="MUTAG")
    tg.add_argument("--weight", type=float, default=0.0,
                    help="gradient-loss weight a (0 = base model)")
    tg.add_argument("--epochs", type=int, default=20)
    tg.add_argument("--hidden-dim", type=int, default=16)
    tg.add_argument("--layers", type=int, default=2)
    tg.add_argument("--scale", default="small", choices=_SCALES)
    tg.add_argument("--seed", type=int, default=0)
    tg.add_argument("--save", default=None,
                    help="path to save the trained encoder (.npz)")
    tg.add_argument("--run-dir", default=None,
                    help="write a JSONL telemetry journal to this directory")
    tg.add_argument("--workers", type=int, default=None,
                    help="augmentation worker processes (default: "
                         "REPRO_WORKERS or 0 = serial); every worker count "
                         "produces bit-identical results")
    _add_cache_arguments(tg)

    tn = sub.add_parser("train-node",
                        help="train and evaluate a node-level method")
    tn.add_argument("--method", choices=method_names("node"),
                    default="GRACE")
    tn.add_argument("--dataset", default="Cora")
    tn.add_argument("--weight", type=float, default=0.0)
    tn.add_argument("--epochs", type=int, default=40)
    tn.add_argument("--hidden-dim", type=int, default=32)
    tn.add_argument("--out-dim", type=int, default=16)
    tn.add_argument("--scale", default="small", choices=_SCALES)
    tn.add_argument("--seed", type=int, default=0)
    tn.add_argument("--save", default=None,
                    help="path to save the trained encoder (.npz)")
    tn.add_argument("--run-dir", default=None,
                    help="write a JSONL telemetry journal to this directory")
    _add_cache_arguments(tn)

    sp = sub.add_parser("spectrum", help="collapse spectrum analysis")
    sp.add_argument("--dataset", default="IMDB-B")
    sp.add_argument("--weight", type=float, default=0.0)
    sp.add_argument("--epochs", type=int, default=60)
    sp.add_argument("--scale", default="small", choices=_SCALES)
    sp.add_argument("--seed", type=int, default=0)

    fl = sub.add_parser("flow",
                        help="Lemma 2/3 linear gradient-flow simulation")
    fl.add_argument("--weight", type=float, default=0.0)
    fl.add_argument("--steps", type=int, default=200)
    fl.add_argument("--samples", type=int, default=32)
    fl.add_argument("--dim", type=int, default=10)
    fl.add_argument("--seed", type=int, default=0)

    sw = sub.add_parser("sweep",
                        help="gradient-weight sensitivity curve (Fig. 8)")
    sw.add_argument("--method", choices=method_names("graph"),
                    default="SimGRACE")
    sw.add_argument("--dataset", default="MUTAG")
    sw.add_argument("--weights", type=float, nargs="+",
                    default=[0.0, 0.25, 0.5, 0.75, 1.0])
    sw.add_argument("--epochs", type=int, default=15)
    sw.add_argument("--scale", default="small", choices=_SCALES)
    sw.add_argument("--seed", type=int, default=0)

    rp = sub.add_parser("report",
                        help="render a run-dir telemetry journal as tables")
    rp.add_argument("run_dir", help="directory holding events.jsonl")
    rp.add_argument("--spectrum-top", type=int, default=8,
                    help="how many leading singular values to print")

    sv = sub.add_parser("serve",
                        help="serve embeddings from a checkpointed run "
                             "over HTTP with dynamic micro-batching")
    sv.add_argument("--run-dir", required=True,
                    help="run directory holding config.json + checkpoint "
                         "(written by repro run --checkpoint-every)")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8080,
                    help="listen port (0 picks a free one)")
    _add_inference_arguments(sv)
    sv.add_argument("--max-batch-size", type=int, default=64,
                    help="coalesce at most this many graphs per forward")
    sv.add_argument("--max-wait-ms", type=float, default=2.0,
                    help="how long a forward holds for follower requests")
    sv.add_argument("--queue-size", type=int, default=128,
                    help="bounded request queue; beyond it requests shed "
                         "with HTTP 429 instead of queueing latency")
    sv.add_argument("--deadline-ms", type=float, default=None,
                    help="default per-request deadline; a request that "
                         "misses it gets HTTP 504 instead of waiting "
                         "(default: REPRO_DEADLINE_MS or 30000)")
    sv.add_argument("--forward-timeout-ms", type=float, default=None,
                    help="watchdog threshold for a hung forward: past it "
                         "the batch is tombstoned and a fresh worker "
                         "takes over (default: REPRO_FORWARD_TIMEOUT_MS "
                         "or the deadline)")
    sv.add_argument("--cache-entries", type=int, default=None,
                    help="embedding LRU bound (0 disables the cache; "
                         "default: REPRO_EMBED_CACHE or 4096)")
    sv.add_argument("--journal-dir", default=None,
                    help="append a serving metrics event to this journal "
                         "directory on shutdown")

    em = sub.add_parser("embed",
                        help="bulk-embed a dataset with a checkpointed "
                             "encoder into an .npz file")
    em.add_argument("--run-dir", default=None,
                    help="run directory holding config.json + checkpoint "
                         "(required unless --remote)")
    em.add_argument("--remote", default=None, metavar="URL",
                    help="embed through a live repro serve endpoint "
                         "instead of a local checkpoint; requests retry "
                         "with exponential backoff on 429/504")
    em.add_argument("--retries", type=int, default=4,
                    help="max retries per request with --remote")
    em.add_argument("--deadline-ms", type=float, default=None,
                    help="per-request deadline_ms forwarded to the "
                         "server with --remote")
    em.add_argument("--out", required=True,
                    help="output .npz path (embeddings + labels + "
                         "provenance)")
    em.add_argument("--dataset", default=None,
                    help="dataset to embed (default: the one the "
                         "checkpoint was trained on)")
    em.add_argument("--scale", choices=_SCALES, default=None)
    em.add_argument("--seed", type=int, default=None)
    em.add_argument("--batch-size", type=int, default=128,
                    help="graphs per block-diagonal forward chunk")
    _add_inference_arguments(em)
    return parser


def _add_inference_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--dtype", choices=["float32", "float64"],
                     default="float32",
                     help="inference dtype (float32 serves ~2x faster; "
                          "float64 reproduces training-precision numbers)")
    sub.add_argument("--plan-cache", type=int, default=None,
                     help="captured-plan cache capacity per encoder "
                          "(0 disables plan replay; default: "
                          "REPRO_PLAN_CACHE or 32)")


def _add_cache_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--no-cache", action="store_true",
                     help="disable the persistent structure cache "
                          "(adjacency/diffusion reuse across epochs)")
    sub.add_argument("--cache-entries", type=int, default=None,
                     help="structure-cache LRU bound (default: "
                          "REPRO_CACHE_ENTRIES or 1024)")


# ----------------------------------------------------------------------
# The unified runner
# ----------------------------------------------------------------------

#: run-subcommand flag -> RunConfig field (identity unless noted).
_RUN_CONFIG_FLAGS = {
    "method": "method", "level": "level", "dataset": "dataset",
    "scale": "scale", "weight": "weight", "epochs": "epochs",
    "batch_size": "batch_size", "lr": "lr",
    "weight_decay": "weight_decay", "grad_clip": "grad_clip",
    "patience": "patience", "min_delta": "min_delta", "seed": "seed",
    "hidden_dim": "hidden_dim",
    "out_dim": "out_dim", "layers": "num_layers", "workers": "workers",
    "eval_workers": "eval_workers",
    "cache_entries": "cache_entries", "run_dir": "run_dir",
    "spectrum_every": "spectrum_every",
    "checkpoint_every": "checkpoint_every", "save": "save",
}


def _print_run_result(result) -> int:
    """Human summary of a RunResult (shared by run/train-* commands)."""
    config = result.config
    if result.interrupted:
        done = len(result.history.losses) if result.history else 0
        print(f"{config.method}(a={config.weight}) on {config.dataset}: "
              f"interrupted after {done}/{config.epochs} epochs")
        if config.run_dir:
            print(f"resume with: repro run --resume {config.run_dir}")
        return 0
    line = (f"{config.method}(a={config.weight}) on {config.dataset}: "
            f"accuracy {result.accuracy:.2f}±{result.accuracy_std:.2f}%  ")
    if result.effective_rank is not None:
        line += f"effective-rank {result.effective_rank:.2f}  "
    line += (f"final-loss {result.history.final_loss:.3f}  "
             f"time {result.history.total_seconds:.1f}s")
    print(line)
    if result.journal_path is not None:
        print(f"journal written to {result.journal_path}")
    if result.saved_to is not None:
        print(f"encoder saved to {result.saved_to}")
    return 0


def _cmd_run(args) -> int:
    import dataclasses

    from repro.run import RunConfig, execute_run, list_methods, resume_run
    from repro.utils import print_table

    if args.list_methods:
        rows = [[e.name, e.level, e.cls.__name__, e.summary]
                for e in list_methods()]
        print_table("Registered methods",
                    ["Method", "Level", "Class", "Summary"], rows)
        return 0
    from repro.faults import FaultPlan, use_fault_plan

    plan = (FaultPlan.from_file(args.fault_plan)
            if args.fault_plan is not None else None)
    with use_fault_plan(plan):
        if args.resume is not None:
            return _print_run_result(
                resume_run(args.resume, stop_after=args.stop_after))
        overrides = {field: getattr(args, flag)
                     for flag, field in _RUN_CONFIG_FLAGS.items()
                     if getattr(args, flag) is not None}
        if args.no_cache:
            overrides["cache"] = False
        if args.config is not None:
            config = dataclasses.replace(RunConfig.from_file(args.config),
                                         **overrides)
        else:
            config = RunConfig(**overrides)
        return _print_run_result(execute_run(config,
                                             stop_after=args.stop_after,
                                             retries=args.retries or 0))


def _cmd_datasets(args) -> int:
    from repro.datasets import (
        load_molecule_dataset,
        load_node_dataset,
        load_tu_dataset,
        molecule_dataset_names,
        node_dataset_names,
        tu_dataset_names,
    )
    from repro.utils import print_table

    if args.family in ("tu", "all"):
        rows = []
        for name in tu_dataset_names():
            stats = load_tu_dataset(name, scale=args.scale,
                                    seed=args.seed).statistics()
            rows.append([stats["name"], stats["category"],
                         stats["num_graphs"], stats["num_classes"],
                         f"{stats['avg_nodes']:.2f}",
                         f"{stats['avg_edges']:.2f}"])
        print_table("Table I: graph-classification datasets",
                    ["Dataset", "Category", "Graphs", "Classes",
                     "Avg. nodes", "Avg. edges"], rows)
    if args.family in ("node", "all"):
        rows = []
        for name in node_dataset_names():
            stats = load_node_dataset(name, scale=args.scale,
                                      seed=args.seed).statistics()
            rows.append([stats["name"], stats["nodes"], stats["edges"],
                         stats["features"], stats["classes"]])
        print_table("Table II: node-classification datasets",
                    ["Dataset", "Nodes", "Edges", "Features", "Classes"],
                    rows)
    if args.family in ("molecule", "all"):
        rows = []
        for name in molecule_dataset_names():
            stats = load_molecule_dataset(name, scale=args.scale,
                                          seed=args.seed).statistics()
            rows.append([stats["name"], stats["num_graphs"],
                         f"{stats['avg_nodes']:.2f}"])
        print_table("Table III: transfer-learning finetune datasets",
                    ["Dataset", "Graphs", "Avg. nodes"], rows)
    return 0


def _train_config(args, level: str):
    """RunConfig for the legacy train-graph / train-node shims."""
    from repro.run import RunConfig

    return RunConfig(
        method=args.method, dataset=args.dataset, level=level,
        scale=args.scale, weight=args.weight, epochs=args.epochs,
        seed=args.seed, hidden_dim=args.hidden_dim,
        out_dim=getattr(args, "out_dim", None),
        num_layers=getattr(args, "layers", None),
        workers=getattr(args, "workers", None),
        cache=not args.no_cache, cache_entries=args.cache_entries,
        run_dir=args.run_dir, save=args.save)


def _cmd_train_graph(args) -> int:
    from repro.run import execute_run

    return _print_run_result(execute_run(_train_config(args, "graph")))


def _cmd_train_node(args) -> int:
    from repro.run import execute_run

    return _print_run_result(execute_run(_train_config(args, "node")))


def _cmd_spectrum(args) -> int:
    from repro.core import (
        effective_rank,
        gradgcl,
        num_collapsed_dimensions,
    )
    from repro.datasets import load_tu_dataset
    from repro.methods import SimGRACE, train_graph_method

    dataset = load_tu_dataset(args.dataset, scale=args.scale,
                              seed=args.seed)
    rng = seeded_rng(args.seed)
    method = SimGRACE(dataset.num_features, 32, 2, rng=rng,
                      perturb_magnitude=0.5)
    if args.weight > 0:
        method = gradgcl(method, args.weight)
    train_graph_method(method, dataset.graphs, epochs=args.epochs,
                       batch_size=64, lr=3e-3, weight_decay=3e-2,
                       seed=args.seed)
    embeddings = method.embed(dataset.graphs)
    print(f"SimGRACE(a={args.weight}) on {args.dataset}: "
          f"effective-rank {effective_rank(embeddings):.2f}"
          f"/{embeddings.shape[1]}  "
          f"collapsed-dims "
          f"{num_collapsed_dimensions(embeddings, tol=1e-4)}")
    return 0


def _cmd_flow(args) -> int:
    from repro.core import simulate_gradient_flow

    rng = seeded_rng(args.seed)
    x = rng.normal(size=(args.samples, args.dim))
    x_pos = x + 0.1 * rng.normal(size=x.shape)
    result = simulate_gradient_flow(x, x_pos, dim_out=args.dim,
                                    steps=args.steps,
                                    gradient_weight=args.weight,
                                    seed=args.seed)
    print(f"gradient flow (a={args.weight}, {args.steps} steps): "
          f"embedding rank {result.embedding_ranks[0]:.2f} -> "
          f"{result.final_embedding_rank:.2f}, "
          f"weight rank -> {result.final_weight_rank:.2f}, "
          f"loss -> {result.losses[-1]:.4f}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.run import RunConfig, execute_run
    from repro.utils import print_table

    rows = []
    for weight in args.weights:
        config = RunConfig(method=args.method, dataset=args.dataset,
                           level="graph", scale=args.scale, weight=weight,
                           epochs=args.epochs, seed=args.seed)
        result = execute_run(config)
        rows.append([f"a={weight}",
                     f"{result.accuracy:.2f}±{result.accuracy_std:.2f}"])
    print_table(f"{args.method} on {args.dataset}: accuracy vs gradient "
                "weight", ["Weight", "Accuracy (%)"], rows)
    return 0


def _cmd_serve(args) -> int:
    from repro.serve import (
        EmbeddingService,
        FrozenEncoder,
        install_drain_handler,
        make_server,
    )

    encoder = FrozenEncoder.from_checkpoint(args.run_dir, dtype=args.dtype,
                                            plan_cache=args.plan_cache)
    service = EmbeddingService(encoder,
                               max_batch_size=args.max_batch_size,
                               max_wait_ms=args.max_wait_ms,
                               queue_size=args.queue_size,
                               deadline_ms=args.deadline_ms,
                               forward_timeout_ms=args.forward_timeout_ms,
                               cache_entries=args.cache_entries)
    server = make_server(service, host=args.host, port=args.port)
    install_drain_handler(server)
    host, port = server.server_address[:2]
    info = encoder.describe()
    print(f"serving {info['method']}(a={info['gradgcl_weight']}) "
          f"[{info['dataset']}, {info['embedding_dim']}-d {info['dtype']}] "
          f"on http://{host}:{port}  (POST /embed, GET /healthz /metrics; "
          "Ctrl-C to stop, SIGTERM to drain)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
        snapshot = service.metrics_snapshot()
        if args.journal_dir is not None:
            from repro.obs import RunJournal

            with RunJournal(args.journal_dir, append=True) as journal:
                journal.log("metrics", **snapshot)
                journal.log("note",
                            message="repro serve session closed",
                            config_hash=encoder.config_hash)
        requests = snapshot.get("serve.requests", 0)
        batches = snapshot.get("serve.batches", 0)
        shed = snapshot.get("serve.shed", 0)
        print(f"\nserved {requests} request(s) in {batches} forward "
              f"batch(es), shed {shed}")
    return 0


def _cmd_embed(args) -> int:
    if args.remote is not None:
        from repro.faults import RetryPolicy
        from repro.serve import ServingClient, embed_remote

        client = ServingClient(args.remote,
                               policy=RetryPolicy(retries=args.retries),
                               deadline_ms=args.deadline_ms)
        summary = embed_remote(args.remote, args.out,
                               dataset=args.dataset, scale=args.scale,
                               seed=args.seed, batch_size=args.batch_size,
                               client=client)
        print(f"embedded {summary['num_graphs']} {summary['dataset']} "
              f"graphs ({summary['scale']}, seed {summary['seed']}) via "
              f"{args.remote} into {summary['dim']}-d {summary['dtype']} "
              f"rows -> {summary['out']} [config {summary['config_hash']}; "
              f"{summary['attempts']} request(s), "
              f"{summary['retries']} retried]")
        return 0
    if args.run_dir is None:
        raise SystemExit("repro embed: --run-dir is required "
                         "(or use --remote URL)")
    from repro.serve import embed_dataset

    summary = embed_dataset(args.run_dir, args.out, dataset=args.dataset,
                            scale=args.scale, seed=args.seed,
                            batch_size=args.batch_size, dtype=args.dtype,
                            plan_cache=args.plan_cache)
    print(f"embedded {summary['num_graphs']} {summary['dataset']} graphs "
          f"({summary['scale']}, seed {summary['seed']}) into "
          f"{summary['dim']}-d {summary['dtype']} rows -> {summary['out']} "
          f"[config {summary['config_hash']}]")
    return 0


def _fmt(value, digits: int = 4) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    if isinstance(value, dict):
        # Histogram snapshots ({count, total, mean, p50, p95}) and other
        # structured metric values render as compact k=v lists.
        return "  ".join(f"{k}={_fmt(v)}" for k, v in value.items())
    return str(value)


def _cmd_report(args) -> int:
    from repro.obs import events_of, validate_journal
    from repro.utils import print_table

    events = validate_journal(args.run_dir)

    for config in events_of(events, "config"):
        rows = [[key, _fmt(value)] for key, value in sorted(config.items())
                if key not in ("event", "ts")]
        print_table("Run config", ["Field", "Value"], rows)

    epochs = events_of(events, "epoch")
    if epochs:
        throughput_key = ("graphs_per_sec" if "graphs_per_sec" in epochs[0]
                          else "nodes_per_sec")
        rows = [[e["epoch"], _fmt(e.get("loss")), _fmt(e.get("loss_f", "-")),
                 _fmt(e.get("loss_g", "-")), _fmt(e.get("grad_norm", "-")),
                 _fmt(e.get("seconds")), _fmt(e.get(throughput_key, "-"))]
                for e in epochs]
        print_table("Epochs",
                    ["Epoch", "Loss", "loss_f", "loss_g", "Grad norm",
                     "Seconds", throughput_key.replace("_per_sec", "/s")],
                    rows)

    spectra = events_of(events, "spectrum")
    if spectra:
        rows = []
        for e in spectra:
            values = e.get("singular_values", [])
            head = "  ".join(_fmt(v, 3) for v in values[:args.spectrum_top])
            if len(values) > args.spectrum_top:
                head += "  ..."
            rows.append([e.get("epoch"), _fmt(e.get("effective_rank")),
                         e.get("collapsed_dims"), head])
        print_table("Collapse spectrum (Figs. 1/5)",
                    ["Epoch", "Eff. rank", "Collapsed", "Top singular "
                     "values"], rows)

    for ev in events_of(events, "eval"):
        rows = [[key, _fmt(value)] for key, value in sorted(ev.items())
                if key not in ("event", "ts")]
        print_table("Evaluation", ["Field", "Value"], rows)

    for tr in events_of(events, "trace"):
        rows = [[path, stats["count"], _fmt(stats["total"]),
                 _fmt(stats["p50"]), _fmt(stats["p95"])]
                for path, stats in sorted(tr.get("spans", {}).items())]
        print_table("Span timings",
                    ["Span", "Count", "Total s", "p50 s", "p95 s"], rows)

    for eng in events_of(events, "engine"):
        rows = [[key, _fmt(value)] for key, value in sorted(eng.items())
                if key not in ("event", "ts")]
        print_table("Tensor engine", ["Counter", "Value"], rows)

    for met in events_of(events, "metrics"):
        # Render every key generically (structure-cache counters, serving
        # counters, future instruments) instead of dropping unknown names.
        rows = [[key, _fmt(value)] for key, value in sorted(met.items())
                if key not in ("event", "ts")]
        title = ("Serving metrics"
                 if any(key.startswith("serve.") for key in met)
                 else "Metrics")
        print_table(title, ["Name", "Value"], rows)

    for table in events_of(events, "bench_table"):
        print_table(table.get("title", table.get("name", "bench")),
                    table.get("headers", []), table.get("rows", []))

    for end in events_of(events, "run_end"):
        rows = [[key, _fmt(value)] for key, value in sorted(end.items())
                if key not in ("event", "ts")]
        print_table("Run end", ["Field", "Value"], rows)
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "datasets": _cmd_datasets,
    "train-graph": _cmd_train_graph,
    "train-node": _cmd_train_node,
    "spectrum": _cmd_spectrum,
    "flow": _cmd_flow,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "serve": _cmd_serve,
    "embed": _cmd_embed,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
