"""Command-line interface for the GradGCL reproduction.

Subcommands
-----------
``datasets``
    Print the statistics tables (paper Tables I/II/III) of the synthetic
    benchmark registry.
``train-graph``
    Train a graph-level method (optionally GradGCL-wrapped) and report the
    SVM evaluation accuracy.
``train-node``
    Same for node-level methods with the linear-probe protocol.
``spectrum``
    Collapse analysis: train SimGRACE at a gradient weight and print the
    covariance spectrum summary.
``flow``
    Run the Lemma 2/3 linear-encoder gradient-flow simulation.
``report``
    Render the JSONL telemetry journal of a ``--run-dir`` training run as
    text tables (config, per-epoch losses/grad-norms/throughput, collapse
    spectrum, span timings, engine counters).

Examples::

    repro datasets --family tu
    repro train-graph --method SimGRACE --dataset MUTAG --weight 0.5
    repro train-graph --method GraphCL --epochs 2 --run-dir runs/smoke
    repro report runs/smoke
    repro train-node --method GRACE --dataset Cora --weight 0.2
    repro spectrum --dataset IMDB-B --weight 0.5
    repro flow --weight 0.5
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.utils.seed import seeded_rng

__all__ = ["main", "build_parser"]

GRAPH_METHODS = ["GraphCL", "JOAO", "SimGRACE", "InfoGraph", "MVGRL",
                 "GraphMAE"]
NODE_METHODS = ["GRACE", "GCA", "BGRL", "SGCL", "COSTA", "MVGRL", "DGI"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GradGCL (ICDE 2024) reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    ds = sub.add_parser("datasets", help="print benchmark statistics")
    ds.add_argument("--family", choices=["tu", "node", "molecule", "all"],
                    default="all")
    ds.add_argument("--scale", default="small",
                    choices=["tiny", "small", "paper"])
    ds.add_argument("--seed", type=int, default=0)

    tg = sub.add_parser("train-graph",
                        help="train and evaluate a graph-level method")
    tg.add_argument("--method", choices=GRAPH_METHODS, default="SimGRACE")
    tg.add_argument("--dataset", default="MUTAG")
    tg.add_argument("--weight", type=float, default=0.0,
                    help="gradient-loss weight a (0 = base model)")
    tg.add_argument("--epochs", type=int, default=20)
    tg.add_argument("--hidden-dim", type=int, default=16)
    tg.add_argument("--layers", type=int, default=2)
    tg.add_argument("--scale", default="small",
                    choices=["tiny", "small", "paper"])
    tg.add_argument("--seed", type=int, default=0)
    tg.add_argument("--save", default=None,
                    help="path to save the trained encoder (.npz)")
    tg.add_argument("--run-dir", default=None,
                    help="write a JSONL telemetry journal to this directory")
    tg.add_argument("--workers", type=int, default=None,
                    help="augmentation worker processes (default: "
                         "REPRO_WORKERS or 0 = serial); every worker count "
                         "produces bit-identical results")
    _add_cache_arguments(tg)

    tn = sub.add_parser("train-node",
                        help="train and evaluate a node-level method")
    tn.add_argument("--method", choices=NODE_METHODS, default="GRACE")
    tn.add_argument("--dataset", default="Cora")
    tn.add_argument("--weight", type=float, default=0.0)
    tn.add_argument("--epochs", type=int, default=40)
    tn.add_argument("--hidden-dim", type=int, default=32)
    tn.add_argument("--out-dim", type=int, default=16)
    tn.add_argument("--scale", default="small",
                    choices=["tiny", "small", "paper"])
    tn.add_argument("--seed", type=int, default=0)
    tn.add_argument("--run-dir", default=None,
                    help="write a JSONL telemetry journal to this directory")
    _add_cache_arguments(tn)

    sp = sub.add_parser("spectrum", help="collapse spectrum analysis")
    sp.add_argument("--dataset", default="IMDB-B")
    sp.add_argument("--weight", type=float, default=0.0)
    sp.add_argument("--epochs", type=int, default=60)
    sp.add_argument("--scale", default="small",
                    choices=["tiny", "small", "paper"])
    sp.add_argument("--seed", type=int, default=0)

    fl = sub.add_parser("flow",
                        help="Lemma 2/3 linear gradient-flow simulation")
    fl.add_argument("--weight", type=float, default=0.0)
    fl.add_argument("--steps", type=int, default=200)
    fl.add_argument("--samples", type=int, default=32)
    fl.add_argument("--dim", type=int, default=10)
    fl.add_argument("--seed", type=int, default=0)

    sw = sub.add_parser("sweep",
                        help="gradient-weight sensitivity curve (Fig. 8)")
    sw.add_argument("--method", choices=GRAPH_METHODS, default="SimGRACE")
    sw.add_argument("--dataset", default="MUTAG")
    sw.add_argument("--weights", type=float, nargs="+",
                    default=[0.0, 0.25, 0.5, 0.75, 1.0])
    sw.add_argument("--epochs", type=int, default=15)
    sw.add_argument("--scale", default="small",
                    choices=["tiny", "small", "paper"])
    sw.add_argument("--seed", type=int, default=0)

    rp = sub.add_parser("report",
                        help="render a run-dir telemetry journal as tables")
    rp.add_argument("run_dir", help="directory holding events.jsonl")
    rp.add_argument("--spectrum-top", type=int, default=8,
                    help="how many leading singular values to print")
    return parser


def _add_cache_arguments(sub: argparse.ArgumentParser) -> None:
    sub.add_argument("--no-cache", action="store_true",
                     help="disable the persistent structure cache "
                          "(adjacency/diffusion reuse across epochs)")
    sub.add_argument("--cache-entries", type=int, default=None,
                     help="structure-cache LRU bound (default: "
                          "REPRO_CACHE_ENTRIES or 1024)")


def _structure_cache(args):
    """Structure cache per the CLI flags (enabled by default — caching
    reuses structure across epochs without changing any number)."""
    if args.no_cache:
        return None
    from repro.pipeline import StructureCache

    return StructureCache(max_entries=args.cache_entries)


def _open_journal(args):
    """Fresh RunJournal when ``--run-dir`` was given, else None."""
    if getattr(args, "run_dir", None) is None:
        return None
    from repro.obs import RunJournal

    return RunJournal(args.run_dir)


def _cmd_datasets(args) -> int:
    from repro.datasets import (
        load_molecule_dataset,
        load_node_dataset,
        load_tu_dataset,
        molecule_dataset_names,
        node_dataset_names,
        tu_dataset_names,
    )
    from repro.utils import print_table

    if args.family in ("tu", "all"):
        rows = []
        for name in tu_dataset_names():
            stats = load_tu_dataset(name, scale=args.scale,
                                    seed=args.seed).statistics()
            rows.append([stats["name"], stats["category"],
                         stats["num_graphs"], stats["num_classes"],
                         f"{stats['avg_nodes']:.2f}",
                         f"{stats['avg_edges']:.2f}"])
        print_table("Table I: graph-classification datasets",
                    ["Dataset", "Category", "Graphs", "Classes",
                     "Avg. nodes", "Avg. edges"], rows)
    if args.family in ("node", "all"):
        rows = []
        for name in node_dataset_names():
            stats = load_node_dataset(name, scale=args.scale,
                                      seed=args.seed).statistics()
            rows.append([stats["name"], stats["nodes"], stats["edges"],
                         stats["features"], stats["classes"]])
        print_table("Table II: node-classification datasets",
                    ["Dataset", "Nodes", "Edges", "Features", "Classes"],
                    rows)
    if args.family in ("molecule", "all"):
        rows = []
        for name in molecule_dataset_names():
            stats = load_molecule_dataset(name, scale=args.scale,
                                          seed=args.seed).statistics()
            rows.append([stats["name"], stats["num_graphs"],
                         f"{stats['avg_nodes']:.2f}"])
        print_table("Table III: transfer-learning finetune datasets",
                    ["Dataset", "Graphs", "Avg. nodes"], rows)
    return 0


def _graph_method(name: str):
    import repro.methods as methods

    return getattr(methods, name)


def _cmd_train_graph(args) -> int:
    from repro.core import effective_rank, gradgcl
    from repro.datasets import load_tu_dataset
    from repro.eval import evaluate_graph_embeddings
    from repro.methods import train_graph_method
    from repro.nn import save_module

    dataset = load_tu_dataset(args.dataset, scale=args.scale,
                              seed=args.seed)
    rng = seeded_rng(args.seed)
    method = _graph_method(args.method)(dataset.num_features,
                                        args.hidden_dim, args.layers,
                                        rng=rng)
    if args.weight > 0:
        method = gradgcl(method, args.weight)
    journal = _open_journal(args)
    try:
        history = train_graph_method(method, dataset.graphs,
                                     epochs=args.epochs, batch_size=32,
                                     seed=args.seed, journal=journal,
                                     workers=args.workers,
                                     structure_cache=_structure_cache(args))
        embeddings = method.embed(dataset.graphs)
        acc, std = evaluate_graph_embeddings(embeddings, dataset.labels(),
                                             seed=args.seed)
        if journal is not None:
            journal.log("eval", dataset=args.dataset, accuracy=acc,
                        accuracy_std=std,
                        effective_rank=effective_rank(embeddings))
    finally:
        if journal is not None:
            journal.close()
    print(f"{args.method}(a={args.weight}) on {args.dataset}: "
          f"accuracy {acc:.2f}±{std:.2f}%  "
          f"effective-rank {effective_rank(embeddings):.2f}  "
          f"final-loss {history.final_loss:.3f}  "
          f"time {history.total_seconds:.1f}s")
    if journal is not None:
        print(f"journal written to {journal.path}")
    if args.save:
        save_module(method.encoder, args.save)
        print(f"encoder saved to {args.save}")
    return 0


def _cmd_train_node(args) -> int:
    from repro.core import gradgcl
    from repro.datasets import load_node_dataset
    from repro.eval import evaluate_node_embeddings
    from repro.methods import MVGRLNode, train_node_method
    import repro.methods as methods

    dataset = load_node_dataset(args.dataset, scale=args.scale,
                                seed=args.seed)
    rng = seeded_rng(args.seed)
    if args.method == "MVGRL":
        method = MVGRLNode(dataset.num_features, args.hidden_dim, rng=rng)
    else:
        cls = getattr(methods, args.method)
        method = cls(dataset.num_features, args.hidden_dim, args.out_dim,
                     rng=rng)
    if args.weight > 0:
        method = gradgcl(method, args.weight)
    journal = _open_journal(args)
    try:
        history = train_node_method(method, dataset.graph,
                                    epochs=args.epochs, lr=3e-3,
                                    journal=journal,
                                    structure_cache=_structure_cache(args))
        acc, std = evaluate_node_embeddings(method.embed(dataset.graph),
                                            dataset.labels(),
                                            dataset.train_mask,
                                            dataset.test_mask,
                                            seed=args.seed)
        if journal is not None:
            journal.log("eval", dataset=args.dataset, accuracy=acc,
                        accuracy_std=std)
    finally:
        if journal is not None:
            journal.close()
    print(f"{args.method}(a={args.weight}) on {args.dataset}: "
          f"accuracy {acc:.2f}±{std:.2f}%  "
          f"final-loss {history.final_loss:.3f}  "
          f"time {history.total_seconds:.1f}s")
    if journal is not None:
        print(f"journal written to {journal.path}")
    return 0


def _cmd_spectrum(args) -> int:
    from repro.core import (
        effective_rank,
        gradgcl,
        num_collapsed_dimensions,
    )
    from repro.datasets import load_tu_dataset
    from repro.methods import SimGRACE, train_graph_method

    dataset = load_tu_dataset(args.dataset, scale=args.scale,
                              seed=args.seed)
    rng = seeded_rng(args.seed)
    method = SimGRACE(dataset.num_features, 32, 2, rng=rng,
                      perturb_magnitude=0.5)
    if args.weight > 0:
        method = gradgcl(method, args.weight)
    train_graph_method(method, dataset.graphs, epochs=args.epochs,
                       batch_size=64, lr=3e-3, weight_decay=3e-2,
                       seed=args.seed)
    embeddings = method.embed(dataset.graphs)
    print(f"SimGRACE(a={args.weight}) on {args.dataset}: "
          f"effective-rank {effective_rank(embeddings):.2f}"
          f"/{embeddings.shape[1]}  "
          f"collapsed-dims "
          f"{num_collapsed_dimensions(embeddings, tol=1e-4)}")
    return 0


def _cmd_flow(args) -> int:
    from repro.core import simulate_gradient_flow

    rng = seeded_rng(args.seed)
    x = rng.normal(size=(args.samples, args.dim))
    x_pos = x + 0.1 * rng.normal(size=x.shape)
    result = simulate_gradient_flow(x, x_pos, dim_out=args.dim,
                                    steps=args.steps,
                                    gradient_weight=args.weight,
                                    seed=args.seed)
    print(f"gradient flow (a={args.weight}, {args.steps} steps): "
          f"embedding rank {result.embedding_ranks[0]:.2f} -> "
          f"{result.final_embedding_rank:.2f}, "
          f"weight rank -> {result.final_weight_rank:.2f}, "
          f"loss -> {result.losses[-1]:.4f}")
    return 0


def _cmd_sweep(args) -> int:
    from repro.core import gradgcl
    from repro.datasets import load_tu_dataset
    from repro.eval import evaluate_graph_embeddings
    from repro.methods import train_graph_method
    from repro.utils import print_table

    dataset = load_tu_dataset(args.dataset, scale=args.scale,
                              seed=args.seed)
    rows = []
    for weight in args.weights:
        rng = seeded_rng(args.seed)
        method = _graph_method(args.method)(dataset.num_features, 16, 2,
                                            rng=rng)
        if weight > 0:
            method = gradgcl(method, weight)
        train_graph_method(method, dataset.graphs, epochs=args.epochs,
                           batch_size=32, seed=args.seed)
        acc, std = evaluate_graph_embeddings(method.embed(dataset.graphs),
                                             dataset.labels(),
                                             seed=args.seed)
        rows.append([f"a={weight}", f"{acc:.2f}±{std:.2f}"])
    print_table(f"{args.method} on {args.dataset}: accuracy vs gradient "
                "weight", ["Weight", "Accuracy (%)"], rows)
    return 0


def _fmt(value, digits: int = 4) -> str:
    if isinstance(value, float):
        return f"{value:.{digits}g}"
    return str(value)


def _cmd_report(args) -> int:
    from repro.obs import events_of, validate_journal
    from repro.utils import print_table

    events = validate_journal(args.run_dir)

    for config in events_of(events, "config"):
        rows = [[key, _fmt(value)] for key, value in sorted(config.items())
                if key not in ("event", "ts")]
        print_table("Run config", ["Field", "Value"], rows)

    epochs = events_of(events, "epoch")
    if epochs:
        throughput_key = ("graphs_per_sec" if "graphs_per_sec" in epochs[0]
                          else "nodes_per_sec")
        rows = [[e["epoch"], _fmt(e.get("loss")), _fmt(e.get("loss_f", "-")),
                 _fmt(e.get("loss_g", "-")), _fmt(e.get("grad_norm", "-")),
                 _fmt(e.get("seconds")), _fmt(e.get(throughput_key, "-"))]
                for e in epochs]
        print_table("Epochs",
                    ["Epoch", "Loss", "loss_f", "loss_g", "Grad norm",
                     "Seconds", throughput_key.replace("_per_sec", "/s")],
                    rows)

    spectra = events_of(events, "spectrum")
    if spectra:
        rows = []
        for e in spectra:
            values = e.get("singular_values", [])
            head = "  ".join(_fmt(v, 3) for v in values[:args.spectrum_top])
            if len(values) > args.spectrum_top:
                head += "  ..."
            rows.append([e.get("epoch"), _fmt(e.get("effective_rank")),
                         e.get("collapsed_dims"), head])
        print_table("Collapse spectrum (Figs. 1/5)",
                    ["Epoch", "Eff. rank", "Collapsed", "Top singular "
                     "values"], rows)

    for ev in events_of(events, "eval"):
        rows = [[key, _fmt(value)] for key, value in sorted(ev.items())
                if key not in ("event", "ts")]
        print_table("Evaluation", ["Field", "Value"], rows)

    for tr in events_of(events, "trace"):
        rows = [[path, stats["count"], _fmt(stats["total"]),
                 _fmt(stats["p50"]), _fmt(stats["p95"])]
                for path, stats in sorted(tr.get("spans", {}).items())]
        print_table("Span timings",
                    ["Span", "Count", "Total s", "p50 s", "p95 s"], rows)

    for eng in events_of(events, "engine"):
        rows = [[key, _fmt(value)] for key, value in sorted(eng.items())
                if key not in ("event", "ts")]
        print_table("Tensor engine", ["Counter", "Value"], rows)

    for table in events_of(events, "bench_table"):
        print_table(table.get("title", table.get("name", "bench")),
                    table.get("headers", []), table.get("rows", []))

    for end in events_of(events, "run_end"):
        rows = [[key, _fmt(value)] for key, value in sorted(end.items())
                if key not in ("event", "ts")]
        print_table("Run end", ["Field", "Value"], rows)
    return 0


_COMMANDS = {
    "datasets": _cmd_datasets,
    "train-graph": _cmd_train_graph,
    "train-node": _cmd_train_node,
    "spectrum": _cmd_spectrum,
    "flow": _cmd_flow,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
