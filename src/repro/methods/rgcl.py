"""RGCL (Li et al. 2022): rationale-aware graph contrastive learning.

RGCL discovers each graph's *rationale* — the subgraph that drives its
identity — and augments by preserving the rationale while perturbing the
rest, so the contrastive views never destroy the discriminative structure.

Our implementation computes node saliency from the model itself: the
gradient norm of the InfoNCE loss with respect to each node's features
(a Grad-CAM-style attribution, in the spirit of the paper's
invariant-rationale discovery).  Augmented views drop nodes *only among
the low-saliency environment*, keeping the top-``rationale_ratio`` fraction
intact.  Saliencies are refreshed every ``refresh_every`` steps to bound
the extra backward passes.
"""

from __future__ import annotations

import numpy as np

from ..core import ContrastiveObjective, InfoNCEObjective
from ..graph import Graph, GraphBatch
from ..run.registry import register_method
from ..tensor import Tensor
from .graphcl import GraphCL

__all__ = ["RGCL"]


@register_method("RGCL", level="graph")
class RGCL(GraphCL):
    """GraphCL with rationale-preserving node dropping."""

    name = "RGCL"

    def __init__(self, in_features: int, hidden_dim: int = 32,
                 num_layers: int = 3, *, rng: np.random.Generator,
                 rationale_ratio: float = 0.3, drop_ratio: float = 0.25,
                 refresh_every: int = 4,
                 objective: ContrastiveObjective | None = None,
                 tau: float = 0.5):
        super().__init__(in_features, hidden_dim, num_layers, rng=rng,
                         objective=objective, tau=tau)
        if not 0.0 < rationale_ratio < 1.0:
            raise ValueError(
                f"rationale_ratio must be in (0, 1), got {rationale_ratio}")
        if not 0.0 <= drop_ratio < 1.0:
            raise ValueError(
                f"drop_ratio must be in [0, 1), got {drop_ratio}")
        self.rationale_ratio = rationale_ratio
        self.drop_ratio = drop_ratio
        self.refresh_every = max(1, refresh_every)
        self._step = 0
        self._saliency_cache: dict[int, np.ndarray] = {}
        # RGCL's views depend on live encoder saliency, so they cannot be
        # precomputed by pipeline workers; opt out of the view generator.
        self.view_generator = None

    # ------------------------------------------------------------------
    # Rationale discovery
    # ------------------------------------------------------------------
    def node_saliency(self, batch: GraphBatch) -> np.ndarray:
        """Per-node saliency: grad norm of the InfoNCE loss w.r.t. features.

        Uses the encoder as-is with a self-contrastive pass (each graph vs
        its feature-noised twin) so no labels are needed.
        """
        x = Tensor(batch.x, requires_grad=True)
        _, h = self.encoder(batch, x=x)
        u = self.projector(h)
        noisy = Tensor(batch.x
                       + 0.05 * self._rng.normal(size=batch.x.shape))
        _, h2 = self.encoder(batch, x=noisy)
        v = self.projector(h2)
        if batch.num_graphs < 2:
            raise ValueError("saliency needs at least 2 graphs in a batch")
        InfoNCEObjective(tau=0.5).loss(u, v).backward()
        grads = x.grad if x.grad is not None else np.zeros_like(batch.x)
        self.zero_grad()
        return np.linalg.norm(grads, axis=1)

    def _rationale_masks(self, batch: GraphBatch) -> list[np.ndarray]:
        """Boolean keep-always masks per graph (the rationale nodes)."""
        saliency = self.node_saliency(batch)
        masks = []
        for i, graph in enumerate(batch.graphs):
            lo, hi = batch.node_offsets[i], batch.node_offsets[i + 1]
            scores = saliency[lo:hi]
            keep = max(1, int(round(graph.num_nodes
                                    * self.rationale_ratio)))
            top = np.argsort(-scores)[:keep]
            mask = np.zeros(graph.num_nodes, dtype=bool)
            mask[top] = True
            masks.append(mask)
        return masks

    # ------------------------------------------------------------------
    # Rationale-preserving augmentation
    # ------------------------------------------------------------------
    def _augment_preserving(self, graph: Graph,
                            rationale: np.ndarray) -> Graph:
        environment = np.flatnonzero(~rationale)
        num_drop = int(round(len(environment) * self.drop_ratio))
        if num_drop == 0 or environment.size == 0:
            return graph.copy()
        dropped = self._rng.choice(environment, size=num_drop,
                                   replace=False)
        kept = np.setdiff1d(np.arange(graph.num_nodes), dropped)
        return graph.subgraph(kept)

    def project_views(self, batch: GraphBatch):
        self._step += 1
        if (self._step % self.refresh_every == 1
                or not self._saliency_cache):
            masks = self._rationale_masks(batch)
            self._saliency_cache = {id(g): m
                                    for g, m in zip(batch.graphs, masks)}
            self._last_masks = masks
        else:
            # Graphs differ across batches; recompute when unseen.
            masks = []
            refresh = False
            for g in batch.graphs:
                mask = self._saliency_cache.get(id(g))
                if mask is None:
                    refresh = True
                    break
                masks.append(mask)
            if refresh:
                masks = self._rationale_masks(batch)
                self._saliency_cache = {id(g): m
                                        for g, m in zip(batch.graphs, masks)}
        view1 = GraphBatch([self._augment_preserving(g, m)
                            for g, m in zip(batch.graphs, masks)])
        view2 = GraphBatch([self._augment_preserving(g, m)
                            for g, m in zip(batch.graphs, masks)])
        _, h1 = self.encoder(view1)
        _, h2 = self.encoder(view2)
        return self.projector(h1), self.projector(h2)

    # ------------------------------------------------------------------
    # Checkpoint hooks
    # ------------------------------------------------------------------
    def training_state(self) -> dict:
        """The refresh-schedule step counter.

        The ``id()``-keyed saliency cache cannot survive a process
        boundary (fresh objects get fresh ids), so a resumed RGCL run
        recomputes saliency on its first batch — deterministic, but not
        bit-identical to the uninterrupted run (see docs/architecture.md).
        """
        return {"step": int(self._step)}

    def load_training_state(self, state: dict) -> None:
        self._step = int(state["step"])
