"""GRACE (Zhu et al. 2020) and GCA (Zhu et al. 2021) node-level contrast.

GRACE builds two views of one large graph (edge dropping + feature masking),
encodes both with a shared GCN, and applies node-wise InfoNCE.  GCA is GRACE
with *adaptive* (centrality-aware) augmentation probabilities.

Node-level gradient features are computed on a sampled anchor subset per
step, which bounds the N x N softmax and matches the paper's observation
that node-level gradients carry less neighbourhood information.
"""

from __future__ import annotations

import numpy as np

from ..augment import (
    AdaptiveEdgeDrop,
    AdaptiveFeatureMask,
    Augmentation,
    Compose,
    EdgePerturb,
    FeatureColumnDrop,
)
from ..core import (
    ContrastiveObjective,
    GradGCLObjective,
    InfoNCEObjective,
    aggregate_gradient_features,
)
from ..losses import info_nce
from ..gnn import GCNEncoder, ProjectionHead
from ..graph import Graph, adjacency_matrix, gcn_normalize
from ..run.registry import register_method
from ..tensor import Tensor
from .base import NodeContrastiveMethod

__all__ = ["GRACE", "GCA"]


@register_method("GRACE", level="node")
class GRACE(NodeContrastiveMethod):
    """GRACE with a pluggable objective (GradGCL-ready)."""

    name = "GRACE"

    def __init__(self, in_features: int, hidden_dim: int = 64,
                 out_dim: int = 32, *, rng: np.random.Generator,
                 objective: ContrastiveObjective | None = None,
                 tau: float = 0.5, max_anchors: int = 256,
                 view1: Augmentation | None = None,
                 view2: Augmentation | None = None,
                 aggregate_gradients: bool = False):
        super().__init__()
        self.encoder = GCNEncoder(in_features, hidden_dim, out_dim, rng=rng)
        self.projector = ProjectionHead(out_dim, rng=rng)
        self.objective = (objective if objective is not None
                          else InfoNCEObjective(tau=tau, sim="cos"))
        self.max_anchors = max_anchors
        self.view1 = view1 if view1 is not None else self._default_view()
        self.view2 = view2 if view2 is not None else self._default_view()
        # Paper future-work extension: smooth the gradient channel with a
        # one-hop neighbourhood aggregation before the gradient InfoNCE.
        self.aggregate_gradients = aggregate_gradients
        self._rng = rng

    @staticmethod
    def _default_view() -> Augmentation:
        return Compose([EdgePerturb(0.3, add_edges=False),
                        FeatureColumnDrop(0.2)])

    def _encode_view(self, graph: Graph, augmentation: Augmentation) -> Tensor:
        view = augmentation(graph, self._rng)
        adj = gcn_normalize(adjacency_matrix(view))
        return self.encoder(Tensor(view.x), adj)

    def project_views(self, graph: Graph) -> tuple[Tensor, Tensor]:
        """Projected per-node embeddings of two views, anchor-subsampled."""
        h1 = self._encode_view(graph, self.view1)
        h2 = self._encode_view(graph, self.view2)
        u, v = self.projector(h1), self.projector(h2)
        n = graph.num_nodes
        if n > self.max_anchors:
            anchors = self._rng.choice(n, size=self.max_anchors,
                                       replace=False)
            anchors.sort()
            u, v = u[anchors], v[anchors]
        return u, v

    def training_loss(self, graph: Graph) -> Tensor:
        objective = self.objective
        if (self.aggregate_gradients
                and isinstance(objective, GradGCLObjective)):
            return self._aggregated_gradient_loss(graph, objective)
        u, v = self.project_views(graph)
        return objective.loss(u, v)

    def _aggregated_gradient_loss(self, graph: Graph,
                                  objective: GradGCLObjective) -> Tensor:
        """Eq. 18 with neighbourhood-aggregated gradient features.

        The gradient channel is computed over the full node set (so the
        aggregation operator matches the graph), aggregated one hop, then
        anchor-subsampled for the InfoNCE terms.
        """
        h1 = self._encode_view(graph, self.view1)
        h2 = self._encode_view(graph, self.view2)
        u, v = self.projector(h1), self.projector(h2)
        anchors = None
        if graph.num_nodes > self.max_anchors:
            anchors = self._rng.choice(graph.num_nodes,
                                       size=self.max_anchors,
                                       replace=False)
            anchors.sort()

        def subsample(t: Tensor) -> Tensor:
            return t if anchors is None else t[anchors]

        def base_loss():
            return objective.base.loss(subsample(u), subsample(v))

        def gradient_loss():
            g_u, g_v = objective.base.gradient_features(u, v)
            g_u = aggregate_gradient_features(g_u, graph)
            g_v = aggregate_gradient_features(g_v, graph)
            if objective.detach_features:
                g_u, g_v = g_u.detach(), g_v.detach()
            return info_nce(subsample(g_u), subsample(g_v),
                            tau=objective.grad_tau, sim=objective.grad_sim)

        return self.combine_with_gradients(base_loss, gradient_loss)

    def node_embeddings(self, graph: Graph) -> Tensor:
        adj = gcn_normalize(adjacency_matrix(graph))
        return self.encoder(Tensor(graph.x), adj)


@register_method("GCA", level="node")
class GCA(GRACE):
    """GRACE with degree-centrality-adaptive augmentation."""

    name = "GCA"

    def __init__(self, in_features: int, hidden_dim: int = 64,
                 out_dim: int = 32, *, rng: np.random.Generator, **kwargs):
        kwargs.setdefault("view1", Compose([AdaptiveEdgeDrop(0.3),
                                            AdaptiveFeatureMask(0.2)]))
        kwargs.setdefault("view2", Compose([AdaptiveEdgeDrop(0.4),
                                            AdaptiveFeatureMask(0.3)]))
        super().__init__(in_features, hidden_dim, out_dim, rng=rng, **kwargs)
