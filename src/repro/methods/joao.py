"""JOAO (You et al. 2021): joint augmentation optimization over GraphCL.

JOAO keeps GraphCL's architecture but learns the sampling distribution over
augmentations with a min-max rule: augmentations that currently yield a
*higher* contrastive loss (harder views) are sampled more often.  We update
the distribution from per-augmentation running losses at each epoch end, a
faithful lightweight version of the original alternating optimization.
"""

from __future__ import annotations

import numpy as np

from ..graph import GraphBatch
from ..run.registry import register_method
from ..tensor import Tensor
from .graphcl import GraphCL

__all__ = ["JOAO"]


@register_method("JOAO", level="graph")
class JOAO(GraphCL):
    """GraphCL + learned augmentation distribution."""

    name = "JOAO"

    def __init__(self, *args, gamma: float = 0.1, **kwargs):
        super().__init__(*args, **kwargs)
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma}")
        self.gamma = gamma
        pool_size = len(self.augmentation.augmentations)
        self._loss_sums = np.zeros(pool_size)
        self._loss_counts = np.zeros(pool_size)

    def training_loss(self, batch: GraphBatch) -> Tensor:
        loss = super().training_loss(batch)
        # Attribute the batch loss to the augmentation chosen for view 1.
        choice = self.augmentation.last_choice
        if choice is not None:
            self._loss_sums[choice] += loss.item()
            self._loss_counts[choice] += 1
        return loss

    def on_epoch_end(self, epoch: int, epoch_loss: float) -> None:
        """Min-max update: re-weight towards high-loss augmentations."""
        counts = np.maximum(self._loss_counts, 1.0)
        mean_losses = self._loss_sums / counts
        # Softmax over mean losses with inverse-temperature 1/gamma; unseen
        # augmentations inherit the overall mean so they keep being explored.
        unseen = self._loss_counts == 0
        if unseen.any():
            mean_losses[unseen] = mean_losses[~unseen].mean() if (~unseen).any() else 0.0
        logits = mean_losses / self.gamma
        logits -= logits.max()
        probs = np.exp(logits)
        probs /= probs.sum()
        self.augmentation.set_probabilities(probs)
        if self.augmentation2 is not self.augmentation:
            self.augmentation2.set_probabilities(probs)
        self._loss_sums[:] = 0.0
        self._loss_counts[:] = 0.0

    @property
    def augmentation_probabilities(self) -> np.ndarray:
        return self.augmentation.probabilities.copy()

    # ------------------------------------------------------------------
    # Checkpoint hooks
    # ------------------------------------------------------------------
    def training_state(self) -> dict:
        """Learned distribution + running per-augmentation losses."""
        return {"probabilities": [float(p) for p in
                                  self.augmentation.probabilities],
                "loss_sums": [float(s) for s in self._loss_sums],
                "loss_counts": [float(c) for c in self._loss_counts]}

    def load_training_state(self, state: dict) -> None:
        probs = np.asarray(state["probabilities"], dtype=float)
        self.augmentation.set_probabilities(probs)
        if self.augmentation2 is not self.augmentation:
            self.augmentation2.set_probabilities(probs)
        self._loss_sums[:] = state["loss_sums"]
        self._loss_counts[:] = state["loss_counts"]
