"""BGRL (Thakoor et al. 2021) and SGCL (Sun et al. 2023) bootstrap methods.

BGRL has no negatives: an online encoder + predictor chases an EMA target
encoder across two augmented views (both directions).  SGCL is the
"rethinking/simplifying" variant: same bootstrap structure with the EMA
target replaced by a stop-gradient copy of the online encoder.

GradGCL attachment: the paired channel is (prediction, target) per node;
gradient features come from
:func:`repro.core.bootstrap_gradient_features`, and the two directions'
gradient sets are contrasted with InfoNCE.
"""

from __future__ import annotations

import numpy as np

from ..augment import Augmentation, Compose, EdgePerturb, FeatureColumnDrop
from ..core import ContrastiveObjective, GradGCLObjective
from ..core import bootstrap_gradient_features
from ..gnn import GCNEncoder, ProjectionHead
from ..graph import Graph, adjacency_matrix, gcn_normalize
from ..losses import bootstrap_cosine_loss, info_nce
from ..run.registry import register_method
from ..tensor import Tensor, no_grad
from .base import NodeContrastiveMethod

__all__ = ["BGRL", "SGCL", "BootstrapObjective"]


class BootstrapObjective(ContrastiveObjective):
    """Cosine bootstrap loss with Eq. 6-style gradient features."""

    def loss(self, prediction: Tensor, target: Tensor) -> Tensor:
        return bootstrap_cosine_loss(prediction, target)

    def gradient_features(self, prediction: Tensor,
                          target: Tensor) -> tuple[Tensor, Tensor]:
        # One gradient set per (prediction, target) direction is produced by
        # the method itself; here we pair the prediction gradient with the
        # (constant) normalized target as its reference channel.
        grad = bootstrap_gradient_features(prediction, target)
        return grad, grad


@register_method("BGRL", level="node")
class BGRL(NodeContrastiveMethod):
    """BGRL with EMA target network."""

    name = "BGRL"

    def __init__(self, in_features: int, hidden_dim: int = 64,
                 out_dim: int = 32, *, rng: np.random.Generator,
                 momentum: float = 0.99, max_anchors: int = 256,
                 objective: ContrastiveObjective | None = None,
                 view1: Augmentation | None = None,
                 view2: Augmentation | None = None):
        super().__init__()
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.encoder = GCNEncoder(in_features, hidden_dim, out_dim, rng=rng)
        self.predictor = ProjectionHead(out_dim, rng=rng)
        self.target_encoder = self.encoder.clone()
        self.momentum = momentum
        self.max_anchors = max_anchors
        self.objective = (objective if objective is not None
                          else BootstrapObjective())
        self.view1 = view1 if view1 is not None else self._default_view()
        self.view2 = view2 if view2 is not None else self._default_view()
        self._rng = rng

    @staticmethod
    def _default_view() -> Augmentation:
        return Compose([EdgePerturb(0.3, add_edges=False),
                        FeatureColumnDrop(0.2)])

    def _online(self, graph: Graph, augmentation: Augmentation) -> Tensor:
        view = augmentation(graph, self._rng)
        adj = gcn_normalize(adjacency_matrix(view))
        return self.predictor(self.encoder(Tensor(view.x), adj))

    def _target(self, graph: Graph, augmentation: Augmentation) -> Tensor:
        view = augmentation(graph, self._rng)
        adj = gcn_normalize(adjacency_matrix(view))
        with no_grad():
            out = self.target_encoder(Tensor(view.x), adj)
        return Tensor(out.data)

    def _anchor_subset(self, n: int) -> np.ndarray | None:
        if n <= self.max_anchors:
            return None
        anchors = self._rng.choice(n, size=self.max_anchors, replace=False)
        anchors.sort()
        return anchors

    def training_loss(self, graph: Graph) -> Tensor:
        p1 = self._online(graph, self.view1)
        p2 = self._online(graph, self.view2)
        z1 = self._target(graph, self.view1)
        z2 = self._target(graph, self.view2)
        anchors = self._anchor_subset(graph.num_nodes)
        if anchors is not None:
            p1, p2, z1, z2 = p1[anchors], p2[anchors], z1[anchors], z2[anchors]

        def base_loss():
            return (bootstrap_cosine_loss(p1, z2)
                    + bootstrap_cosine_loss(p2, z1))

        def gradient_loss():
            objective = self.objective
            assert isinstance(objective, GradGCLObjective)
            g1 = bootstrap_gradient_features(p1, z2)
            g2 = bootstrap_gradient_features(p2, z1)
            if objective.detach_features:
                g1, g2 = g1.detach(), g2.detach()
            return info_nce(g1, g2, tau=objective.grad_tau,
                            sim=objective.grad_sim)

        return self.combine_with_gradients(base_loss, gradient_loss)

    def on_epoch_end(self, epoch: int, epoch_loss: float) -> None:
        """EMA update of the target network."""
        online = self.encoder.state_dict()
        target = self.target_encoder.state_dict()
        updated = {name: self.momentum * target[name]
                   + (1.0 - self.momentum) * online[name]
                   for name in online}
        self.target_encoder.load_state_dict(updated)

    def node_embeddings(self, graph: Graph) -> Tensor:
        adj = gcn_normalize(adjacency_matrix(graph))
        return self.encoder(Tensor(graph.x), adj)


@register_method("SGCL", level="node")
class SGCL(BGRL):
    """Simplified bootstrapped GCL: stop-gradient target, no EMA."""

    name = "SGCL"

    def __init__(self, *args, **kwargs):
        kwargs.setdefault("momentum", 0.0)
        super().__init__(*args, **kwargs)

    def _target(self, graph: Graph, augmentation: Augmentation) -> Tensor:
        view = augmentation(graph, self._rng)
        adj = gcn_normalize(adjacency_matrix(view))
        with no_grad():
            out = self.encoder(Tensor(view.x), adj)  # stop-grad online copy
        return Tensor(out.data)

    def on_epoch_end(self, epoch: int, epoch_loss: float) -> None:
        """No target network to maintain."""
