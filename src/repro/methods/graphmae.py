"""GraphMAE (Hou et al. 2022): generative masked-autoencoder baseline.

GraphMAE masks node features with a learnable token, encodes with a GIN,
re-masks the encoded embeddings, and decodes back to the input features with
the scaled cosine error (SCE).  It appears in the paper's Fig. 11 ablation:
SCE is a reconstruction loss with no positive/negative structure, so adding
GradGCL's gradient term *degrades* it — a negative result we reproduce.

GradGCL attachment (for the ablation only): gradient features of the SCE
loss under two independent mask samplings are contrasted with InfoNCE.
"""

from __future__ import annotations

import numpy as np

from ..core import ContrastiveObjective, GradGCLObjective
from ..gnn import GINEncoder
from ..graph import GraphBatch
from ..losses import info_nce, sce_loss
from ..nn import MLP, Parameter
from ..run.registry import register_method
from ..tensor import Tensor, dot_rows, l2_normalize
from .base import GraphContrastiveMethod

__all__ = ["GraphMAE"]


class _SCEObjective(ContrastiveObjective):
    """Marker objective so GradGCL wrapping works on GraphMAE."""

    def loss(self, u: Tensor, v: Tensor) -> Tensor:
        return sce_loss(u, v)

    def gradient_features(self, u: Tensor, v: Tensor) -> tuple[Tensor, Tensor]:
        return _sce_gradient_features(u, v), _sce_gradient_features(v, u)


def _sce_gradient_features(reconstruction: Tensor, target: Tensor,
                           gamma: float = 2.0) -> Tensor:
    """Closed-form d(SCE)/d(reconstruction rows), differentiable."""
    r_hat = l2_normalize(reconstruction)
    t_hat = l2_normalize(target.detach())
    cos = dot_rows(r_hat, t_hat).reshape(-1, 1)
    norms = ((reconstruction * reconstruction)
             .sum(axis=1, keepdims=True) + 1e-12).sqrt()
    # d(1-cos)^g/dr = -g (1-cos)^(g-1) * (t_hat - cos r_hat) / |r|
    scale = (1.0 - cos).clip(low=0.0) ** (gamma - 1.0) * gamma
    return (r_hat * cos - t_hat) * scale / norms


@register_method("GraphMAE", level="graph")
class GraphMAE(GraphContrastiveMethod):
    """Masked graph autoencoder with SCE reconstruction."""

    name = "GraphMAE"

    def __init__(self, in_features: int, hidden_dim: int = 32,
                 num_layers: int = 2, *, rng: np.random.Generator,
                 mask_ratio: float = 0.3, gamma: float = 2.0,
                 objective: ContrastiveObjective | None = None):
        super().__init__()
        if not 0.0 < mask_ratio < 1.0:
            raise ValueError(f"mask_ratio must be in (0, 1), got {mask_ratio}")
        self.encoder = GINEncoder(in_features, hidden_dim, num_layers,
                                  rng=rng)
        self.mask_token = Parameter(np.zeros(in_features))
        self.remask_token = Parameter(np.zeros(self.encoder.out_features))
        self.decoder = MLP([self.encoder.out_features, hidden_dim,
                            in_features], rng=rng)
        self.mask_ratio = mask_ratio
        self.gamma = gamma
        self.objective = objective if objective is not None else _SCEObjective()
        self._rng = rng

    def _masked_reconstruction(self, batch: GraphBatch):
        """One mask sampling -> (reconstruction, target) on masked rows."""
        n = batch.num_nodes
        num_masked = max(1, int(round(n * self.mask_ratio)))
        masked = self._rng.choice(n, size=num_masked, replace=False)
        masked.sort()
        mask = np.zeros((n, 1))
        mask[masked] = 1.0
        mask_t = Tensor(mask)
        x = Tensor(batch.x) * (1.0 - mask_t) + self.mask_token * mask_t
        node_h, _ = self.encoder(batch, x=x)
        # Re-mask the encoded embedding before decoding (GraphMAE trick).
        node_h = node_h * (1.0 - mask_t) + self.remask_token * mask_t
        reconstruction = self.decoder(node_h)[masked]
        target = Tensor(batch.x[masked])
        return reconstruction, target

    def training_loss(self, batch: GraphBatch) -> Tensor:
        recon, target = self._masked_reconstruction(batch)

        def base_loss():
            return sce_loss(recon, target, gamma=self.gamma)

        def gradient_loss():
            objective = self.objective
            assert isinstance(objective, GradGCLObjective)
            # A second independent masking provides the "other view" of the
            # gradient channel.  SCE gradients are pure residual directions,
            # so this term carries no class structure — Fig. 11's negative
            # result.
            recon2, target2 = self._masked_reconstruction(batch)
            g1 = _sce_gradient_features(recon, target, self.gamma)
            g2 = _sce_gradient_features(recon2, target2, self.gamma)
            k = min(len(g1), len(g2))
            if objective.detach_features:
                g1, g2 = g1.detach(), g2.detach()
            return info_nce(g1[:k], g2[:k], tau=objective.grad_tau,
                            sim=objective.grad_sim)

        return self.combine_with_gradients(base_loss, gradient_loss)

    def graph_embeddings(self, batch: GraphBatch) -> Tensor:
        _, h = self.encoder(batch)
        return h
