"""MVGRL (Hassani & Khasahmadi 2020): multi-view contrast with diffusion.

The two structural views are the plain adjacency and a personalized-PageRank
diffusion of it.  Node embeddings of one view are contrasted against graph
embeddings of the *other* view with the JSD estimator (both directions).

GradGCL attachment: the natural paired views are the two graph embeddings
(adjacency view vs diffusion view), so the gradient loss contrasts the JSD
gradient features of that pair (paper plugs GradGCL into MVGRL for both
graph- and node-level tasks).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..core import (
    ContrastiveObjective,
    GradGCLObjective,
    JSDObjective,
)
from ..gnn import GCNConv, ProjectionHead, readout
from ..graph import Graph, GraphBatch, adjacency_matrix, gcn_normalize, ppr_diffusion
from ..losses import info_nce, jsd_bipartite_loss
from ..nn import ModuleList, PReLU
from ..pipeline import active_structure_cache
from ..run.registry import register_method
from ..tensor import Tensor, concat
from ..utils.seed import seeded_rng
from .base import GraphContrastiveMethod, NodeContrastiveMethod

__all__ = ["MVGRL", "MVGRLNode"]


def _batch_diffusion(batch: GraphBatch, alpha: float) -> sp.csr_matrix:
    """Block-diagonal PPR diffusion over a batch of graphs.

    The dense per-graph PPR solve dominates MVGRL's epoch time; with an
    active :class:`repro.pipeline.StructureCache` each graph's diffusion is
    solved once and reused across batches and epochs.
    """
    cache = active_structure_cache()
    if cache is not None:
        blocks = [cache.ppr(g, alpha=alpha) for g in batch.graphs]
    else:
        blocks = [sp.csr_matrix(ppr_diffusion(g, alpha=alpha))
                  for g in batch.graphs]
    return sp.block_diag(blocks, format="csr")


class _GCNStack(ModuleList):
    """Small GCN tower with PReLU activations shared by both views."""

    def __init__(self, dims: list[int], rng: np.random.Generator):
        super().__init__([GCNConv(dims[i], dims[i + 1], rng=rng)
                          for i in range(len(dims) - 1)])
        self.acts = ModuleList([PReLU() for _ in range(len(dims) - 1)])

    def encode(self, x: Tensor, adj: sp.spmatrix) -> Tensor:
        h = x
        for layer, act in zip(self.items, self.acts):
            h = act(layer(h, adj))
        return h


@register_method("MVGRL", level="graph")
class MVGRL(GraphContrastiveMethod):
    """Graph-level MVGRL with a GradGCL-compatible objective."""

    name = "MVGRL"

    def __init__(self, in_features: int, hidden_dim: int = 32,
                 num_layers: int = 2, *, rng: np.random.Generator,
                 alpha: float = 0.2,
                 objective: ContrastiveObjective | None = None):
        super().__init__()
        dims = [in_features] + [hidden_dim] * num_layers
        self.adj_encoder = _GCNStack(dims, rng)
        self.diff_encoder = _GCNStack(dims, rng)
        self.local_projector = ProjectionHead(hidden_dim, rng=rng)
        self.global_projector = ProjectionHead(hidden_dim, rng=rng)
        self.objective = objective if objective is not None else JSDObjective()
        self.alpha = alpha

    def _encode_views(self, batch: GraphBatch):
        x = Tensor(batch.x)
        adj = batch.adjacency("gcn")
        diff = _batch_diffusion(batch, self.alpha)
        node_adj = self.adj_encoder.encode(x, adj)
        node_diff = self.diff_encoder.encode(x, diff)
        graph_adj = readout(node_adj, batch.node_to_graph, batch.num_graphs,
                            "mean")
        graph_diff = readout(node_diff, batch.node_to_graph,
                             batch.num_graphs, "mean")
        return node_adj, node_diff, graph_adj, graph_diff

    def training_loss(self, batch: GraphBatch) -> Tensor:
        node_adj, node_diff, graph_adj, graph_diff = self._encode_views(batch)
        local_a = self.local_projector(node_adj)
        local_d = self.local_projector(node_diff)
        global_a = self.global_projector(graph_adj)
        global_d = self.global_projector(graph_diff)
        mask = (batch.node_to_graph[:, None]
                == np.arange(batch.num_graphs)[None, :])

        def base_loss():
            # Cross-view local-global contrast, both directions.
            return (jsd_bipartite_loss(local_a, global_d, mask)
                    + jsd_bipartite_loss(local_d, global_a, mask))

        def gradient_loss():
            objective = self.objective
            assert isinstance(objective, GradGCLObjective)
            g_a, g_d = objective.base.gradient_features(global_a, global_d)
            if objective.detach_features:
                g_a, g_d = g_a.detach(), g_d.detach()
            return info_nce(g_a, g_d, tau=objective.grad_tau,
                            sim=objective.grad_sim)

        return self.combine_with_gradients(base_loss, gradient_loss)

    def graph_embeddings(self, batch: GraphBatch) -> Tensor:
        _, __, graph_adj, graph_diff = self._encode_views(batch)
        return concat([graph_adj, graph_diff], axis=1)


@register_method("MVGRL", level="node")
class MVGRLNode(NodeContrastiveMethod):
    """Node-level MVGRL (DGI-style) for the node-classification tables."""

    name = "MVGRL"

    def __init__(self, in_features: int, hidden_dim: int = 64, *,
                 rng: np.random.Generator, alpha: float = 0.2,
                 objective: ContrastiveObjective | None = None):
        super().__init__()
        dims = [in_features, hidden_dim]
        self.adj_encoder = _GCNStack(dims, rng)
        self.diff_encoder = _GCNStack(dims, rng)
        self.objective = objective if objective is not None else JSDObjective()
        self.alpha = alpha
        self._cache: dict[int, tuple] = {}

    def _operators(self, graph: Graph):
        cache = active_structure_cache()
        if cache is not None:
            return (cache.adjacency(graph, "gcn"),
                    cache.ppr(graph, alpha=self.alpha))
        key = id(graph)
        if key not in self._cache:
            adj = gcn_normalize(adjacency_matrix(graph))
            diff = sp.csr_matrix(ppr_diffusion(graph, alpha=self.alpha))
            self._cache = {key: (adj, diff)}  # cache only the current graph
        return self._cache[key]

    def _encode(self, graph: Graph):
        adj, diff = self._operators(graph)
        x = Tensor(graph.x)
        node_adj = self.adj_encoder.encode(x, adj)
        node_diff = self.diff_encoder.encode(x, diff)
        return node_adj, node_diff

    def training_loss(self, graph: Graph) -> Tensor:
        node_adj, node_diff = self._encode(graph)
        summary_adj = node_adj.mean(axis=0, keepdims=True).sigmoid()
        summary_diff = node_diff.mean(axis=0, keepdims=True).sigmoid()
        n = graph.num_nodes
        mask = np.ones((n, 1), dtype=bool)
        # Corruption: shuffled features as negatives (DGI-style), realised by
        # contrasting true nodes against the summary of the other view while
        # shuffled nodes provide the negative scores.
        perm = seeded_rng(n).permutation(n)
        corrupt_adj = node_adj[perm]
        corrupt_diff = node_diff[perm]

        def one_direction(pos_nodes, neg_nodes, summary):
            local = concat([pos_nodes, neg_nodes], axis=0)
            full_mask = np.concatenate([mask, ~mask], axis=0)
            return jsd_bipartite_loss(local, summary, full_mask)

        def base_loss():
            return (one_direction(node_adj, corrupt_adj, summary_diff)
                    + one_direction(node_diff, corrupt_diff, summary_adj))

        def gradient_loss():
            objective = self.objective
            assert isinstance(objective, GradGCLObjective)
            anchors = _subsample_rows(node_adj, node_diff, limit=256)
            g_a, g_d = JSDObjective().gradient_features(*anchors)
            if objective.detach_features:
                g_a, g_d = g_a.detach(), g_d.detach()
            return info_nce(g_a, g_d, tau=objective.grad_tau,
                            sim=objective.grad_sim)

        return self.combine_with_gradients(base_loss, gradient_loss)

    def node_embeddings(self, graph: Graph) -> Tensor:
        node_adj, node_diff = self._encode(graph)
        return concat([node_adj, node_diff], axis=1)


def _subsample_rows(a: Tensor, b: Tensor, limit: int) -> tuple[Tensor, Tensor]:
    """Deterministically subsample matching rows of two tensors."""
    n = len(a)
    if n <= limit:
        return a, b
    idx = np.linspace(0, n - 1, limit).astype(np.int64)
    return a[idx], b[idx]
