"""Pretraining baselines of Table VI: AttrMasking and ContextPred.

Hu et al. (2019)'s node-level pretraining strategies, which the paper
compares against in the transfer-learning table:

* **AttrMasking** — mask a fraction of atom-type features and train the
  encoder (plus a linear head) to classify the masked atoms' types;
* **ContextPred** — train the encoder to tell true neighbour pairs from
  random node pairs by the inner product of their embeddings.

Both produce a pretrained GIN encoder compatible with
:func:`repro.methods.transfer.finetune_roc_auc`.
"""

from __future__ import annotations

import numpy as np

from ..gnn import GINEncoder
from ..graph import GraphBatch
from ..nn import Linear
from ..run.registry import register_method
from ..tensor import Tensor, log_softmax
from .base import GraphContrastiveMethod

__all__ = ["AttrMasking", "ContextPred"]


class _NullObjective:
    """Placeholder so the shared trainer's part-logging finds nothing."""

    last_parts: dict[str, float] = {}


@register_method("AttrMasking", level="graph")
class AttrMasking(GraphContrastiveMethod):
    """Masked atom-type prediction pretraining (Hu et al. 2019).

    Assumes one-hot node features (as the molecule datasets provide); the
    class of a node is its argmax feature.
    """

    name = "AttrMasking"

    def __init__(self, in_features: int, hidden_dim: int = 32,
                 num_layers: int = 2, *, rng: np.random.Generator,
                 mask_ratio: float = 0.25):
        super().__init__()
        if not 0.0 < mask_ratio < 1.0:
            raise ValueError(f"mask_ratio must be in (0, 1), got {mask_ratio}")
        self.encoder = GINEncoder(in_features, hidden_dim, num_layers,
                                  rng=rng)
        self.head = Linear(self.encoder.out_features, in_features, rng=rng)
        self.mask_ratio = mask_ratio
        self.objective = _NullObjective()
        self._rng = rng

    def training_loss(self, batch: GraphBatch) -> Tensor:
        n = batch.num_nodes
        num_masked = max(1, int(round(n * self.mask_ratio)))
        masked = self._rng.choice(n, size=num_masked, replace=False)
        masked.sort()
        targets = batch.x[masked].argmax(axis=1)
        mask = np.zeros((n, 1))
        mask[masked] = 1.0
        x = Tensor(batch.x) * (1.0 - Tensor(mask))
        node_h, _ = self.encoder(batch, x=x)
        logits = self.head(node_h[masked])
        log_probs = log_softmax(logits, axis=1)
        return -log_probs[np.arange(num_masked), targets].mean()

    def graph_embeddings(self, batch: GraphBatch) -> Tensor:
        _, h = self.encoder(batch)
        return h


@register_method("ContextPred", level="graph")
class ContextPred(GraphContrastiveMethod):
    """Neighbour-vs-random pair discrimination pretraining."""

    name = "ContextPred"

    def __init__(self, in_features: int, hidden_dim: int = 32,
                 num_layers: int = 2, *, rng: np.random.Generator,
                 pairs_per_batch: int = 256):
        super().__init__()
        self.encoder = GINEncoder(in_features, hidden_dim, num_layers,
                                  rng=rng)
        self.pairs_per_batch = pairs_per_batch
        self.objective = _NullObjective()
        self._rng = rng

    def training_loss(self, batch: GraphBatch) -> Tensor:
        node_h, _ = self.encoder(batch)
        edges = batch.edges
        if len(edges) == 0:
            raise ValueError("ContextPred needs at least one edge")
        k = min(self.pairs_per_batch, len(edges))
        chosen = self._rng.choice(len(edges), size=k, replace=False)
        pos_u = edges[chosen, 0]
        pos_v = edges[chosen, 1]
        neg_u = self._rng.integers(0, batch.num_nodes, size=k)
        neg_v = self._rng.integers(0, batch.num_nodes, size=k)
        pos_scores = (node_h[pos_u] * node_h[pos_v]).sum(axis=1)
        neg_scores = (node_h[neg_u] * node_h[neg_v]).sum(axis=1)
        # Binary NCE: -log sigma(pos) - log sigma(-neg), in softplus form.
        return ((-pos_scores).softplus().mean()
                + neg_scores.softplus().mean())

    def graph_embeddings(self, batch: GraphBatch) -> Tensor:
        _, h = self.encoder(batch)
        return h
