"""InfoGraph (Sun et al. 2020): local-global mutual information maximization.

InfoGraph contrasts node (local) embeddings against graph (global)
embeddings with the JSD estimator: a node is positive with its own graph and
negative with every other graph in the batch.

GradGCL attachment: the two "information channels" here are the local and
global embeddings, so the gradient loss contrasts the JSD loss's gradients
with respect to each — computed in closed form by
:func:`repro.core.bipartite_jsd_gradient_features` — using the same
node-to-graph positive structure (a design decision documented in
DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from ..core import ContrastiveObjective, JSDObjective, GradGCLObjective
from ..core import bipartite_jsd_gradient_features
from ..gnn import GINEncoder, ProjectionHead
from ..graph import GraphBatch
from ..losses import jsd_bipartite_loss
from ..run.registry import register_method
from ..tensor import Tensor, l2_normalize
from .base import GraphContrastiveMethod

__all__ = ["InfoGraph"]


@register_method("InfoGraph", level="graph")
class InfoGraph(GraphContrastiveMethod):
    """InfoGraph with separate local/global projection heads."""

    name = "InfoGraph"

    def __init__(self, in_features: int, hidden_dim: int = 32,
                 num_layers: int = 3, *, rng: np.random.Generator,
                 objective: ContrastiveObjective | None = None,
                 max_nodes_per_step: int = 512):
        super().__init__()
        self.encoder = GINEncoder(in_features, hidden_dim, num_layers,
                                  rng=rng)
        dim = self.encoder.out_features
        self.local_projector = ProjectionHead(dim, rng=rng)
        self.global_projector = ProjectionHead(dim, rng=rng)
        self.objective = objective if objective is not None else JSDObjective()
        self.max_nodes_per_step = max_nodes_per_step
        self._rng = rng

    def _local_global(self, batch: GraphBatch):
        node_h, graph_h = self.encoder(batch)
        local = self.local_projector(node_h)
        global_ = self.global_projector(graph_h)
        membership = batch.node_to_graph
        # Subsample nodes on big batches to bound the N x M score matrix.
        if len(membership) > self.max_nodes_per_step:
            keep = self._rng.choice(len(membership),
                                    size=self.max_nodes_per_step,
                                    replace=False)
            keep.sort()
            local = local[keep]
            membership = membership[keep]
        mask = membership[:, None] == np.arange(batch.num_graphs)[None, :]
        return local, global_, mask

    def training_loss(self, batch: GraphBatch) -> Tensor:
        local, global_, mask = self._local_global(batch)

        def base_loss():
            return jsd_bipartite_loss(local, global_, mask)

        def gradient_loss():
            objective = self.objective
            assert isinstance(objective, GradGCLObjective)
            g_local, g_global = bipartite_jsd_gradient_features(
                local, global_, mask)
            if objective.detach_features:
                g_local, g_global = g_local.detach(), g_global.detach()
            # Same positive structure, on the gradient channel.
            return jsd_bipartite_loss(l2_normalize(g_local),
                                      l2_normalize(g_global), mask)

        return self.combine_with_gradients(base_loss, gradient_loss)

    def graph_embeddings(self, batch: GraphBatch) -> Tensor:
        _, h = self.encoder(batch)
        return h
