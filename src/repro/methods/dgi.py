"""DGI (Velickovic et al. 2019): Deep Graph Infomax.

The ancestor of the node-level contrastive family and a Table V baseline:
maximize MI between node embeddings and a global summary vector, using
feature-shuffled corruptions as negatives, with the JSD objective.

GradGCL attachment mirrors MVGRLNode's: gradient features of the JSD score
between nodes and the summary, contrasted with InfoNCE against a second
corruption sample.
"""

from __future__ import annotations

import numpy as np

from ..core import ContrastiveObjective, GradGCLObjective, JSDObjective
from ..gnn import GCNEncoder
from ..graph import Graph, adjacency_matrix, gcn_normalize
from ..losses import info_nce, jsd_bipartite_loss
from ..run.registry import register_method
from ..tensor import Tensor, concat
from .base import NodeContrastiveMethod

__all__ = ["DGI"]


@register_method("DGI", level="node")
class DGI(NodeContrastiveMethod):
    """Deep Graph Infomax with a GradGCL-compatible objective."""

    name = "DGI"

    def __init__(self, in_features: int, hidden_dim: int = 64,
                 out_dim: int = 32, *, rng: np.random.Generator,
                 objective: ContrastiveObjective | None = None,
                 max_anchors: int = 256):
        super().__init__()
        self.encoder = GCNEncoder(in_features, hidden_dim, out_dim,
                                  num_layers=1, rng=rng)
        self.objective = objective if objective is not None else JSDObjective()
        self.max_anchors = max_anchors
        self._rng = rng

    def _encode(self, graph: Graph, features: np.ndarray) -> Tensor:
        adj = gcn_normalize(adjacency_matrix(graph))
        return self.encoder(Tensor(features), adj)

    def _corrupted(self, graph: Graph) -> np.ndarray:
        perm = self._rng.permutation(graph.num_nodes)
        return graph.x[perm]

    def training_loss(self, graph: Graph) -> Tensor:
        positive = self._encode(graph, graph.x)
        negative = self._encode(graph, self._corrupted(graph))
        summary = positive.mean(axis=0, keepdims=True).sigmoid()
        n = graph.num_nodes
        local = concat([positive, negative], axis=0)
        mask = np.concatenate([np.ones((n, 1), dtype=bool),
                               np.zeros((n, 1), dtype=bool)], axis=0)

        def base_loss():
            return jsd_bipartite_loss(local, summary, mask)

        def gradient_loss():
            objective = self.objective
            assert isinstance(objective, GradGCLObjective)
            # Gradient channel: per-node JSD gradients from two independent
            # corruption draws form the paired views.
            negative2 = self._encode(graph, self._corrupted(graph))
            anchors = self._subsample(n)
            g1, _ = JSDObjective().gradient_features(positive[anchors],
                                                     negative[anchors])
            g2, _ = JSDObjective().gradient_features(positive[anchors],
                                                     negative2[anchors])
            if objective.detach_features:
                g1, g2 = g1.detach(), g2.detach()
            return info_nce(g1, g2, tau=objective.grad_tau,
                            sim=objective.grad_sim)

        return self.combine_with_gradients(base_loss, gradient_loss)

    def _subsample(self, n: int) -> np.ndarray:
        if n <= self.max_anchors:
            return np.arange(n)
        anchors = self._rng.choice(n, size=self.max_anchors, replace=False)
        anchors.sort()
        return anchors

    def node_embeddings(self, graph: Graph) -> Tensor:
        return self._encode(graph, graph.x)
