"""Training loops shared by all methods, with history for the figures.

The history records per-epoch loss (and GradGCL's loss_f / loss_g parts),
wall-clock time (Table VIII), and optional alignment/uniformity probes
(Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..graph import Graph, GraphLoader
from ..nn import Adam
from ..utils import Timer
from .base import GraphContrastiveMethod, NodeContrastiveMethod

__all__ = ["TrainHistory", "train_graph_method", "train_node_method",
           "clip_gradients"]


def clip_gradients(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad ** 2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for grad in grads:
            grad *= scale
    return norm


def _check_finite(loss_value: float, context: str) -> None:
    if not np.isfinite(loss_value):
        raise FloatingPointError(
            f"non-finite loss ({loss_value}) during {context}; check the "
            "learning rate and temperature settings")


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    losses: list[float] = field(default_factory=list)
    parts: list[dict[str, float]] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    probes: list[dict[str, float]] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("history is empty")
        return self.losses[-1]


def _mean_parts(parts: list[dict[str, float]]) -> dict[str, float]:
    if not parts:
        return {}
    keys = set().union(*parts)
    return {k: float(np.mean([p[k] for p in parts if k in p])) for k in keys}


def train_graph_method(method: GraphContrastiveMethod,
                       graphs: Sequence[Graph], *, epochs: int = 20,
                       batch_size: int = 64, lr: float = 1e-3,
                       weight_decay: float = 0.0, seed: int = 0,
                       grad_clip: float | None = None,
                       patience: int | None = None,
                       min_delta: float = 1e-4,
                       probe: Callable[[GraphContrastiveMethod], dict] | None = None
                       ) -> TrainHistory:
    """Train a graph-level method with Adam; return the epoch history.

    Parameters
    ----------
    grad_clip:
        Optional global gradient-norm cap applied before each step.
    patience:
        Optional early stopping: halt when the epoch loss has not improved
        by more than ``min_delta`` for ``patience`` consecutive epochs.
    probe:
        Called after every epoch with the method; its returned dict is
        appended to ``history.probes`` (Fig. 7's trajectories).
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    optimizer = Adam(method.parameters(), lr=lr, weight_decay=weight_decay)
    loader = GraphLoader(graphs, batch_size=batch_size, shuffle=True,
                         rng=np.random.default_rng(seed))
    history = TrainHistory()
    best_loss = np.inf
    stall = 0
    method.train()
    for epoch in range(epochs):
        epoch_losses: list[float] = []
        epoch_parts: list[dict[str, float]] = []
        with Timer() as timer:
            for batch in loader:
                if batch.num_graphs < 2:
                    continue  # contrastive losses need in-batch negatives
                optimizer.zero_grad()
                loss = method.training_loss(batch)
                _check_finite(loss.item(), f"epoch {epoch}")
                loss.backward()
                if grad_clip is not None:
                    clip_gradients(optimizer.params, grad_clip)
                optimizer.step()
                epoch_losses.append(loss.item())
                parts = getattr(method.objective, "last_parts", None)
                if parts:
                    epoch_parts.append(dict(parts))
        history.losses.append(float(np.mean(epoch_losses)))
        history.parts.append(_mean_parts(epoch_parts))
        history.epoch_seconds.append(timer.elapsed)
        method.on_epoch_end(epoch, history.losses[-1])
        if probe is not None:
            history.probes.append(probe(method))
        if patience is not None:
            if history.losses[-1] < best_loss - min_delta:
                best_loss = history.losses[-1]
                stall = 0
            else:
                stall += 1
                if stall >= patience:
                    break
    return history


def train_node_method(method: NodeContrastiveMethod, graph: Graph, *,
                      epochs: int = 50, lr: float = 1e-3,
                      weight_decay: float = 0.0,
                      grad_clip: float | None = None,
                      probe: Callable[[NodeContrastiveMethod], dict] | None = None
                      ) -> TrainHistory:
    """Full-graph training loop for node-level methods."""
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    optimizer = Adam(method.parameters(), lr=lr, weight_decay=weight_decay)
    history = TrainHistory()
    method.train()
    for epoch in range(epochs):
        with Timer() as timer:
            optimizer.zero_grad()
            loss = method.training_loss(graph)
            _check_finite(loss.item(), f"epoch {epoch}")
            loss.backward()
            if grad_clip is not None:
                clip_gradients(optimizer.params, grad_clip)
            optimizer.step()
        history.losses.append(loss.item())
        parts = getattr(method.objective, "last_parts", None)
        history.parts.append(dict(parts) if parts else {})
        history.epoch_seconds.append(timer.elapsed)
        method.on_epoch_end(epoch, history.losses[-1])
        if probe is not None:
            history.probes.append(probe(method))
    return history
