"""Training loops shared by all methods, with history and run telemetry.

The history records per-epoch loss (and GradGCL's loss_f / loss_g parts),
wall-clock time (Table VIII), and optional alignment/uniformity probes
(Fig. 7).  Passing ``journal=RunJournal(run_dir)`` additionally streams the
run as structured JSONL events — config, per-epoch losses with pre-clip
gradient norms and throughput, the collapse spectrum (Figs. 1/5), span
timings, and tensor-engine counters — in the schema described in
``docs/observability.md``.  With ``journal=None`` (the default) the loops
take the exact seed-era fast path: telemetry costs one ``is not None``
check per batch.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..graph import Graph, GraphLoader
from ..nn import Adam
from ..obs import RunJournal, Tracer, engine_stats
from ..pipeline import (
    PrefetchLoader,
    StructureCache,
    resolve_workers,
    use_structure_cache,
)
from ..utils import Timer
from ..utils.seed import seeded_rng
from .base import GraphContrastiveMethod, NodeContrastiveMethod

__all__ = ["TrainHistory", "train_graph_method", "train_node_method",
           "clip_gradients", "gradient_norm"]


def gradient_norm(parameters) -> float:
    """Global L2 norm over all materialized parameter gradients."""
    total = 0.0
    for p in parameters:
        if p.grad is not None:
            total += float((p.grad ** 2).sum())
    return float(np.sqrt(total))


def clip_gradients(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (the quantity the run journal logs).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    parameters = list(parameters)
    norm = gradient_norm(parameters)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in parameters:
            if p.grad is not None:
                p.grad *= scale
    return norm


def _check_finite(loss_value: float, context: str) -> None:
    if not np.isfinite(loss_value):
        raise FloatingPointError(
            f"non-finite loss ({loss_value}) during {context}; check the "
            "learning rate and temperature settings")


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    losses: list[float] = field(default_factory=list)
    parts: list[dict[str, float]] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    probes: list[dict[str, float]] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("history is empty")
        return self.losses[-1]


def _mean_parts(parts: list[dict[str, float]]) -> dict[str, float]:
    if not parts:
        return {}
    keys = set().union(*parts)
    return {k: float(np.mean([p[k] for p in parts if k in p])) for k in keys}


# ----------------------------------------------------------------------
# Journal emission helpers (shared by both loops)
# ----------------------------------------------------------------------

def _training_flags() -> dict:
    """Dtype/fused-kernel state recorded in every run's config event."""
    from ..tensor import get_default_dtype, use_fused

    return {"dtype": np.dtype(get_default_dtype()).name,
            "fused_kernels": use_fused()}


def _log_config(journal: RunJournal, method, kind: str, **fields) -> None:
    objective = getattr(method, "objective", None)
    weight = getattr(objective, "weight", None)
    journal.log("config", kind=kind, method=type(method).__name__,
                method_name=getattr(method, "name", type(method).__name__),
                gradgcl_weight=weight, **_training_flags(), **fields)


def _log_epoch(journal: RunJournal, history: TrainHistory, epoch: int,
               seconds: float, throughput: dict) -> None:
    record = {"epoch": epoch, "loss": history.losses[-1],
              "seconds": seconds, **history.parts[-1], **throughput}
    if history.grad_norms:
        record["grad_norm"] = history.grad_norms[-1]
    journal.log("epoch", **record)


def _log_spectrum(journal: RunJournal, embeddings: np.ndarray,
                  epoch: int) -> None:
    from ..core import effective_rank, num_collapsed_dimensions, \
        singular_spectrum

    spectrum = singular_spectrum(embeddings)
    journal.log("spectrum", epoch=epoch,
                singular_values=[float(s) for s in spectrum],
                effective_rank=effective_rank(embeddings),
                collapsed_dims=num_collapsed_dimensions(embeddings, tol=1e-4),
                embedding_dim=int(embeddings.shape[1]))


def _log_run_end(journal: RunJournal, history: TrainHistory, tracer: Tracer,
                 engine, epochs_run: int,
                 cache: StructureCache | None = None) -> None:
    if tracer.roots:
        journal.log("trace", spans=tracer.snapshot())
    if cache is not None:
        journal.log("metrics", **cache.stats())
    journal.log("engine", **engine.snapshot())
    journal.log("run_end", epochs_run=epochs_run,
                final_loss=history.final_loss,
                total_seconds=history.total_seconds)


def _resolve_pipeline(method, workers, prefetch, structure_cache):
    """Normalize the pipeline knobs shared by both training loops.

    ``workers=None`` defers to ``REPRO_WORKERS`` (default 0 = the serial
    seed-era path); ``structure_cache=True`` builds a default-sized
    :class:`StructureCache`; ``prefetch=None`` auto-enables double
    buffering exactly when a worker pool exists to overlap with.
    """
    workers = resolve_workers(workers)
    if structure_cache is True:
        structure_cache = StructureCache()
    elif structure_cache is False:
        structure_cache = None
    method.configure_pipeline(workers=workers, cache=structure_cache)
    has_generator = getattr(method, "view_generator", None) is not None
    if prefetch is None:
        prefetch = workers > 0 and has_generator
    prefetch = bool(prefetch) and has_generator
    return workers, prefetch, structure_cache


def train_graph_method(method: GraphContrastiveMethod,
                       graphs: Sequence[Graph], *, epochs: int = 20,
                       batch_size: int = 64, lr: float = 1e-3,
                       weight_decay: float = 0.0, seed: int = 0,
                       grad_clip: float | None = None,
                       patience: int | None = None,
                       min_delta: float = 1e-4,
                       probe: Callable[[GraphContrastiveMethod], dict] | None = None,
                       journal: RunJournal | None = None,
                       spectrum_every: int | None = None,
                       workers: int | None = None,
                       prefetch: bool | None = None,
                       structure_cache: StructureCache | bool | None = None
                       ) -> TrainHistory:
    """Train a graph-level method with Adam; return the epoch history.

    Parameters
    ----------
    grad_clip:
        Optional global gradient-norm cap applied before each step.
    patience:
        Optional early stopping: halt when the epoch loss has not improved
        by more than ``min_delta`` for ``patience`` consecutive epochs.
    probe:
        Called after every epoch with the method; its returned dict is
        appended to ``history.probes`` (Fig. 7's trajectories).
    journal:
        Optional :class:`repro.obs.RunJournal`; when given, the run streams
        config/epoch/spectrum/trace/engine/run_end events to it.
    spectrum_every:
        With a journal, also emit a collapse-spectrum event every this many
        epochs (the final spectrum is always emitted).
    workers:
        Augmentation worker processes (``None`` defers to ``REPRO_WORKERS``,
        default 0 = serial).  Results are bit-identical at every count.
    prefetch:
        Double-buffer the next batch's views during the optimizer step;
        ``None`` auto-enables it exactly when ``workers > 0``.
    structure_cache:
        ``True`` or a :class:`repro.pipeline.StructureCache` to reuse
        adjacency/diffusion structure across batches and epochs (never
        changes numbers); ``None``/``False`` disables caching.
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    telemetry = journal is not None
    optimizer = Adam(method.parameters(), lr=lr, weight_decay=weight_decay)
    loader = GraphLoader(graphs, batch_size=batch_size, shuffle=True,
                         rng=seeded_rng(seed))
    workers, prefetch, structure_cache = _resolve_pipeline(
        method, workers, prefetch, structure_cache)
    history = TrainHistory()
    if telemetry:
        _log_config(journal, method, "graph", num_graphs=len(graphs),
                    epochs=epochs, batch_size=batch_size, lr=lr,
                    weight_decay=weight_decay, seed=seed,
                    grad_clip=grad_clip, patience=patience,
                    workers=workers, prefetch=prefetch,
                    structure_cache=structure_cache is not None)
    tracer = Tracer(enabled=telemetry)
    best_loss = np.inf
    stall = 0
    epochs_run = 0
    method.train()
    batch_source = (PrefetchLoader(loader, method.view_generator)
                    if prefetch else loader)
    with contextlib.ExitStack() as stack:
        # Pool shutdown must run even on a mid-epoch exception; the active
        # structure cache covers training *and* the final embed/spectrum.
        stack.callback(method.shutdown_pipeline)
        stack.enter_context(use_structure_cache(structure_cache))
        engine = stack.enter_context(engine_stats(enabled=telemetry))
        for epoch in range(epochs):
            epoch_losses: list[float] = []
            epoch_parts: list[dict[str, float]] = []
            epoch_norms: list[float] = []
            graphs_seen = 0
            with tracer.trace("epoch"), Timer() as timer:
                for batch in batch_source:
                    if batch.num_graphs < 2:
                        continue  # contrastive losses need in-batch negatives
                    optimizer.zero_grad()
                    with tracer.trace("forward"):
                        loss = method.training_loss(batch)
                    _check_finite(loss.item(), f"epoch {epoch}")
                    with tracer.trace("backward"):
                        loss.backward()
                    if grad_clip is not None:
                        epoch_norms.append(
                            clip_gradients(optimizer.params, grad_clip))
                    elif telemetry:
                        epoch_norms.append(gradient_norm(optimizer.params))
                    with tracer.trace("step"):
                        optimizer.step()
                    epoch_losses.append(loss.item())
                    graphs_seen += batch.num_graphs
                    parts = getattr(method.objective, "last_parts", None)
                    if parts:
                        epoch_parts.append(dict(parts))
            history.losses.append(float(np.mean(epoch_losses)))
            history.parts.append(_mean_parts(epoch_parts))
            history.epoch_seconds.append(timer.elapsed)
            if epoch_norms:
                history.grad_norms.append(float(np.mean(epoch_norms)))
            epochs_run = epoch + 1
            method.on_epoch_end(epoch, history.losses[-1])
            if probe is not None:
                history.probes.append(probe(method))
            if telemetry:
                per_sec = graphs_seen / max(timer.elapsed, 1e-12)
                _log_epoch(journal, history, epoch, timer.elapsed,
                           {"graphs_per_sec": per_sec,
                            "graphs_seen": graphs_seen})
                if spectrum_every and (epoch + 1) % spectrum_every == 0 \
                        and epoch + 1 < epochs:
                    _log_spectrum(journal, method.embed(graphs), epoch)
            if patience is not None:
                if history.losses[-1] < best_loss - min_delta:
                    best_loss = history.losses[-1]
                    stall = 0
                else:
                    stall += 1
                    if stall >= patience:
                        break
        if telemetry:
            _log_spectrum(journal, method.embed(graphs), epochs_run - 1)
    if telemetry:
        _log_run_end(journal, history, tracer, engine, epochs_run,
                     structure_cache)
    return history


def train_node_method(method: NodeContrastiveMethod, graph: Graph, *,
                      epochs: int = 50, lr: float = 1e-3,
                      weight_decay: float = 0.0,
                      grad_clip: float | None = None,
                      probe: Callable[[NodeContrastiveMethod], dict] | None = None,
                      journal: RunJournal | None = None,
                      spectrum_every: int | None = None,
                      structure_cache: StructureCache | bool | None = None
                      ) -> TrainHistory:
    """Full-graph training loop for node-level methods.

    ``journal`` / ``spectrum_every`` behave as in
    :func:`train_graph_method`; throughput is reported as nodes/sec since
    every epoch is one full-graph step.  ``structure_cache`` behaves as in
    :func:`train_graph_method` (there is no per-graph view fan-out to
    parallelize in a full-graph loop, so no ``workers`` knob here).
    """
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    telemetry = journal is not None
    optimizer = Adam(method.parameters(), lr=lr, weight_decay=weight_decay)
    _, _, structure_cache = _resolve_pipeline(method, 0, False,
                                              structure_cache)
    history = TrainHistory()
    if telemetry:
        _log_config(journal, method, "node", num_nodes=graph.num_nodes,
                    epochs=epochs, lr=lr, weight_decay=weight_decay,
                    grad_clip=grad_clip,
                    structure_cache=structure_cache is not None)
    tracer = Tracer(enabled=telemetry)
    method.train()
    with use_structure_cache(structure_cache), \
            engine_stats(enabled=telemetry) as engine:
        for epoch in range(epochs):
            with tracer.trace("epoch"), Timer() as timer:
                optimizer.zero_grad()
                with tracer.trace("forward"):
                    loss = method.training_loss(graph)
                _check_finite(loss.item(), f"epoch {epoch}")
                with tracer.trace("backward"):
                    loss.backward()
                if grad_clip is not None:
                    history.grad_norms.append(
                        clip_gradients(optimizer.params, grad_clip))
                elif telemetry:
                    history.grad_norms.append(
                        gradient_norm(optimizer.params))
                with tracer.trace("step"):
                    optimizer.step()
            history.losses.append(loss.item())
            parts = getattr(method.objective, "last_parts", None)
            history.parts.append(dict(parts) if parts else {})
            history.epoch_seconds.append(timer.elapsed)
            method.on_epoch_end(epoch, history.losses[-1])
            if probe is not None:
                history.probes.append(probe(method))
            if telemetry:
                per_sec = graph.num_nodes / max(timer.elapsed, 1e-12)
                _log_epoch(journal, history, epoch, timer.elapsed,
                           {"nodes_per_sec": per_sec,
                            "nodes_seen": graph.num_nodes})
                if spectrum_every and (epoch + 1) % spectrum_every == 0 \
                        and epoch + 1 < epochs:
                    _log_spectrum(journal, method.embed(graph), epoch)
    if telemetry:
        with use_structure_cache(structure_cache):
            _log_spectrum(journal, method.embed(graph), epochs - 1)
        _log_run_end(journal, history, tracer, engine, epochs,
                     structure_cache)
    return history
