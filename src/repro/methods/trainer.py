"""Backward-compatible training entry points over :mod:`repro.run`.

``train_graph_method`` / ``train_node_method`` keep their historical
signatures and numbers exactly, but are now thin wrappers that build the
unified callback-driven :class:`repro.run.Trainer` with the matching step
strategy (:class:`repro.run.GraphSteps` / :class:`repro.run.NodeSteps`).
The history records per-epoch loss (and GradGCL's loss_f / loss_g parts),
wall-clock time (Table VIII), and optional alignment/uniformity probes
(Fig. 7); passing ``journal=RunJournal(run_dir)`` streams the run as
structured JSONL events in the schema described in
``docs/observability.md``.  With ``journal=None`` (the default) the engine
takes the exact seed-era fast path.

New relative to the inlined-loop era: the node path now supports
``patience`` / ``min_delta`` early stopping and registers
``shutdown_pipeline`` cleanup exactly like the graph path (closing the old
parity gaps), and both paths accept ``checkpoint_every`` + ``run_dir``
via :mod:`repro.run` for resumable runs.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..graph import Graph
from ..obs import RunJournal
from ..pipeline import StructureCache
from ..run.trainer import (  # re-exported for backward compatibility
    GraphSteps,
    NodeSteps,
    TrainHistory,
    Trainer,
    _mean_parts,  # noqa: F401  (import-path compatibility)
    clip_gradients,
    gradient_norm,
)
from .base import GraphContrastiveMethod, NodeContrastiveMethod

__all__ = ["TrainHistory", "train_graph_method", "train_node_method",
           "clip_gradients", "gradient_norm"]


def train_graph_method(method: GraphContrastiveMethod,
                       graphs: Sequence[Graph], *, epochs: int = 20,
                       batch_size: int = 64, lr: float = 1e-3,
                       weight_decay: float = 0.0, seed: int = 0,
                       grad_clip: float | None = None,
                       patience: int | None = None,
                       min_delta: float = 1e-4,
                       probe: Callable[[GraphContrastiveMethod], dict] | None = None,
                       journal: RunJournal | None = None,
                       spectrum_every: int | None = None,
                       workers: int | None = None,
                       prefetch: bool | None = None,
                       structure_cache: StructureCache | bool | None = None
                       ) -> TrainHistory:
    """Train a graph-level method with Adam; return the epoch history.

    Parameters
    ----------
    grad_clip:
        Optional global gradient-norm cap applied before each step.
    patience:
        Optional early stopping: halt when the epoch loss has not improved
        by more than ``min_delta`` for ``patience`` consecutive epochs.
    probe:
        Called after every epoch with the method; its returned dict is
        appended to ``history.probes`` (Fig. 7's trajectories).
    journal:
        Optional :class:`repro.obs.RunJournal`; when given, the run streams
        config/epoch/spectrum/trace/engine/run_end events to it.
    spectrum_every:
        With a journal, also emit a collapse-spectrum event every this many
        epochs (the final spectrum is always emitted).
    workers:
        Augmentation worker processes (``None`` defers to ``REPRO_WORKERS``,
        default 0 = serial).  Results are bit-identical at every count.
    prefetch:
        Double-buffer the next batch's views during the optimizer step;
        ``None`` auto-enables it exactly when ``workers > 0``.
    structure_cache:
        ``True`` or a :class:`repro.pipeline.StructureCache` to reuse
        adjacency/diffusion structure across batches and epochs (never
        changes numbers); ``None``/``False`` disables caching.
    """
    trainer = Trainer(method, GraphSteps(graphs, batch_size=batch_size,
                                         seed=seed),
                      epochs=epochs, lr=lr, weight_decay=weight_decay,
                      grad_clip=grad_clip, patience=patience,
                      min_delta=min_delta, probe=probe, journal=journal,
                      spectrum_every=spectrum_every, workers=workers,
                      prefetch=prefetch, structure_cache=structure_cache)
    trainer.log_config(num_graphs=len(graphs), epochs=epochs,
                       batch_size=batch_size, lr=lr,
                       weight_decay=weight_decay, seed=seed,
                       grad_clip=grad_clip, patience=patience,
                       workers=trainer.workers, prefetch=trainer.prefetch,
                       structure_cache=trainer.structure_cache is not None)
    return trainer.fit()


def train_node_method(method: NodeContrastiveMethod, graph: Graph, *,
                      epochs: int = 50, lr: float = 1e-3,
                      weight_decay: float = 0.0,
                      grad_clip: float | None = None,
                      patience: int | None = None,
                      min_delta: float = 1e-4,
                      probe: Callable[[NodeContrastiveMethod], dict] | None = None,
                      journal: RunJournal | None = None,
                      spectrum_every: int | None = None,
                      structure_cache: StructureCache | bool | None = None
                      ) -> TrainHistory:
    """Full-graph training loop for node-level methods.

    ``journal`` / ``spectrum_every`` / ``patience`` behave as in
    :func:`train_graph_method`; throughput is reported as nodes/sec since
    every epoch is one full-graph step.  ``structure_cache`` behaves as in
    :func:`train_graph_method` (there is no per-graph view fan-out to
    parallelize in a full-graph loop, so no ``workers`` knob here).
    """
    trainer = Trainer(method, NodeSteps(graph), epochs=epochs, lr=lr,
                      weight_decay=weight_decay, grad_clip=grad_clip,
                      patience=patience, min_delta=min_delta, probe=probe,
                      journal=journal, spectrum_every=spectrum_every,
                      structure_cache=structure_cache)
    trainer.log_config(num_nodes=graph.num_nodes, epochs=epochs, lr=lr,
                       weight_decay=weight_decay, grad_clip=grad_clip,
                       patience=patience,
                       structure_cache=trainer.structure_cache is not None)
    return trainer.fit()
