"""Base classes for graph- and node-level contrastive methods.

Every method owns an encoder, a projection head, and a *contrastive
objective* (:class:`repro.core.ContrastiveObjective`).  GradGCL plugs in by
wrapping the objective (see :func:`repro.core.gradgcl`); methods whose loss
is not a simple paired-view contrast (InfoGraph, MVGRL, BGRL, GraphMAE)
override :meth:`training_loss` and use :meth:`combine_with_gradients` to stay
compatible with the plug-in.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..core import GradGCLObjective
from ..graph import Graph, GraphBatch
from ..nn import Module
from ..obs import trace
from ..tensor import Tensor, no_grad

__all__ = ["GraphContrastiveMethod", "NodeContrastiveMethod"]


class GraphContrastiveMethod(Module):
    """A self-supervised method producing graph-level embeddings."""

    name = "graph-method"

    #: Optional :class:`repro.pipeline.ViewGenerator`; methods that generate
    #: views from immutable inputs (GraphCL family) set one in ``__init__``,
    #: methods whose views need live model state (RGCL) leave it ``None``.
    view_generator = None
    #: Optional :class:`repro.pipeline.StructureCache` installed by the
    #: trainer for the duration of a run.
    structure_cache = None

    def configure_pipeline(self, *, workers: int | None = None,
                           cache=None) -> "GraphContrastiveMethod":
        """Attach input-pipeline resources for an upcoming training run.

        ``workers`` reconfigures the view generator's pool size (ignored
        for methods without one); ``cache`` becomes the method's structure
        cache (pass ``None`` to detach).  Called by the trainer — both
        values are always set explicitly there.
        """
        if self.view_generator is not None and workers is not None:
            self.view_generator.configure(workers)
        self.structure_cache = cache
        return self

    def shutdown_pipeline(self) -> None:
        """Release pool processes; later runs lazily recreate them."""
        if self.view_generator is not None:
            self.view_generator.shutdown()

    def training_loss(self, batch: GraphBatch) -> Tensor:
        """One minibatch's training loss (training mode assumed)."""
        raise NotImplementedError

    def graph_embeddings(self, batch: GraphBatch) -> Tensor:
        """Un-augmented graph embeddings used for downstream evaluation."""
        raise NotImplementedError

    def embed(self, graphs: Sequence[Graph], batch_size: int = 128) -> np.ndarray:
        """Embed graphs in eval mode with no autograd graph.

        Repeated-shape chunks (every full chunk of a bulk embed, and the
        probe-evaluation cadence) replay the method's captured plan instead
        of rebuilding the eager graph; see :mod:`repro.tensor.plan`.
        """
        from ..tensor import plan_cache_for

        self.eval()
        cache = plan_cache_for(self)
        chunks = []
        with trace("embed"), no_grad():
            for start in range(0, len(graphs), batch_size):
                batch = GraphBatch(list(graphs[start:start + batch_size]))
                chunks.append(cache.run(self, self.graph_embeddings, batch))
        self.train()
        return np.concatenate(chunks, axis=0)

    # ------------------------------------------------------------------
    # GradGCL compatibility for non-paired losses
    # ------------------------------------------------------------------
    def combine_with_gradients(
            self, base_loss_fn: Callable[[], Tensor],
            gradient_loss_fn: Callable[[], Tensor]) -> Tensor:
        """Apply Eq. 18 when the objective is GradGCL-wrapped.

        ``base_loss_fn`` computes the method's own ``l_f``;
        ``gradient_loss_fn`` computes the method-specific ``l_g``.  Both are
        lazy so the a=0 / a=1 endpoints skip the unused branch entirely.
        """
        objective = self.objective
        if not isinstance(objective, GradGCLObjective):
            return base_loss_fn()
        total = None
        if objective.weight < 1.0:
            total = base_loss_fn() * (1.0 - objective.weight)
        if objective.weight > 0.0:
            term = gradient_loss_fn() * objective.weight
            total = term if total is None else total + term
        return total

    def on_epoch_end(self, epoch: int, epoch_loss: float) -> None:
        """Hook for schedule updates (JOAO's augmentation distribution)."""

    # ------------------------------------------------------------------
    # Checkpoint hooks (see repro.run.state.TrainState)
    # ------------------------------------------------------------------
    def training_state(self) -> dict:
        """JSON-able schedule state beyond parameters/RNG (default: none).

        Methods with mutable training-time state that parameters and the
        ``_rng`` stream do not capture (JOAO's augmentation distribution,
        RGCL's step counter) override this plus
        :meth:`load_training_state` so checkpoint/resume stays exact.
        """
        return {}

    def load_training_state(self, state: dict) -> None:
        """Reinstall state captured by :meth:`training_state`."""


class NodeContrastiveMethod(Module):
    """A self-supervised method producing node-level embeddings."""

    name = "node-method"

    view_generator = None
    structure_cache = None
    configure_pipeline = GraphContrastiveMethod.configure_pipeline
    shutdown_pipeline = GraphContrastiveMethod.shutdown_pipeline

    def training_loss(self, graph: Graph) -> Tensor:
        raise NotImplementedError

    def node_embeddings(self, graph: Graph) -> Tensor:
        raise NotImplementedError

    def embed(self, graph: Graph) -> np.ndarray:
        self.eval()
        with trace("embed"), no_grad():
            out = self.node_embeddings(graph).data
        self.train()
        return out

    combine_with_gradients = GraphContrastiveMethod.combine_with_gradients
    training_state = GraphContrastiveMethod.training_state
    load_training_state = GraphContrastiveMethod.load_training_state

    def on_epoch_end(self, epoch: int, epoch_loss: float) -> None:
        """Hook for schedule updates (e.g. BGRL's EMA momentum)."""
