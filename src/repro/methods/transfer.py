"""Transfer-learning pipeline (paper Sec. IV-C, Table VI).

Pretrain a contrastive method on an unlabelled corpus, then finetune the
encoder plus a fresh linear head on each downstream dataset and report
ROC-AUC — the MoleculeNet protocol with GIN encoders used by GraphCL and
SimGRACE.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..datasets import GraphDataset
from ..eval import roc_auc
from ..gnn import GINEncoder
from ..graph import Graph, GraphBatch, GraphLoader
from ..nn import Adam, Linear
from ..tensor import log_softmax, no_grad
from ..utils.seed import seeded_rng
from .base import GraphContrastiveMethod
from .trainer import train_graph_method

__all__ = ["finetune_roc_auc", "TransferResult", "run_transfer"]


def _split(dataset: GraphDataset, test_fraction: float,
           rng: np.random.Generator) -> tuple[list[Graph], list[Graph]]:
    order = rng.permutation(len(dataset))
    cut = max(1, int(round(len(dataset) * test_fraction)))
    test = [dataset[i] for i in order[:cut]]
    train = [dataset[i] for i in order[cut:]]
    return train, test


def finetune_roc_auc(encoder: GINEncoder, dataset: GraphDataset, *,
                     epochs: int = 10, lr: float = 1e-3,
                     batch_size: int = 32, test_fraction: float = 0.25,
                     seed: int = 0, freeze_encoder: bool = False) -> float:
    """Finetune ``encoder`` + linear head on ``dataset``; return ROC-AUC.

    The encoder is cloned so the caller's pretrained weights are untouched
    (every downstream dataset starts from the same pretrain checkpoint).
    """
    if dataset.num_classes != 2:
        raise ValueError("transfer evaluation expects binary datasets")
    rng = seeded_rng(seed)
    train_graphs, test_graphs = _split(dataset, test_fraction, rng)
    model = encoder.clone()
    head = Linear(model.out_features, 2, rng=rng)
    params = head.parameters() if freeze_encoder else (model.parameters()
                                                       + head.parameters())
    optimizer = Adam(params, lr=lr)
    loader = GraphLoader(train_graphs, batch_size=batch_size, shuffle=True,
                         rng=rng)
    model.train()
    for _ in range(epochs):
        for batch in loader:
            optimizer.zero_grad()
            _, h = model(batch)
            logits = head(h)
            log_probs = log_softmax(logits, axis=1)
            labels = batch.labels
            nll = -log_probs[np.arange(batch.num_graphs), labels].mean()
            nll.backward()
            optimizer.step()

    model.eval()
    with no_grad():
        batch = GraphBatch(test_graphs)
        _, h = model(batch)
        logits = head(h).data
    scores = logits[:, 1] - logits[:, 0]
    labels = np.array([g.y for g in test_graphs])
    return 100.0 * roc_auc(scores, labels)


class TransferResult(dict):
    """dataset name -> mean ROC-AUC mapping with an ``average`` property."""

    @property
    def average(self) -> float:
        return float(np.mean(list(self.values())))


def run_transfer(method: GraphContrastiveMethod,
                 pretrain_graphs: Sequence[Graph],
                 downstream: Sequence[GraphDataset], *,
                 pretrain_epochs: int = 5, finetune_epochs: int = 8,
                 batch_size: int = 32, lr: float = 1e-3, repeats: int = 2,
                 test_fraction: float = 0.75, seed: int = 0) -> TransferResult:
    """Pretrain once, finetune on every downstream dataset; mean over repeats.

    ``test_fraction`` defaults to 0.75 — a *low-finetune-data* regime, which
    is where pretraining quality matters (with abundant downstream labels a
    from-scratch encoder catches up and the comparison saturates).
    """
    train_graph_method(method, list(pretrain_graphs),
                       epochs=pretrain_epochs, batch_size=batch_size,
                       lr=lr, seed=seed)
    result = TransferResult()
    for dataset in downstream:
        scores = [finetune_roc_auc(method.encoder, dataset,
                                   epochs=finetune_epochs, lr=lr,
                                   batch_size=batch_size,
                                   test_fraction=test_fraction,
                                   seed=seed + r)
                  for r in range(repeats)]
        result[dataset.name] = float(np.mean(scores))
    return result
