"""Contrastive-method implementations and the shared training loops."""

from .base import GraphContrastiveMethod, NodeContrastiveMethod
from .trainer import TrainHistory, train_graph_method, train_node_method
from .graphcl import GraphCL, default_augmentation
from .rgcl import RGCL
from .joao import JOAO
from .simgrace import SimGRACE
from .infograph import InfoGraph
from .mvgrl import MVGRL, MVGRLNode
from .grace import GCA, GRACE
from .dgi import DGI
from .bgrl import BGRL, SGCL, BootstrapObjective
from .costa import COSTA
from .graphmae import GraphMAE
from .transfer import TransferResult, finetune_roc_auc, run_transfer
from .pretrain_baselines import AttrMasking, ContextPred

__all__ = [
    "GraphContrastiveMethod", "NodeContrastiveMethod",
    "TrainHistory", "train_graph_method", "train_node_method",
    "GraphCL", "default_augmentation", "RGCL", "JOAO", "SimGRACE",
    "InfoGraph",
    "MVGRL", "MVGRLNode", "GRACE", "GCA", "DGI", "BGRL", "SGCL",
    "BootstrapObjective", "COSTA", "GraphMAE",
    "finetune_roc_auc", "run_transfer", "TransferResult",
    "AttrMasking", "ContextPred",
]
