"""SimGRACE (Xia et al. 2022): contrastive learning without data augmentation.

The second view comes from running the *same* (un-augmented) batch through a
Gaussian-perturbed copy of the encoder.  This is the paper's primary backbone
for the motivational experiments (Figs. 1-3, 5-7).
"""

from __future__ import annotations

import numpy as np

from ..augment import perturbed_copy
from ..core import ContrastiveObjective, InfoNCEObjective
from ..gnn import GINEncoder, ProjectionHead
from ..graph import GraphBatch
from ..run.registry import register_method
from ..tensor import Tensor, no_grad
from .base import GraphContrastiveMethod

__all__ = ["SimGRACE"]


@register_method("SimGRACE", level="graph")
class SimGRACE(GraphContrastiveMethod):
    """SimGRACE with a pluggable objective (GradGCL-ready).

    Parameters
    ----------
    perturb_magnitude:
        Scale ``eta`` of the per-tensor Gaussian weight noise producing the
        second encoder.
    """

    name = "SimGRACE"

    def __init__(self, in_features: int, hidden_dim: int = 32,
                 num_layers: int = 3, *, rng: np.random.Generator,
                 perturb_magnitude: float = 0.1,
                 objective: ContrastiveObjective | None = None,
                 tau: float = 0.5):
        super().__init__()
        self.encoder = GINEncoder(in_features, hidden_dim, num_layers,
                                  rng=rng)
        self.projector = ProjectionHead(self.encoder.out_features, rng=rng)
        self.objective = (objective if objective is not None
                          else InfoNCEObjective(tau=tau, sim="cos"))
        self.perturb_magnitude = perturb_magnitude
        self._rng = rng

    def project_views(self, batch: GraphBatch) -> tuple[Tensor, Tensor]:
        """(online view, perturbed-encoder view) projected embeddings."""
        _, h1 = self.encoder(batch)
        # The perturbed encoder is a frozen sample: no gradients flow into
        # it (matching SimGRACE, which detaches the perturbed branch).
        with no_grad():
            perturbed = perturbed_copy(self.encoder, self.perturb_magnitude,
                                       self._rng)
            _, h2_data = perturbed(batch)
        h2 = Tensor(h2_data.data)
        return self.projector(h1), self.projector(h2)

    def training_loss(self, batch: GraphBatch) -> Tensor:
        u, v = self.project_views(batch)
        return self.objective.loss(u, v)

    def graph_embeddings(self, batch: GraphBatch) -> Tensor:
        _, h = self.encoder(batch)
        return h
