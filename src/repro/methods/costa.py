"""COSTA (Zhang et al. 2022): covariance-preserving feature augmentation.

Instead of augmenting the graph, COSTA augments in *feature space*: the
second view is a random sketch ``H' = (1/sqrt(k)) R H`` of the embedding
matrix, which approximately preserves the embedding covariance.  We use a
square Johnson-Lindenstrauss sketch (k = N) so node pairing is preserved for
the InfoNCE loss, the single-view "COSTA-SV" variant of the original paper.
"""

from __future__ import annotations

import numpy as np

from ..core import ContrastiveObjective, InfoNCEObjective
from ..gnn import GCNEncoder, ProjectionHead
from ..graph import Graph, adjacency_matrix, gcn_normalize
from ..run.registry import register_method
from ..tensor import Tensor
from .base import NodeContrastiveMethod

__all__ = ["COSTA"]


@register_method("COSTA", level="node")
class COSTA(NodeContrastiveMethod):
    """COSTA-SV with a pluggable objective (GradGCL-ready)."""

    name = "COSTA"

    def __init__(self, in_features: int, hidden_dim: int = 64,
                 out_dim: int = 32, *, rng: np.random.Generator,
                 sketch_strength: float = 0.5,
                 objective: ContrastiveObjective | None = None,
                 tau: float = 0.5, max_anchors: int = 256):
        super().__init__()
        self.encoder = GCNEncoder(in_features, hidden_dim, out_dim, rng=rng)
        self.projector = ProjectionHead(out_dim, rng=rng)
        self.objective = (objective if objective is not None
                          else InfoNCEObjective(tau=tau, sim="cos"))
        self.sketch_strength = sketch_strength
        self.max_anchors = max_anchors
        self._rng = rng

    def _sketch(self, h: Tensor) -> Tensor:
        """Covariance-preserving random mixing ``(I + s G / sqrt(n)) H``."""
        n = len(h)
        mixing = (np.eye(n) + self.sketch_strength
                  * self._rng.normal(size=(n, n)) / np.sqrt(n))
        return Tensor(mixing) @ h

    def project_views(self, graph: Graph) -> tuple[Tensor, Tensor]:
        adj = gcn_normalize(adjacency_matrix(graph))
        h = self.encoder(Tensor(graph.x), adj)
        n = graph.num_nodes
        if n > self.max_anchors:
            anchors = self._rng.choice(n, size=self.max_anchors,
                                       replace=False)
            anchors.sort()
            h = h[anchors]
        u = self.projector(h)
        v = self.projector(self._sketch(h))
        return u, v

    def training_loss(self, graph: Graph) -> Tensor:
        u, v = self.project_views(graph)
        return self.objective.loss(u, v)

    def node_embeddings(self, graph: Graph) -> Tensor:
        adj = gcn_normalize(adjacency_matrix(graph))
        return self.encoder(Tensor(graph.x), adj)
