"""GraphCL (You et al. 2020): contrastive learning with graph augmentations.

Two stochastically augmented views of each graph are encoded by a shared GIN
encoder, projected, and pulled together with InfoNCE against in-batch
negatives.  This is the canonical data-augmentation-based GCL baseline the
paper enhances.
"""

from __future__ import annotations

import numpy as np

from ..augment import (
    AttributeMask,
    Augmentation,
    EdgePerturb,
    NodeDrop,
    RandomChoice,
    SubgraphSample,
)
from ..core import ContrastiveObjective, InfoNCEObjective
from ..gnn import GINEncoder, ProjectionHead
from ..graph import GraphBatch
from ..pipeline import ViewGenerator, spawn_root
from ..run.registry import register_method
from ..tensor import Tensor
from .base import GraphContrastiveMethod

__all__ = ["GraphCL", "default_augmentation"]


def default_augmentation() -> RandomChoice:
    """GraphCL's default pool: node drop / edge perturb / mask / subgraph."""
    return RandomChoice([
        NodeDrop(0.2),
        EdgePerturb(0.2),
        AttributeMask(0.2),
        SubgraphSample(0.8),
    ])


@register_method("GraphCL", level="graph")
class GraphCL(GraphContrastiveMethod):
    """GraphCL with a pluggable objective (GradGCL-ready).

    Parameters
    ----------
    in_features / hidden_dim / num_layers:
        GIN encoder configuration (graph embedding dim is
        ``hidden_dim * num_layers`` via jumping knowledge).
    augmentation / augmentation2:
        View generators; the second defaults to the same pool.
    objective:
        The contrastive objective; defaults to cosine InfoNCE at tau=0.5.
    """

    name = "GraphCL"

    def __init__(self, in_features: int, hidden_dim: int = 32,
                 num_layers: int = 3, *, rng: np.random.Generator,
                 augmentation: Augmentation | None = None,
                 augmentation2: Augmentation | None = None,
                 objective: ContrastiveObjective | None = None,
                 tau: float = 0.5):
        super().__init__()
        self.encoder = GINEncoder(in_features, hidden_dim, num_layers,
                                  rng=rng)
        self.projector = ProjectionHead(self.encoder.out_features, rng=rng)
        self.objective = (objective if objective is not None
                          else InfoNCEObjective(tau=tau, sim="cos"))
        self.augmentation = (augmentation if augmentation is not None
                             else default_augmentation())
        self.augmentation2 = (augmentation2 if augmentation2 is not None
                              else self.augmentation)
        self._rng = rng
        # Per-graph deterministic view streams (repro.pipeline): bit-identical
        # output at every worker count.  The root consumes one draw from
        # ``rng`` *after* all weight init, so parameters stay byte-identical
        # to the pre-pipeline era.
        self.view_generator = ViewGenerator(self.augmentation,
                                            self.augmentation2,
                                            root=spawn_root(rng))

    def _augmented_views(self, batch: GraphBatch) -> tuple[GraphBatch, GraphBatch]:
        generator = self.view_generator
        if generator is None:
            # Legacy shared-generator path: draws depend on iteration order,
            # so it cannot parallelize; kept for methods that opt out (RGCL)
            # and as the benchmark's pre-pipeline baseline.
            view1 = GraphBatch([self.augmentation(g, self._rng)
                                for g in batch.graphs])
            view2 = GraphBatch([self.augmentation2(g, self._rng)
                                for g in batch.graphs])
            return view1, view2
        pair = batch.__dict__.pop("_precomputed_views", None)
        if pair is None:
            pair = generator.generate(batch)
        pair.apply_choices(self.augmentation, self.augmentation2)
        return pair.view1, pair.view2

    def project_views(self, batch: GraphBatch) -> tuple[Tensor, Tensor]:
        """Projected graph embeddings of two fresh augmented views."""
        view1, view2 = self._augmented_views(batch)
        _, h1 = self.encoder(view1)
        _, h2 = self.encoder(view2)
        return self.projector(h1), self.projector(h2)

    def training_loss(self, batch: GraphBatch) -> Tensor:
        u, v = self.project_views(batch)
        return self.objective.loss(u, v)

    def graph_embeddings(self, batch: GraphBatch) -> Tensor:
        _, h = self.encoder(batch)
        return h
