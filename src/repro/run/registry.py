"""Method registry: the single source of truth for runnable methods.

Every contrastive method class in :mod:`repro.methods` registers itself
with :func:`register_method`, recording its training level (``"graph"`` or
``"node"``) and its constructor signature.  Everything that used to
hardcode method-name lists — the CLI's ``choices=``, dispatch via
``getattr``, sweep loops — now queries this registry instead, so adding a
method is one decorator and zero CLI edits (``scripts/lint_repro.py``
rejects new hardcoded method-name lists outside this module).

Because the registry captures each constructor's signature at registration
time, a :class:`repro.run.RunConfig` can be validated *before* datasets are
loaded: :meth:`MethodEntry.build` passes only the standard dimension
keywords the constructor actually accepts (``hidden_dim`` / ``out_dim`` /
``num_layers``) and rejects unknown overrides with the full parameter list
in the error message.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

__all__ = ["MethodEntry", "register_method", "get_method", "list_methods",
           "method_names", "method_levels"]

LEVELS = ("graph", "node")

#: ``(name, level) -> MethodEntry``; populated by import side effects of
#: :mod:`repro.methods` (see :func:`_ensure_populated`).
_REGISTRY: dict[tuple[str, str], "MethodEntry"] = {}

#: Standard constructor keywords the runner forwards when (and only when)
#: the method's signature declares them.
_STANDARD_KWARGS = ("hidden_dim", "out_dim", "num_layers")


@dataclass(frozen=True)
class MethodEntry:
    """One registered method: class, level, and introspected signature."""

    name: str
    level: str
    cls: type
    signature: inspect.Signature
    summary: str = ""
    accepts: frozenset = field(default_factory=frozenset)

    def build(self, num_features: int, *, rng, **kwargs):
        """Construct the method, forwarding only accepted keywords.

        Standard dimension keywords (``hidden_dim``/``out_dim``/
        ``num_layers``) are dropped silently when the constructor does not
        declare them (e.g. ``MVGRLNode`` takes no ``out_dim``); any *other*
        unknown keyword raises immediately with the accepted set, so a bad
        config fails before a dataset is built.
        """
        forwarded = {}
        for key, value in kwargs.items():
            if value is None:
                continue
            if key in self.accepts:
                forwarded[key] = value
            elif key not in _STANDARD_KWARGS:
                raise TypeError(
                    f"{self.name} ({self.level}) does not accept {key!r}; "
                    f"constructor parameters: {sorted(self.accepts)}")
        return self.cls(num_features, rng=rng, **forwarded)

    def describe(self) -> dict:
        """JSON-able summary row for ``repro run --list-methods``."""
        return {"name": self.name, "level": self.level,
                "class": self.cls.__name__,
                "params": sorted(self.accepts),
                "summary": self.summary}


def register_method(name: str, *, level: str, summary: str = ""):
    """Class decorator adding the method to the global registry.

    Parameters
    ----------
    name:
        Public method name (what ``--method`` accepts).  The same name may
        be registered once per level (MVGRL trains at both).
    level:
        ``"graph"`` (minibatch loop over a graph dataset) or ``"node"``
        (full-graph loop on one large graph).
    summary:
        One-line description shown by ``repro run --list-methods``;
        defaults to the first docstring line.
    """
    if level not in LEVELS:
        raise ValueError(f"level must be one of {LEVELS}, got {level!r}")

    def decorate(cls):
        key = (name, level)
        if key in _REGISTRY and _REGISTRY[key].cls is not cls:
            raise ValueError(
                f"method {name!r} is already registered at level {level!r} "
                f"by {_REGISTRY[key].cls.__name__}")
        signature = inspect.signature(cls.__init__)
        # Subclasses that forward ``*args, **kwargs`` (JOAO, SGCL, GCA)
        # accept everything their bases declare; union over the MRO so the
        # recorded signature reflects what the constructor really takes.
        accepts = set()
        for klass in cls.__mro__:
            init = klass.__dict__.get("__init__")
            if init is None:
                continue
            accepts.update(
                p.name for p in inspect.signature(init).parameters.values()
                if p.kind not in (inspect.Parameter.VAR_POSITIONAL,
                                  inspect.Parameter.VAR_KEYWORD)
                and p.name != "self")
        accepts = frozenset(accepts)
        line = summary
        if not line:
            doc = (cls.__doc__ or "").strip()
            line = doc.splitlines()[0] if doc else ""
        _REGISTRY[key] = MethodEntry(
            name=name, level=level, cls=cls, signature=signature,
            summary=line, accepts=accepts)
        return cls

    return decorate


def _ensure_populated() -> None:
    """Trigger the registration side effects of :mod:`repro.methods`."""
    if not _REGISTRY:
        import repro.methods  # noqa: F401  (registers via decorators)


def get_method(name: str, level: str | None = None) -> MethodEntry:
    """Look up one method, inferring the level when unambiguous.

    Raises ``KeyError`` with the known-name list for typos, and
    ``ValueError`` when ``level=None`` and the name is registered at both
    levels (MVGRL).
    """
    _ensure_populated()
    if level is not None:
        entry = _REGISTRY.get((name, level))
        if entry is None:
            known = method_names(level)
            raise KeyError(
                f"unknown {level}-level method {name!r}; known: {known}")
        return entry
    matches = [e for (n, _), e in sorted(_REGISTRY.items()) if n == name]
    if not matches:
        raise KeyError(f"unknown method {name!r}; known: {method_names()}")
    if len(matches) > 1:
        raise ValueError(
            f"method {name!r} is registered at levels "
            f"{[e.level for e in matches]}; pass level= to disambiguate")
    return matches[0]


def list_methods(level: str | None = None) -> list[MethodEntry]:
    """All registered entries (optionally one level), sorted by name."""
    _ensure_populated()
    entries = [e for e in _REGISTRY.values()
               if level is None or e.level == level]
    return sorted(entries, key=lambda e: (e.name, e.level))


def method_names(level: str | None = None) -> list[str]:
    """Sorted, de-duplicated method names for CLI ``choices=``."""
    return sorted({e.name for e in list_methods(level)})


def method_levels(name: str) -> list[str]:
    """The levels a method name is registered at (empty when unknown)."""
    _ensure_populated()
    return sorted(level for (n, level) in _REGISTRY if n == name)
