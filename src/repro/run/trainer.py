"""The unified training engine behind every experiment in the repo.

One :class:`Trainer` replaces the two near-duplicate loops that used to
live in ``repro.methods.trainer``.  The graph/node difference is a small
*step strategy* object (:class:`GraphSteps`: shuffled minibatch loader
with an in-batch-negatives check; :class:`NodeSteps`: one full-graph step
per epoch), and everything that used to be inlined — early stopping,
journal emission, spectrum probes, user probes, checkpointing — is a
:class:`repro.run.callbacks.Callback`.

The engine preserves the old loops' numbers exactly: the public wrappers
``repro.methods.train_graph_method`` / ``train_node_method`` build a
Trainer and produce bit-identical histories and journals.  On top of that
it adds checkpoint/resume: with ``checkpoint_every=N`` a
:class:`repro.run.state.TrainState` snapshot (parameters, Adam moments,
loader/augmentation RNG states, history, config hash) is written to the
run directory, and ``Trainer.resume(run_dir)`` continues a run such that
the final losses, history, and ts-stripped journal are bit-identical to
an uninterrupted run.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..faults import inject as _inject
from ..graph import Graph, GraphLoader
from ..nn import Adam
from ..obs import RunJournal, Tracer, engine_stats
from ..pipeline import (
    PrefetchLoader,
    StructureCache,
    resolve_workers,
    use_structure_cache,
)
from ..utils import Timer
from ..utils.seed import seeded_rng
from .callbacks import (
    Callback,
    CheckpointCallback,
    EarlyStopping,
    JournalCallback,
    ProbeCallback,
)

__all__ = ["TrainHistory", "Trainer", "GraphSteps", "NodeSteps",
           "gradient_norm", "clip_gradients"]

#: Fault-injection point drilled by the chaos tier: fires at the top of
#: every epoch, before any batch work, so a crash here never leaves a
#: half-logged epoch behind (journal and checkpoint stay in lockstep).
EPOCH_POINT = "train.epoch"


def gradient_norm(parameters) -> float:
    """Global L2 norm over all materialized parameter gradients."""
    total = 0.0
    for p in parameters:
        if p.grad is not None:
            total += float((p.grad ** 2).sum())
    return float(np.sqrt(total))


def clip_gradients(parameters, max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (the quantity the run journal logs).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    parameters = list(parameters)
    norm = gradient_norm(parameters)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in parameters:
            if p.grad is not None:
                p.grad *= scale
    return norm


def _check_finite(loss_value: float, context: str) -> None:
    if not np.isfinite(loss_value):
        raise FloatingPointError(
            f"non-finite loss ({loss_value}) during {context}; check the "
            "learning rate and temperature settings")


@dataclass
class TrainHistory:
    """Per-epoch training record."""

    losses: list[float] = field(default_factory=list)
    parts: list[dict[str, float]] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    probes: list[dict[str, float]] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.epoch_seconds))

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("history is empty")
        return self.losses[-1]

    def to_dict(self) -> dict:
        """JSON-able form for the checkpoint."""
        return {"losses": self.losses, "parts": self.parts,
                "epoch_seconds": self.epoch_seconds, "probes": self.probes,
                "grad_norms": self.grad_norms}

    @classmethod
    def from_dict(cls, data: dict) -> "TrainHistory":
        """Inverse of :meth:`to_dict`."""
        return cls(losses=list(data["losses"]),
                   parts=[dict(p) for p in data["parts"]],
                   epoch_seconds=list(data["epoch_seconds"]),
                   probes=[dict(p) for p in data["probes"]],
                   grad_norms=list(data["grad_norms"]))


def _mean_parts(parts: list[dict[str, float]]) -> dict[str, float]:
    """Mean per key over batch part-dicts, with **sorted** keys so the
    loss_f/loss_g order in histories and journal events is identical
    across processes (set iteration order is not)."""
    if not parts:
        return {}
    keys = sorted(set().union(*parts))
    return {k: float(np.mean([p[k] for p in parts if k in p])) for k in keys}


def _training_flags() -> dict:
    """Dtype/fused-kernel state recorded in every run's config event."""
    from ..tensor import get_default_dtype, use_fused

    return {"dtype": np.dtype(get_default_dtype()).name,
            "fused_kernels": use_fused()}


# ----------------------------------------------------------------------
# Step strategies: the entire graph-level vs node-level difference
# ----------------------------------------------------------------------

class GraphSteps:
    """Minibatch strategy: shuffled loader + in-batch-negatives check."""

    kind = "graph"

    def __init__(self, graphs: Sequence[Graph], *, batch_size: int = 64,
                 seed: int = 0):
        self.graphs = graphs
        self.batch_size = batch_size
        self.seed = seed
        self.loader = GraphLoader(graphs, batch_size=batch_size,
                                  shuffle=True, rng=seeded_rng(seed))

    def batch_source(self, method, prefetch: bool):
        """The per-epoch iterable (double-buffered when prefetching)."""
        if prefetch:
            return PrefetchLoader(self.loader, method.view_generator)
        return self.loader

    def batches(self, source):
        """Yield trainable minibatches (contrastive losses need >= 2
        in-batch graphs to form negatives)."""
        for batch in source:
            if batch.num_graphs < 2:
                continue
            yield batch

    @staticmethod
    def units(batch) -> int:
        return batch.num_graphs

    throughput_unit = "graphs"

    @property
    def num_features(self) -> int:
        """Input feature width (recorded in checkpoints for serving)."""
        return int(self.graphs[0].num_features)

    def embed(self, method) -> np.ndarray:
        return method.embed(self.graphs)

    def journal_fields(self) -> dict:
        return {"num_graphs": len(self.graphs)}

    # -- checkpoint support -------------------------------------------
    def rng_state(self) -> dict:
        """Bit-generator state of the shuffle RNG."""
        return self.loader._rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        self.loader._rng.bit_generator.state = state


class NodeSteps:
    """Full-graph strategy: one optimization step per epoch."""

    kind = "node"

    def __init__(self, graph: Graph):
        self.graph = graph

    def batch_source(self, method, prefetch: bool):
        return (self.graph,)

    def batches(self, source):
        yield from source

    @staticmethod
    def units(graph) -> int:
        return graph.num_nodes

    throughput_unit = "nodes"

    @property
    def num_features(self) -> int:
        """Input feature width (recorded in checkpoints for serving)."""
        return int(self.graph.num_features)

    def embed(self, method) -> np.ndarray:
        return method.embed(self.graph)

    def journal_fields(self) -> dict:
        return {"num_nodes": self.graph.num_nodes}

    def rng_state(self) -> None:
        """Node runs have no loader RNG (full-graph, no shuffling)."""
        return None

    def set_rng_state(self, state) -> None:
        if state is not None:
            raise ValueError("node strategy carries no loader RNG state")


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class Trainer:
    """Callback-driven Adam training engine over a step strategy.

    Parameters mirror the historical loop signatures; ``patience`` /
    ``probe`` / ``journal`` are conveniences that install the matching
    stock callbacks (:class:`EarlyStopping`, :class:`ProbeCallback`,
    :class:`JournalCallback`) so the wrapper functions stay one-liners.
    Additional callbacks run after the stock ones in list order.

    Checkpointing: pass ``checkpoint_every`` and ``run_dir`` (or a
    :class:`CheckpointCallback`).  ``config_hash`` is stamped into each
    snapshot; :meth:`Trainer.resume` verifies it before continuing.
    """

    def __init__(self, method, strategy, *, epochs: int,
                 lr: float = 1e-3, weight_decay: float = 0.0,
                 grad_clip: float | None = None,
                 patience: int | None = None, min_delta: float = 1e-4,
                 probe=None,
                 journal: RunJournal | None = None,
                 spectrum_every: int | None = None,
                 workers: int | None = None,
                 prefetch: bool | None = None,
                 structure_cache: StructureCache | bool | None = None,
                 checkpoint_every: int | None = None,
                 run_dir=None,
                 config_hash: str | None = None,
                 callbacks: Sequence[Callback] = ()):
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.method = method
        self.strategy = strategy
        self.epochs = epochs
        self.grad_clip = grad_clip
        self.journal = journal
        self.config_hash = config_hash
        self.telemetry = journal is not None
        self.optimizer = Adam(method.parameters(), lr=lr,
                              weight_decay=weight_decay)
        # Pipeline resolution happens at construction (matching the old
        # loops' pre-config-event ordering) so resolved workers/prefetch
        # are available to ``log_config`` before ``fit``.
        if strategy.kind != "graph":
            workers, prefetch = 0, False
        self.workers, self.prefetch, self.structure_cache = \
            self._resolve_pipeline(method, workers, prefetch,
                                   structure_cache)
        self.history = TrainHistory()
        self.tracer = Tracer(enabled=self.telemetry)
        self.engine = None               # set while fit() is active
        self.last_throughput: dict = {}
        self.epochs_run = 0
        self.start_epoch = 0
        self.stop_requested = False
        self._engine_restore: dict | None = None
        self._early_stopping: EarlyStopping | None = None
        self._journal_callback: JournalCallback | None = None

        stock: list[Callback] = []
        if probe is not None:
            stock.append(ProbeCallback(probe))
        if journal is not None:
            self._journal_callback = JournalCallback(journal, spectrum_every)
            stock.append(self._journal_callback)
        if patience is not None:
            self._early_stopping = EarlyStopping(patience, min_delta)
            stock.append(self._early_stopping)
        if checkpoint_every is not None:
            if run_dir is None:
                raise ValueError("checkpoint_every requires run_dir")
            stock.append(CheckpointCallback(checkpoint_every, run_dir))
        self.callbacks: list[Callback] = stock + list(callbacks)

    @staticmethod
    def _resolve_pipeline(method, workers, prefetch, structure_cache):
        """Normalize the pipeline knobs (identical to the old loops)."""
        workers = resolve_workers(workers)
        if structure_cache is True:
            structure_cache = StructureCache()
        elif structure_cache is False:
            structure_cache = None
        method.configure_pipeline(workers=workers, cache=structure_cache)
        has_generator = getattr(method, "view_generator", None) is not None
        if prefetch is None:
            prefetch = workers > 0 and has_generator
        prefetch = bool(prefetch) and has_generator
        return workers, prefetch, structure_cache

    # ------------------------------------------------------------------
    # Journal config event
    # ------------------------------------------------------------------
    def log_config(self, **fields) -> None:
        """Emit the journal ``config`` event (no-op without a journal).

        Method identity, the GradGCL weight, and dtype/fused flags are
        introspected; callers add the run-shape fields (dataset sizes,
        epochs, lr, ...) — wrappers pass the legacy field set, ``repro
        run`` passes ``RunConfig.journal_fields()``.  Explicit fields win
        over the introspected ones (a config's ``method`` is the registry
        name, which for MVGRLNode differs from the class name).
        """
        if self.journal is None:
            return
        method = self.method
        objective = getattr(method, "objective", None)
        weight = getattr(objective, "weight", None)
        record = {"kind": self.strategy.kind,
                  "method": type(method).__name__,
                  "method_name": getattr(method, "name",
                                         type(method).__name__),
                  "gradgcl_weight": weight, **_training_flags()}
        record.update(fields)
        self.journal.log("config", **record)

    # ------------------------------------------------------------------
    # Callback services
    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the engine to stop after the current epoch's callbacks."""
        self.stop_requested = True

    def embed(self) -> np.ndarray:
        """Current evaluation-mode embeddings (spectrum probes)."""
        return self.strategy.embed(self.method)

    def find_callback(self, cls) -> Callback | None:
        """First installed callback of the given type, if any."""
        for callback in self.callbacks:
            if isinstance(callback, cls):
                return callback
        return None

    def save_checkpoint(self, run_dir, epoch: int) -> None:
        """Snapshot the full training state after ``epoch`` completed."""
        from .state import TrainState

        TrainState.capture(self, epoch + 1).save(run_dir)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def fit(self) -> TrainHistory:
        """Run epochs ``start_epoch .. epochs-1``; return the history."""
        method = self.method
        optimizer = self.optimizer
        track_norms = self.grad_clip is not None or self.telemetry
        method.train()
        batch_source = self.strategy.batch_source(method, self.prefetch)
        with contextlib.ExitStack() as stack:
            # Pool shutdown must run even on a mid-epoch exception; the
            # active structure cache covers training *and* the final
            # embed/spectrum.
            stack.callback(method.shutdown_pipeline)
            stack.enter_context(use_structure_cache(self.structure_cache))
            self.engine = stack.enter_context(
                engine_stats(enabled=self.telemetry))
            if self._engine_restore:
                # Resumed run: re-seed the op counters so the final engine
                # event equals an uninterrupted run's.
                for key, value in self._engine_restore.items():
                    setattr(self.engine, key, value)
            for callback in self.callbacks:
                callback.on_train_begin(self)
            for epoch in range(self.start_epoch, self.epochs):
                _inject(EPOCH_POINT)
                losses: list[float] = []
                parts_acc: list[dict[str, float]] = []
                norms: list[float] = []
                units_seen = 0
                with self.tracer.trace("epoch"), Timer() as timer:
                    for item in self.strategy.batches(batch_source):
                        optimizer.zero_grad()
                        with self.tracer.trace("forward"):
                            loss = method.training_loss(item)
                        _check_finite(loss.item(), f"epoch {epoch}")
                        with self.tracer.trace("backward"):
                            loss.backward()
                        if self.grad_clip is not None:
                            norms.append(clip_gradients(optimizer.params,
                                                        self.grad_clip))
                        elif track_norms:
                            norms.append(gradient_norm(optimizer.params))
                        with self.tracer.trace("step"):
                            optimizer.step()
                        losses.append(loss.item())
                        units_seen += self.strategy.units(item)
                        parts = getattr(method.objective, "last_parts",
                                        None)
                        if parts:
                            parts_acc.append(dict(parts))
                history = self.history
                history.losses.append(float(np.mean(losses)))
                history.parts.append(_mean_parts(parts_acc))
                history.epoch_seconds.append(timer.elapsed)
                if norms:
                    history.grad_norms.append(float(np.mean(norms)))
                self.epochs_run = epoch + 1
                unit = self.strategy.throughput_unit
                self.last_throughput = {
                    f"{unit}_per_sec":
                        units_seen / max(timer.elapsed, 1e-12),
                    f"{unit}_seen": units_seen}
                method.on_epoch_end(epoch, history.losses[-1])
                for callback in self.callbacks:
                    callback.on_epoch_end(self, epoch)
                if self.stop_requested:
                    break
            for callback in self.callbacks:
                callback.on_train_end(self)
        return self.history

    # ------------------------------------------------------------------
    # Resume
    # ------------------------------------------------------------------
    @classmethod
    def resume(cls, run_dir, **overrides) -> "Trainer":
        """Rebuild a trainer from ``run_dir``'s config + checkpoint.

        Reconstructs the method and dataset from the stored
        ``config.json`` (via the registry), restores the
        :class:`~repro.run.state.TrainState` snapshot — parameters, Adam
        moments, RNG streams, history, early-stopping counters — and
        reopens the journal in append mode.  Calling :meth:`fit` then
        continues the run; losses, history, and the ts-stripped journal
        come out bit-identical to a never-interrupted run.
        """
        from .runner import prepare_resume

        return prepare_resume(run_dir, **overrides)
