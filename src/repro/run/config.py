"""Frozen run configuration with a JSON round-trip.

A :class:`RunConfig` captures everything needed to reproduce a training
run: method + level, dataset + scale, the GradGCL weight ``a``, optimizer
hyperparameters, early-stopping knobs, pipeline/cache settings, and
journal/checkpoint cadence.  ``repro run <config.json>`` and
``repro run --method SimGRACE --weight 0.5 ...`` both build one; the
``train-graph`` / ``train-node`` / ``sweep`` subcommands are thin shims
that construct the equivalent config.

Level-dependent defaults (a node run wants ``lr=3e-3`` and ``epochs=40``
where a graph run wants ``1e-3`` / ``20``) are left as ``None`` in the
dataclass and filled by :meth:`RunConfig.resolve`, which also infers the
level from the method registry.  ``config_hash`` fingerprints the resolved
config; checkpoints embed it so ``Trainer.resume`` refuses to continue a
run under different hyperparameters.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from .registry import get_method, method_levels

__all__ = ["RunConfig", "CONFIG_FILENAME"]

CONFIG_FILENAME = "config.json"

#: Defaults that depend on the training level, mirroring the historical
#: ``train-graph`` / ``train-node`` CLI defaults exactly.
_LEVEL_DEFAULTS = {
    "graph": {"epochs": 20, "lr": 1e-3, "hidden_dim": 16, "out_dim": None,
              "num_layers": 2, "batch_size": 32},
    "node": {"epochs": 40, "lr": 3e-3, "hidden_dim": 32, "out_dim": 16,
             "num_layers": None, "batch_size": None},
}


@dataclass(frozen=True)
class RunConfig:
    """Immutable description of one training run (JSON round-trippable)."""

    method: str = "SimGRACE"
    dataset: str = "MUTAG"
    level: str | None = None          # inferred from the registry when None
    scale: str = "small"
    weight: float = 0.0               # GradGCL gradient weight ``a`` (Eq. 18)
    epochs: int | None = None
    batch_size: int | None = None     # graph-level only
    lr: float | None = None
    weight_decay: float = 0.0
    grad_clip: float | None = None
    patience: int | None = None
    min_delta: float = 1e-4
    seed: int = 0
    hidden_dim: int | None = None
    out_dim: int | None = None        # node-level only
    num_layers: int | None = None     # graph-level only
    workers: int | None = None        # None defers to REPRO_WORKERS
    eval_workers: int | None = None   # None defers to REPRO_EVAL_WORKERS
    cache: bool = True
    cache_entries: int | None = None
    run_dir: str | None = None        # journal + checkpoint directory
    spectrum_every: int | None = None
    checkpoint_every: int | None = None
    save: str | None = None           # encoder .npz path after training

    # ------------------------------------------------------------------
    # Validation / resolution
    # ------------------------------------------------------------------
    def __post_init__(self):
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(
                f"weight must be in [0, 1], got {self.weight}")
        if self.epochs is not None and self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.level is not None and self.level not in ("graph", "node"):
            raise ValueError(
                f"level must be 'graph' or 'node', got {self.level!r}")
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1, got "
                                 f"{self.checkpoint_every}")
            if self.run_dir is None:
                raise ValueError("checkpoint_every requires run_dir (the "
                                 "checkpoint lives in the run directory)")

    def resolve(self) -> "RunConfig":
        """Fill level-dependent defaults; validate against the registry.

        Returns a new config with ``level``, ``epochs``, ``lr``,
        dimension fields, and ``batch_size`` all concrete.  Raises early
        (before any dataset/model work) when the method is unknown or the
        level is ambiguous.
        """
        level = self.level
        if level is None:
            levels = method_levels(self.method)
            if not levels:
                get_method(self.method)  # raises KeyError with known names
            if len(levels) > 1:
                raise ValueError(
                    f"method {self.method!r} trains at levels {levels}; "
                    "set level explicitly")
            level = levels[0]
        get_method(self.method, level)  # validates the (name, level) pair
        defaults = _LEVEL_DEFAULTS[level]
        filled = {key: (getattr(self, key) if getattr(self, key) is not None
                        else default)
                  for key, default in defaults.items()}
        return dataclasses.replace(self, level=level, **filled)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-dict form (JSON-native values only)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunConfig":
        """Inverse of :meth:`to_dict`; unknown keys raise with the field
        list so config typos fail loudly."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown RunConfig field(s) {sorted(unknown)}; "
                f"known fields: {sorted(known)}")
        return cls(**data)

    @classmethod
    def from_file(cls, path: str | Path) -> "RunConfig":
        """Load a config from a JSON file."""
        with Path(path).open() as fh:
            return cls.from_dict(json.load(fh))

    # Named to_file (not save) because ``save`` is a config *field*: the
    # dataclass machinery would otherwise take the method object as the
    # field default.
    def to_file(self, path: str | Path) -> Path:
        """Write the config as pretty JSON (returns the path written)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")
        return path

    #: Fields that do not influence the training numbers: storage
    #: locations, execution topology (the pipeline and the evaluation
    #: engine are bit-identical at every worker/cache setting), and
    #: journal/checkpoint cadence.
    _NON_TRAINING_FIELDS = ("run_dir", "save", "workers", "eval_workers",
                            "cache", "cache_entries", "spectrum_every",
                            "checkpoint_every")

    def config_hash(self) -> str:
        """Stable fingerprint of the training-relevant fields.

        Non-training fields are excluded: moving a run directory, changing
        the worker count, or altering the checkpoint cadence must not
        invalidate a checkpoint — the same numbers come out regardless.
        """
        payload = {k: v for k, v in self.resolve().to_dict().items()
                   if k not in self._NON_TRAINING_FIELDS}
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    def journal_fields(self) -> dict:
        """Fields for the journal ``config`` event, from the config itself.

        The trainer adds the method/dtype introspection fields on top
        (``method_name``, ``gradgcl_weight``, ``dtype``, ...).
        """
        resolved = self.resolve()
        fields = {k: v for k, v in resolved.to_dict().items()
                  if k not in ("run_dir", "save") and v is not None}
        fields["config_hash"] = self.config_hash()
        return fields
