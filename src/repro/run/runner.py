"""Config-driven experiment execution: build, run, evaluate, resume.

This module turns a :class:`~repro.run.RunConfig` into a finished
experiment: dataset loading, registry-based method construction, GradGCL
wrapping, journal + checkpoint wiring, training via the unified
:class:`~repro.run.Trainer`, and the level-appropriate evaluation
protocol (SVM for graph embeddings, linear probe for node embeddings).

``repro run`` calls :func:`execute_run` (or :func:`resume_run` with
``--resume``); the legacy ``train-graph`` / ``train-node`` / ``sweep``
subcommands are shims that construct the equivalent config and call the
same entry points.  Heavy imports (datasets, methods, eval) happen inside
functions so that importing :mod:`repro.run` stays light.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .callbacks import StopAfter, TrainingInterrupted
from .config import CONFIG_FILENAME, RunConfig
from .registry import get_method
from .state import TrainState

__all__ = ["RunResult", "execute_run", "resume_run", "prepare_resume"]


@dataclass
class RunResult:
    """Outcome of one :func:`execute_run` / :func:`resume_run` call."""

    config: RunConfig                 # the resolved config that ran
    history: object                   # TrainHistory (None when interrupted
    #                                   before any epoch completed)
    accuracy: float | None = None
    accuracy_std: float | None = None
    effective_rank: float | None = None   # graph-level runs only
    interrupted: bool = False
    journal_path: Path | None = None
    saved_to: Path | None = None


@dataclass
class _RunContext:
    """Everything a run needs between build and finish."""

    config: RunConfig
    trainer: object
    method: object
    dataset: object
    journal: object | None


def _build(config: RunConfig, *, append_journal: bool = False,
           stop_after: int | None = None) -> _RunContext:
    """Construct dataset, method, journal, and trainer from a config."""
    from ..core import gradgcl
    from ..obs import RunJournal
    from ..pipeline import StructureCache
    from ..utils.seed import seeded_rng
    from .trainer import GraphSteps, NodeSteps, Trainer

    config = config.resolve()
    entry = get_method(config.method, config.level)
    if config.level == "graph":
        from ..datasets import load_tu_dataset

        dataset = load_tu_dataset(config.dataset, scale=config.scale,
                                  seed=config.seed)
        strategy = GraphSteps(dataset.graphs, batch_size=config.batch_size,
                              seed=config.seed)
    else:
        from ..datasets import load_node_dataset

        dataset = load_node_dataset(config.dataset, scale=config.scale,
                                    seed=config.seed)
        strategy = NodeSteps(dataset.graph)
    method = entry.build(dataset.num_features, rng=seeded_rng(config.seed),
                         hidden_dim=config.hidden_dim,
                         out_dim=config.out_dim,
                         num_layers=config.num_layers)
    if config.weight > 0:
        method = gradgcl(method, config.weight)
    journal = None
    if config.run_dir is not None:
        journal = RunJournal(config.run_dir, append=append_journal)
    cache = (StructureCache(max_entries=config.cache_entries)
             if config.cache else None)
    callbacks = [StopAfter(stop_after)] if stop_after is not None else []
    trainer = Trainer(method, strategy, epochs=config.epochs,
                      lr=config.lr, weight_decay=config.weight_decay,
                      grad_clip=config.grad_clip, patience=config.patience,
                      min_delta=config.min_delta, journal=journal,
                      spectrum_every=config.spectrum_every,
                      workers=config.workers, structure_cache=cache,
                      checkpoint_every=config.checkpoint_every,
                      run_dir=config.run_dir,
                      config_hash=config.config_hash(),
                      callbacks=callbacks)
    return _RunContext(config=config, trainer=trainer, method=method,
                       dataset=dataset, journal=journal)


def _finish(ctx: _RunContext) -> RunResult:
    """Train (or continue training), evaluate, save, close the journal."""
    config = ctx.config
    journal_path = ctx.journal.path if ctx.journal is not None else None
    try:
        try:
            history = ctx.trainer.fit()
        except (TrainingInterrupted, KeyboardInterrupt):
            # Torn down like a real kill: no end-of-run journal events.
            # The latest checkpoint (if any) stays behind for --resume.
            return RunResult(config=config, history=ctx.trainer.history,
                             interrupted=True, journal_path=journal_path)
        result = _evaluate(ctx, history)
    finally:
        if ctx.journal is not None:
            ctx.journal.close()
    if config.save:
        from ..nn import save_module

        # MVGRLNode exposes no ``.encoder``; fall back to the full module.
        target = getattr(ctx.method, "encoder", ctx.method)
        result.saved_to = save_module(target, config.save)
    return result


def _eval_journal_fields() -> dict:
    """Engine telemetry for the journal ``eval`` event (may be empty)."""
    from ..eval import last_eval_stats

    stats = last_eval_stats()
    return stats.to_fields() if stats is not None else {}


def _log_eval(ctx: _RunContext, **fields) -> None:
    """Emit the ``eval`` event plus a ``note`` for silently skipped folds.

    The trainer's end-of-run ``trace`` event predates evaluation, so the
    ``evaluate`` span (when telemetry is on) gets its own ``trace`` event
    here, restricted to evaluation paths.
    """
    if ctx.journal is None:
        return
    extra = _eval_journal_fields()
    ctx.journal.log("eval", dataset=ctx.config.dataset, **fields, **extra)
    skipped = extra.get("eval_folds_skipped", 0)
    if skipped:
        ctx.journal.log(
            "note",
            message=f"evaluation skipped {skipped} degenerate fold(s) "
                    "whose training split had fewer than two classes; the "
                    "reported mean/std covers the remaining folds only",
            folds_skipped=skipped)
    spans = {path: stats for path, stats
             in ctx.trainer.tracer.snapshot().items()
             if path.split("/", 1)[0] == "evaluate"}
    if spans:
        ctx.journal.log("trace", spans=spans)


def _evaluate(ctx: _RunContext, history) -> RunResult:
    """Level-appropriate downstream evaluation + journal ``eval`` event."""
    config = ctx.config
    method, dataset, journal = ctx.method, ctx.dataset, ctx.journal
    journal_path = journal.path if journal is not None else None
    tracer = ctx.trainer.tracer
    if config.level == "graph":
        from ..core import effective_rank
        from ..eval import evaluate_graph_embeddings

        with tracer.trace("evaluate"):
            embeddings = method.embed(dataset.graphs)
            acc, std = evaluate_graph_embeddings(
                embeddings, dataset.labels(), seed=config.seed,
                eval_workers=config.eval_workers)
        rank = effective_rank(embeddings)
        _log_eval(ctx, accuracy=acc, accuracy_std=std, effective_rank=rank)
        return RunResult(config=config, history=history, accuracy=acc,
                         accuracy_std=std, effective_rank=rank,
                         journal_path=journal_path)
    from ..eval import evaluate_node_embeddings

    with tracer.trace("evaluate"):
        acc, std = evaluate_node_embeddings(method.embed(dataset.graph),
                                            dataset.labels(),
                                            dataset.train_mask,
                                            dataset.test_mask,
                                            seed=config.seed)
    _log_eval(ctx, accuracy=acc, accuracy_std=std)
    return RunResult(config=config, history=history, accuracy=acc,
                     accuracy_std=std, journal_path=journal_path)


def execute_run(config: RunConfig, *,
                stop_after: int | None = None) -> RunResult:
    """Run a config from scratch (the ``repro run`` entry point).

    When the config names a ``run_dir``, the resolved config is persisted
    there as ``config.json`` so the run can later be resumed (or simply
    reproduced) from the directory alone.
    """
    config = config.resolve()
    ctx = _build(config, stop_after=stop_after)
    if config.run_dir is not None:
        config.to_file(Path(config.run_dir) / CONFIG_FILENAME)
    ctx.trainer.log_config(**config.journal_fields())
    return _finish(ctx)


def resume_run(run_dir: str | Path, *,
               stop_after: int | None = None) -> RunResult:
    """Continue an interrupted run from its directory.

    Rebuilds everything from ``<run_dir>/config.json``, restores the
    checkpoint, reopens the journal in append mode (the ``config`` event
    is *not* re-emitted), and trains the remaining epochs — producing a
    journal bit-identical (modulo wall-clock fields) to a run that was
    never interrupted.
    """
    import dataclasses

    run_dir = Path(run_dir)
    config = RunConfig.from_file(run_dir / CONFIG_FILENAME)
    # The directory may have moved since the run started; the passed path
    # wins (run_dir is excluded from the config hash for this reason).
    config = dataclasses.replace(config, run_dir=str(run_dir))
    ctx = _build(config, append_journal=True, stop_after=stop_after)
    state = TrainState.load(run_dir)
    state.restore(ctx.trainer)
    if ctx.trainer.start_epoch >= ctx.trainer.epochs:
        raise ValueError(
            f"run in {run_dir} already completed "
            f"{ctx.trainer.start_epoch}/{ctx.trainer.epochs} epochs; "
            "nothing to resume")
    return _finish(ctx)


def prepare_resume(run_dir: str | Path, **overrides):
    """Restore a ready-to-``fit()`` trainer (``Trainer.resume`` backend).

    ``overrides`` replace config fields (e.g. extend ``epochs``) before the
    trainer is rebuilt; the checkpoint's config hash is only enforced when
    no overrides are given, since overriding is an explicit opt-out.
    """
    import dataclasses

    run_dir = Path(run_dir)
    config = RunConfig.from_file(run_dir / CONFIG_FILENAME)
    if overrides:
        config = dataclasses.replace(config.resolve(), **overrides)
    ctx = _build(config, append_journal=True)
    state = TrainState.load(run_dir)
    if overrides:
        state.meta["config_hash"] = None
    state.restore(ctx.trainer)
    return ctx.trainer
