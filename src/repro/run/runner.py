"""Config-driven experiment execution: build, run, evaluate, resume.

This module turns a :class:`~repro.run.RunConfig` into a finished
experiment: dataset loading, registry-based method construction, GradGCL
wrapping, journal + checkpoint wiring, training via the unified
:class:`~repro.run.Trainer`, and the level-appropriate evaluation
protocol (SVM for graph embeddings, linear probe for node embeddings).

``repro run`` calls :func:`execute_run` (or :func:`resume_run` with
``--resume``); the legacy ``train-graph`` / ``train-node`` / ``sweep``
subcommands are shims that construct the equivalent config and call the
same entry points.  Heavy imports (datasets, methods, eval) happen inside
functions so that importing :mod:`repro.run` stays light.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from pathlib import Path

from ..faults import FaultInjected
from ..faults import record as _record_fault
from .callbacks import StopAfter, TrainingInterrupted
from .config import CONFIG_FILENAME, RunConfig
from .registry import get_method
from .state import TrainState

__all__ = ["RunResult", "execute_run", "resume_run", "prepare_resume"]

#: Exceptions :func:`execute_run` treats as transient when ``retries > 0``:
#: chaos-injected faults and worker/IO failures.  Anything else (config
#: errors, non-finite losses, interrupts) fails the run immediately.
RECOVERABLE_FAULTS = (FaultInjected, OSError)


@dataclass
class RunResult:
    """Outcome of one :func:`execute_run` / :func:`resume_run` call."""

    config: RunConfig                 # the resolved config that ran
    history: object                   # TrainHistory (None when interrupted
    #                                   before any epoch completed)
    accuracy: float | None = None
    accuracy_std: float | None = None
    effective_rank: float | None = None   # graph-level runs only
    interrupted: bool = False
    journal_path: Path | None = None
    saved_to: Path | None = None


@dataclass
class _RunContext:
    """Everything a run needs between build and finish."""

    config: RunConfig
    trainer: object
    method: object
    dataset: object
    journal: object | None


def _build(config: RunConfig, *, append_journal: bool = False,
           stop_after: int | None = None) -> _RunContext:
    """Construct dataset, method, journal, and trainer from a config."""
    from ..core import gradgcl
    from ..obs import RunJournal
    from ..pipeline import StructureCache
    from ..utils.seed import seeded_rng
    from .trainer import GraphSteps, NodeSteps, Trainer

    config = config.resolve()
    entry = get_method(config.method, config.level)
    if config.level == "graph":
        from ..datasets import load_tu_dataset

        dataset = load_tu_dataset(config.dataset, scale=config.scale,
                                  seed=config.seed)
        strategy = GraphSteps(dataset.graphs, batch_size=config.batch_size,
                              seed=config.seed)
    else:
        from ..datasets import load_node_dataset

        dataset = load_node_dataset(config.dataset, scale=config.scale,
                                    seed=config.seed)
        strategy = NodeSteps(dataset.graph)
    method = entry.build(dataset.num_features, rng=seeded_rng(config.seed),
                         hidden_dim=config.hidden_dim,
                         out_dim=config.out_dim,
                         num_layers=config.num_layers)
    if config.weight > 0:
        method = gradgcl(method, config.weight)
    journal = None
    if config.run_dir is not None:
        journal = RunJournal(config.run_dir, append=append_journal)
    cache = (StructureCache(max_entries=config.cache_entries)
             if config.cache else None)
    callbacks = [StopAfter(stop_after)] if stop_after is not None else []
    trainer = Trainer(method, strategy, epochs=config.epochs,
                      lr=config.lr, weight_decay=config.weight_decay,
                      grad_clip=config.grad_clip, patience=config.patience,
                      min_delta=config.min_delta, journal=journal,
                      spectrum_every=config.spectrum_every,
                      workers=config.workers, structure_cache=cache,
                      checkpoint_every=config.checkpoint_every,
                      run_dir=config.run_dir,
                      config_hash=config.config_hash(),
                      callbacks=callbacks)
    return _RunContext(config=config, trainer=trainer, method=method,
                       dataset=dataset, journal=journal)


def _finish(ctx: _RunContext) -> RunResult:
    """Train (or continue training), evaluate, save, close the journal."""
    config = ctx.config
    journal_path = ctx.journal.path if ctx.journal is not None else None
    try:
        try:
            history = ctx.trainer.fit()
        except (TrainingInterrupted, KeyboardInterrupt):
            # Torn down like a real kill: no end-of-run journal events.
            # The latest checkpoint (if any) stays behind for --resume.
            return RunResult(config=config, history=ctx.trainer.history,
                             interrupted=True, journal_path=journal_path)
        result = _evaluate(ctx, history)
    finally:
        if ctx.journal is not None:
            ctx.journal.close()
    if config.save:
        from ..nn import save_module

        # MVGRLNode exposes no ``.encoder``; fall back to the full module.
        target = getattr(ctx.method, "encoder", ctx.method)
        result.saved_to = save_module(target, config.save)
    return result


def _eval_journal_fields() -> dict:
    """Engine telemetry for the journal ``eval`` event (may be empty)."""
    from ..eval import last_eval_stats

    stats = last_eval_stats()
    return stats.to_fields() if stats is not None else {}


def _log_eval(ctx: _RunContext, **fields) -> None:
    """Emit the ``eval`` event plus a ``note`` for silently skipped folds.

    The trainer's end-of-run ``trace`` event predates evaluation, so the
    ``evaluate`` span (when telemetry is on) gets its own ``trace`` event
    here, restricted to evaluation paths.
    """
    if ctx.journal is None:
        return
    extra = _eval_journal_fields()
    ctx.journal.log("eval", dataset=ctx.config.dataset, **fields, **extra)
    skipped = extra.get("eval_folds_skipped", 0)
    if skipped:
        ctx.journal.log(
            "note",
            message=f"evaluation skipped {skipped} degenerate fold(s) "
                    "whose training split had fewer than two classes; the "
                    "reported mean/std covers the remaining folds only",
            folds_skipped=skipped)
    spans = {path: stats for path, stats
             in ctx.trainer.tracer.snapshot().items()
             if path.split("/", 1)[0] == "evaluate"}
    if spans:
        ctx.journal.log("trace", spans=spans)


def _evaluate(ctx: _RunContext, history) -> RunResult:
    """Level-appropriate downstream evaluation + journal ``eval`` event."""
    config = ctx.config
    method, dataset, journal = ctx.method, ctx.dataset, ctx.journal
    journal_path = journal.path if journal is not None else None
    tracer = ctx.trainer.tracer
    if config.level == "graph":
        from ..core import effective_rank
        from ..eval import evaluate_graph_embeddings

        with tracer.trace("evaluate"):
            embeddings = method.embed(dataset.graphs)
            acc, std = evaluate_graph_embeddings(
                embeddings, dataset.labels(), seed=config.seed,
                eval_workers=config.eval_workers)
        rank = effective_rank(embeddings)
        _log_eval(ctx, accuracy=acc, accuracy_std=std, effective_rank=rank)
        return RunResult(config=config, history=history, accuracy=acc,
                         accuracy_std=std, effective_rank=rank,
                         journal_path=journal_path)
    from ..eval import evaluate_node_embeddings

    with tracer.trace("evaluate"):
        acc, std = evaluate_node_embeddings(method.embed(dataset.graph),
                                            dataset.labels(),
                                            dataset.train_mask,
                                            dataset.test_mask,
                                            seed=config.seed)
    _log_eval(ctx, accuracy=acc, accuracy_std=std)
    return RunResult(config=config, history=history, accuracy=acc,
                     accuracy_std=std, journal_path=journal_path)


def execute_run(config: RunConfig, *, stop_after: int | None = None,
                retries: int = 0) -> RunResult:
    """Run a config from scratch (the ``repro run`` entry point).

    When the config names a ``run_dir``, the resolved config is persisted
    there as ``config.json`` so the run can later be resumed (or simply
    reproduced) from the directory alone.

    ``retries=N`` arms fault tolerance: a run that dies with a
    :data:`RECOVERABLE_FAULTS` exception is resumed from its last
    checkpoint up to N times (``faults.retries`` counts each attempt).
    This requires a ``run_dir`` — checkpoints are the recovery point — and
    forces ``checkpoint_every=1`` when the config leaves it unset, so at
    most one epoch of work is ever lost.  The journal is truncated back to
    the checkpoint on every resume, so the finished journal is
    canonically identical to a fault-free run's (see
    ``docs/robustness.md``).
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    config = config.resolve()
    if retries:
        if config.run_dir is None:
            raise ValueError(
                "retries requires run_dir: resume recovers from the "
                "checkpoints written there")
        if config.checkpoint_every is None:
            config = dataclasses.replace(config, checkpoint_every=1)
    ctx = _build(config, stop_after=stop_after)
    if config.run_dir is not None:
        config.to_file(Path(config.run_dir) / CONFIG_FILENAME)
    ctx.trainer.log_config(**config.journal_fields())
    try:
        return _finish(ctx)
    except RECOVERABLE_FAULTS as exc:
        if not retries:
            raise
        last_error: BaseException = exc
    for _ in range(retries):
        _record_fault("retries")
        try:
            return _resume_after_fault(config.run_dir,
                                       stop_after=stop_after)
        except RECOVERABLE_FAULTS as exc:
            last_error = exc
    raise last_error


def _truncate_journal_for_resume(run_dir: Path, start_epoch: int) -> None:
    """Rewind the journal to match the checkpoint we are resuming from.

    A fault can strike anywhere, so the journal may hold epoch events the
    checkpoint never saw (or end-of-run events from a crash during
    evaluation).  Keep only what the resumed run will *not* re-emit — the
    ``config`` event and ``epoch``/``spectrum`` events from epochs
    before ``start_epoch`` — and drop the rest; the resumed run
    regenerates it, leaving one seamless record.
    """
    import json

    from ..obs.journal import JOURNAL_FILENAME

    path = Path(run_dir) / JOURNAL_FILENAME
    if not path.exists():
        return
    kept = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            kind = event.get("event")
            if kind == "config":
                kept.append(line)
            elif (kind in ("epoch", "spectrum")
                    and event.get("epoch", start_epoch) < start_epoch):
                kept.append(line)
    path.write_text("".join(f"{line}\n" for line in kept))


def _resume_after_fault(run_dir: str | Path, *,
                        stop_after: int | None = None) -> RunResult:
    """One recovery attempt: rewind the journal, restore, train on.

    A crash before the first checkpoint restarts from scratch (minus the
    already-journaled ``config`` event); otherwise training continues from
    the checkpointed epoch, bit-identical to a fault-free run by the
    resume contract.
    """
    run_dir = Path(run_dir)
    config = RunConfig.from_file(run_dir / CONFIG_FILENAME)
    config = dataclasses.replace(config, run_dir=str(run_dir))
    try:
        state = TrainState.load(run_dir)
    except FileNotFoundError:
        state = None
    start_epoch = state.epoch if state is not None else 0
    _truncate_journal_for_resume(run_dir, start_epoch)
    ctx = _build(config, append_journal=True, stop_after=stop_after)
    if state is not None:
        state.restore(ctx.trainer)
    return _finish(ctx)


def resume_run(run_dir: str | Path, *,
               stop_after: int | None = None) -> RunResult:
    """Continue an interrupted run from its directory.

    Rebuilds everything from ``<run_dir>/config.json``, restores the
    checkpoint, reopens the journal in append mode (the ``config`` event
    is *not* re-emitted), and trains the remaining epochs — producing a
    journal bit-identical (modulo wall-clock fields) to a run that was
    never interrupted.
    """
    import dataclasses

    run_dir = Path(run_dir)
    config = RunConfig.from_file(run_dir / CONFIG_FILENAME)
    # The directory may have moved since the run started; the passed path
    # wins (run_dir is excluded from the config hash for this reason).
    config = dataclasses.replace(config, run_dir=str(run_dir))
    ctx = _build(config, append_journal=True, stop_after=stop_after)
    state = TrainState.load(run_dir)
    state.restore(ctx.trainer)
    if ctx.trainer.start_epoch >= ctx.trainer.epochs:
        raise ValueError(
            f"run in {run_dir} already completed "
            f"{ctx.trainer.start_epoch}/{ctx.trainer.epochs} epochs; "
            "nothing to resume")
    return _finish(ctx)


def prepare_resume(run_dir: str | Path, **overrides):
    """Restore a ready-to-``fit()`` trainer (``Trainer.resume`` backend).

    ``overrides`` replace config fields (e.g. extend ``epochs``) before the
    trainer is rebuilt; the checkpoint's config hash is only enforced when
    no overrides are given, since overriding is an explicit opt-out.
    """
    import dataclasses

    run_dir = Path(run_dir)
    config = RunConfig.from_file(run_dir / CONFIG_FILENAME)
    if overrides:
        config = dataclasses.replace(config.resolve(), **overrides)
    ctx = _build(config, append_journal=True)
    state = TrainState.load(run_dir)
    if overrides:
        state.meta["config_hash"] = None
    state.restore(ctx.trainer)
    return ctx.trainer
