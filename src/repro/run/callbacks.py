"""Callback protocol for the unified :class:`repro.run.Trainer`.

Everything that used to be inlined into the two training loops — early
stopping, journal emission, spectrum probes, user probes, checkpointing —
is a :class:`Callback` with three hooks:

* ``on_train_begin(trainer)`` — after the pipeline is resolved, before the
  first epoch;
* ``on_epoch_end(trainer, epoch)`` — after the epoch's history entry is
  recorded and ``method.on_epoch_end`` ran; callbacks may call
  ``trainer.request_stop()`` to end training after this epoch;
* ``on_train_end(trainer)`` — once, after the last epoch (also on early
  stop), still inside the trainer's pipeline/cache context.

Callback order matters and the trainer preserves list order; the stock
ordering is probes -> journal -> early stopping -> checkpoint, so the
journal sees every epoch *before* a stop decision and checkpoints capture
the early-stopping counters *after* they were updated.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = ["Callback", "EarlyStopping", "ProbeCallback", "JournalCallback",
           "CheckpointCallback", "StopAfter", "TrainingInterrupted"]


class TrainingInterrupted(RuntimeError):
    """Raised to abandon a run mid-training (checkpoint already on disk).

    ``repro run --stop-after N`` raises this to drill the interrupt/resume
    path; a resumed run must then reproduce the uninterrupted journal
    bit-for-bit (modulo wall-clock fields).
    """


class Callback:
    """Base class: all hooks are no-ops, subclass what you need."""

    def on_train_begin(self, trainer) -> None:
        """Called once before the first (or first resumed) epoch."""

    def on_epoch_end(self, trainer, epoch: int) -> None:
        """Called after every completed epoch (absolute index)."""

    def on_train_end(self, trainer) -> None:
        """Called once after the final epoch, inside the pipeline context."""


class ProbeCallback(Callback):
    """Append ``probe(method)``'s dict to ``history.probes`` periodically.

    ``every`` thins the cadence for expensive probes (e.g. a full
    downstream evaluation): the probe runs after epochs ``every - 1``,
    ``2 * every - 1``, ... and always after the final epoch, so a run's
    last state is probed regardless of alignment.
    """

    def __init__(self, probe: Callable, every: int = 1):
        if every < 1:
            raise ValueError(f"probe every must be >= 1, got {every}")
        self.probe = probe
        self.every = every

    def on_epoch_end(self, trainer, epoch: int) -> None:
        done = epoch + 1
        if (done % self.every == 0 or done >= trainer.epochs
                or trainer.stop_requested):
            trainer.history.probes.append(self.probe(trainer.method))


class EarlyStopping(Callback):
    """Stop when the epoch loss plateaus (same rule the old loop inlined).

    Training halts once the loss has not improved by more than
    ``min_delta`` for ``patience`` consecutive epochs.  The counters are
    part of the checkpointable state so a resumed run continues the same
    plateau count instead of resetting it.
    """

    def __init__(self, patience: int, min_delta: float = 1e-4):
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = min_delta
        self.best_loss = float(np.inf)
        self.stall = 0

    def on_epoch_end(self, trainer, epoch: int) -> None:
        loss = trainer.history.losses[-1]
        if loss < self.best_loss - self.min_delta:
            self.best_loss = loss
            self.stall = 0
        else:
            self.stall += 1
            if self.stall >= self.patience:
                trainer.request_stop()

    # -- checkpoint support -------------------------------------------
    def snapshot(self) -> dict:
        """JSON-able counter state for the checkpoint."""
        return {"best_loss": float(self.best_loss), "stall": self.stall}

    def restore(self, state: dict) -> None:
        """Reinstall counters captured by :meth:`snapshot`."""
        self.best_loss = float(state["best_loss"])
        self.stall = int(state["stall"])


class JournalCallback(Callback):
    """Stream per-epoch / spectrum / end-of-run events to a RunJournal.

    The event schema is unchanged from the inlined era (see
    ``docs/observability.md``); the ``config`` event is emitted separately
    by :meth:`Trainer.log_config` so resumed runs can skip it.
    """

    def __init__(self, journal, spectrum_every: int | None = None):
        self.journal = journal
        self.spectrum_every = spectrum_every

    def on_epoch_end(self, trainer, epoch: int) -> None:
        history = trainer.history
        record = {"epoch": epoch, "loss": history.losses[-1],
                  "seconds": history.epoch_seconds[-1],
                  **history.parts[-1], **trainer.last_throughput}
        if history.grad_norms:
            record["grad_norm"] = history.grad_norms[-1]
        self.journal.log("epoch", **record)
        if (self.spectrum_every
                and (epoch + 1) % self.spectrum_every == 0
                and epoch + 1 < trainer.epochs):
            self._log_spectrum(trainer, epoch)

    def on_train_end(self, trainer) -> None:
        self._log_spectrum(trainer, trainer.epochs_run - 1)
        if trainer.tracer.roots:
            self.journal.log("trace", spans=trainer.tracer.snapshot())
        if trainer.structure_cache is not None:
            self.journal.log("metrics", **trainer.structure_cache.stats())
        from ..faults import counters_snapshot

        fault_counters = {k: v for k, v in counters_snapshot().items() if v}
        if fault_counters:
            # Chaos-only telemetry rides a ``metrics`` event, which
            # ``canonical_events`` strips — so a faulted-but-recovered run
            # still canonically equals its fault-free twin.
            self.journal.log("metrics", **fault_counters)
        self.journal.log("engine", **trainer.engine.snapshot())
        self.journal.log("run_end", epochs_run=trainer.epochs_run,
                         final_loss=trainer.history.final_loss,
                         total_seconds=trainer.history.total_seconds)

    def _log_spectrum(self, trainer, epoch: int) -> None:
        from ..core import effective_rank, num_collapsed_dimensions, \
            singular_spectrum

        embeddings = trainer.embed()
        spectrum = singular_spectrum(embeddings)
        self.journal.log(
            "spectrum", epoch=epoch,
            singular_values=[float(s) for s in spectrum],
            effective_rank=effective_rank(embeddings),
            collapsed_dims=num_collapsed_dimensions(embeddings, tol=1e-4),
            embedding_dim=int(embeddings.shape[1]))


class CheckpointCallback(Callback):
    """Write a resumable :class:`repro.run.TrainState` every N epochs.

    Runs *after* journal and early-stopping callbacks so the snapshot
    contains this epoch's history entry and up-to-date plateau counters.
    The final epoch always checkpoints, aligned or not, so a completed run
    leaves a loadable terminal state behind.
    """

    def __init__(self, every: int, run_dir):
        if every < 1:
            raise ValueError(f"checkpoint every must be >= 1, got {every}")
        self.every = every
        self.run_dir = run_dir

    def on_epoch_end(self, trainer, epoch: int) -> None:
        done = epoch + 1
        if (done % self.every == 0 or done >= trainer.epochs
                or trainer.stop_requested):
            trainer.save_checkpoint(self.run_dir, epoch)


class StopAfter(Callback):
    """Simulate an interruption after N epochs (for resume drills/CI).

    Raises :class:`TrainingInterrupted` so the run tears down exactly like
    a real kill: pipeline pools shut down, no end-of-run journal events are
    written, and the latest checkpoint stays behind for ``resume``.
    Registered after :class:`CheckpointCallback` so the checkpoint for the
    interrupting epoch is already on disk.
    """

    def __init__(self, after_epochs: int):
        if after_epochs < 1:
            raise ValueError(
                f"after_epochs must be >= 1, got {after_epochs}")
        self.after_epochs = after_epochs

    def on_epoch_end(self, trainer, epoch: int) -> None:
        if epoch + 1 >= self.after_epochs:
            raise TrainingInterrupted(
                f"simulated interruption after epoch {epoch}")
