"""Checkpoint/resume snapshots for the unified :class:`~repro.run.Trainer`.

A :class:`TrainState` is everything needed to continue a run **bit-
identically**: module parameters, Adam moment buffers and step count,
the loader / method RNG bit-generator states, the view generator's batch
counter, method-specific schedule state (JOAO's augmentation distribution),
early-stopping counters, engine telemetry counters, the full history, the
completed-epoch count, and the run's config hash.

On-disk format inside the run directory:

* ``checkpoint.npz`` — all arrays: module parameters under their dotted
  names plus Adam first/second moments under ``adam.m.<name>`` /
  ``adam.v.<name>``;
* ``checkpoint.json`` — everything else.  JSON is the right container
  because PCG64 bit-generator states are 128-bit integers (JSON ints are
  arbitrary precision) and Python floats survive a JSON round-trip exactly
  (``repr`` emits the shortest round-tripping decimal).

Both files are written atomically (temp file + ``os.replace``) so an
interruption during checkpointing never leaves a torn snapshot behind.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = ["TrainState", "CHECKPOINT_ARRAYS", "CHECKPOINT_META"]

CHECKPOINT_ARRAYS = "checkpoint.npz"
CHECKPOINT_META = "checkpoint.json"

_FORMAT_VERSION = 1
_ADAM_M = "adam.m."
_ADAM_V = "adam.v."
_BUFFER = "buffer."


def _rng_state(rng) -> dict | None:
    """JSON-able bit-generator state of a numpy Generator (or None)."""
    if rng is None:
        return None
    return rng.bit_generator.state


@dataclass
class TrainState:
    """One resumable snapshot of a training run."""

    epoch: int                      # epochs fully completed
    arrays: dict                    # name -> np.ndarray (params + moments)
    meta: dict                      # JSON-able remainder

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, trainer, epoch: int) -> "TrainState":
        """Snapshot ``trainer`` after ``epoch`` epochs have completed.

        Capturing performs no tensor ops and draws from no RNG, so taking
        a checkpoint cannot perturb the run it is checkpointing.
        """
        method = trainer.method
        optimizer = trainer.optimizer
        arrays = dict(method.state_dict())
        # Adam's _m/_v lists are index-aligned with optimizer.params,
        # which is exactly named_parameters() order.
        names = [name for name, _ in method.named_parameters()]
        if len(names) != len(optimizer.params):
            raise RuntimeError(
                "optimizer/params mismatch: cannot name Adam moments")
        for name, m, v in zip(names, optimizer._m, optimizer._v):
            arrays[_ADAM_M + name] = m.copy()
            arrays[_ADAM_V + name] = v.copy()
        # Non-parameter training state (BatchNorm running statistics).
        for name, value in method.buffers_dict().items():
            arrays[_BUFFER + name] = value

        generator = getattr(method, "view_generator", None)
        meta = {
            "format_version": _FORMAT_VERSION,
            "epoch": int(epoch),
            "config_hash": trainer.config_hash,
            # Input width: lets repro.serve rebuild the method without
            # reloading the training dataset.  Optional for compatibility
            # with snapshots written before the serving subsystem.
            "num_features": getattr(trainer.strategy, "num_features", None),
            "adam_t": int(optimizer._t),
            "adam_lr": float(optimizer.lr),
            "loader_rng": trainer.strategy.rng_state(),
            "method_rng": _rng_state(getattr(method, "_rng", None)),
            "view_counter": (int(generator.counter)
                             if generator is not None else None),
            "view_root": (int(generator.root)
                          if generator is not None else None),
            "method_state": method.training_state(),
            "history": trainer.history.to_dict(),
            "engine": (trainer.engine.snapshot()
                       if trainer.engine is not None else None),
        }
        early = trainer._early_stopping
        meta["early_stopping"] = early.snapshot() if early else None
        return cls(epoch=int(epoch), arrays=arrays, meta=meta)

    # ------------------------------------------------------------------
    # Disk round-trip
    # ------------------------------------------------------------------
    def save(self, run_dir: str | Path) -> Path:
        """Atomically write both checkpoint files into ``run_dir``."""
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        tmp_arrays = run_dir / (CHECKPOINT_ARRAYS + ".tmp.npz")
        np.savez(tmp_arrays, **self.arrays)
        os.replace(tmp_arrays, run_dir / CHECKPOINT_ARRAYS)
        tmp_meta = run_dir / (CHECKPOINT_META + ".tmp")
        tmp_meta.write_text(json.dumps(self.meta, sort_keys=True) + "\n")
        os.replace(tmp_meta, run_dir / CHECKPOINT_META)
        return run_dir

    @classmethod
    def load(cls, run_dir: str | Path) -> "TrainState":
        """Read a snapshot previously written by :meth:`save`."""
        run_dir = Path(run_dir)
        meta_path = run_dir / CHECKPOINT_META
        if not meta_path.exists():
            raise FileNotFoundError(
                f"no checkpoint in {run_dir} (missing {CHECKPOINT_META}); "
                "was the run started with checkpoint_every?")
        meta = json.loads(meta_path.read_text())
        version = meta.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {version!r} "
                f"(this build reads version {_FORMAT_VERSION})")
        with np.load(run_dir / CHECKPOINT_ARRAYS) as archive:
            arrays = {name: archive[name] for name in archive.files}
        return cls(epoch=int(meta["epoch"]), arrays=arrays, meta=meta)

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def restore(self, trainer) -> None:
        """Reinstall this snapshot into a freshly-built trainer.

        The trainer must have been rebuilt from the *same* resolved config
        (the stored config hash is checked), with method, strategy, and
        optimizer freshly constructed — restore then overwrites every
        piece of mutable training state so the next epoch proceeds exactly
        as it would have in the uninterrupted run.
        """
        stored = self.meta.get("config_hash")
        if (stored and trainer.config_hash
                and stored != trainer.config_hash):
            raise ValueError(
                f"checkpoint config hash {stored} does not match the "
                f"requested config {trainer.config_hash}; refusing to "
                "resume under different hyperparameters")
        method = trainer.method
        optimizer = trainer.optimizer

        params = {name: arr for name, arr in self.arrays.items()
                  if not name.startswith((_ADAM_M, _ADAM_V, _BUFFER))}
        method.load_state_dict(params)
        method.load_buffers_dict(
            {name[len(_BUFFER):]: arr for name, arr in self.arrays.items()
             if name.startswith(_BUFFER)})
        names = [name for name, _ in method.named_parameters()]
        for i, name in enumerate(names):
            optimizer._m[i][...] = self.arrays[_ADAM_M + name]
            optimizer._v[i][...] = self.arrays[_ADAM_V + name]
        optimizer._t = int(self.meta["adam_t"])
        optimizer.lr = float(self.meta["adam_lr"])

        trainer.strategy.set_rng_state(self.meta["loader_rng"])
        method_rng = getattr(method, "_rng", None)
        if self.meta["method_rng"] is not None:
            if method_rng is None:
                raise ValueError(
                    "checkpoint carries a method RNG state but the rebuilt "
                    "method has no _rng")
            method_rng.bit_generator.state = self.meta["method_rng"]
        generator = getattr(method, "view_generator", None)
        if self.meta["view_counter"] is not None:
            if generator is None:
                raise ValueError(
                    "checkpoint carries a view-generator counter but the "
                    "rebuilt method has no view generator")
            if self.meta["view_root"] != generator.root:
                raise ValueError(
                    "view-generator root mismatch: the rebuilt method's "
                    "augmentation streams differ from the checkpointed run")
            generator.counter = int(self.meta["view_counter"])
        method.load_training_state(self.meta["method_state"] or {})

        from .trainer import TrainHistory

        trainer.history = TrainHistory.from_dict(self.meta["history"])
        if trainer._early_stopping and self.meta["early_stopping"]:
            trainer._early_stopping.restore(self.meta["early_stopping"])
        trainer._engine_restore = self.meta["engine"]
        trainer.start_epoch = self.epoch
        trainer.epochs_run = self.epoch
