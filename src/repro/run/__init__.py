"""Unified experiment runner: registry, configs, trainer, checkpoints.

The ``repro.run`` subsystem is how every experiment in the repo is
launched (see ``docs/architecture.md`` for the full layering):

* :mod:`repro.run.registry` — ``@register_method`` decorator and lookup
  helpers; the single source of truth for runnable methods.
* :mod:`repro.run.config` — :class:`RunConfig`, a frozen JSON-round-trip
  description of one run.
* :mod:`repro.run.trainer` — the callback-driven :class:`Trainer` over a
  :class:`GraphSteps` / :class:`NodeSteps` step strategy.
* :mod:`repro.run.callbacks` — the :class:`Callback` protocol and the
  stock callbacks (early stopping, journal, checkpointing).
* :mod:`repro.run.state` — :class:`TrainState` snapshots enabling
  bit-identical checkpoint/resume.
* :mod:`repro.run.runner` — :func:`execute_run` / :func:`resume_run`,
  the config-to-result entry points behind ``repro run``.
"""

from .callbacks import (
    Callback,
    CheckpointCallback,
    EarlyStopping,
    JournalCallback,
    ProbeCallback,
    StopAfter,
    TrainingInterrupted,
)
from .config import CONFIG_FILENAME, RunConfig
from .registry import (
    MethodEntry,
    get_method,
    list_methods,
    method_levels,
    method_names,
    register_method,
)
from .runner import RunResult, execute_run, prepare_resume, resume_run
from .state import TrainState
from .trainer import (
    GraphSteps,
    NodeSteps,
    Trainer,
    TrainHistory,
    clip_gradients,
    gradient_norm,
)

__all__ = [
    "register_method", "get_method", "list_methods", "method_names",
    "method_levels", "MethodEntry",
    "RunConfig", "CONFIG_FILENAME",
    "Trainer", "TrainHistory", "GraphSteps", "NodeSteps",
    "gradient_norm", "clip_gradients",
    "Callback", "EarlyStopping", "ProbeCallback", "JournalCallback",
    "CheckpointCallback", "StopAfter", "TrainingInterrupted",
    "TrainState",
    "RunResult", "execute_run", "resume_run", "prepare_resume",
]
