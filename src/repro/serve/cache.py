"""Embedding LRU cache keyed on a structure+feature content fingerprint.

The PR-3 :func:`repro.pipeline.structure_fingerprint` hashes only what
adjacency/diffusion operators depend on (``num_nodes`` + ``edges``).  An
*embedding* additionally depends on node features, so the serving cache
key extends that fingerprint with the feature matrix bytes:
:func:`content_fingerprint` chains the memoized structure digest with
``x``'s shape/dtype/contents under one blake2b.  Two requests carrying
byte-identical graphs therefore share a cache row, and because embeddings
are deterministic per graph (see :class:`repro.serve.FrozenEncoder`), a
cache hit returns exactly what the forward would have produced.

Thread-safety: requests race on the cache from the HTTP handler pool, so
every operation takes the internal lock.  Counters
(``serve.cache.hits`` / ``serve.cache.misses`` / ``serve.cache.evictions``)
and gauges (``serve.cache.entries`` / ``serve.cache.bytes``) flow through
the shared :class:`repro.obs.MetricRegistry`.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict

import numpy as np

from ..obs import MetricRegistry
from ..pipeline import structure_fingerprint

__all__ = ["EmbeddingCache", "content_fingerprint"]

#: Default LRU bound; override per-cache or via ``REPRO_EMBED_CACHE``.
DEFAULT_MAX_ENTRIES = 4096


def content_fingerprint(graph) -> str:
    """Blake2b digest of a graph's structure *and* node features.

    Reuses (and memoizes through) the PR-3 structure fingerprint, then
    folds in the feature matrix; the result is memoized on the instance
    so repeated lookups of the same object hash once.
    """
    key = getattr(graph, "_content_key", None)
    if key is None:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(structure_fingerprint(graph).encode())
        x = np.ascontiguousarray(graph.x)
        digest.update(str(x.dtype).encode())
        digest.update(np.asarray(x.shape, dtype=np.int64).tobytes())
        digest.update(x.tobytes())
        key = digest.hexdigest()
        graph._content_key = key
    return key


class EmbeddingCache:
    """Bounded, thread-safe LRU of per-graph embedding rows."""

    def __init__(self, max_entries: int | None = None,
                 metrics: MetricRegistry | None = None):
        if max_entries is None:
            max_entries = int(os.environ.get("REPRO_EMBED_CACHE",
                                             DEFAULT_MAX_ENTRIES))
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._entries: OrderedDict[str, np.ndarray] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()

    def get(self, graph) -> np.ndarray | None:
        """Cached embedding row for ``graph``, or ``None`` on a miss."""
        key = content_fingerprint(graph)
        with self._lock:
            row = self._entries.get(key)
            if row is not None:
                self._entries.move_to_end(key)
                self.metrics.counter("serve.cache.hits").inc()
                return row
            self.metrics.counter("serve.cache.misses").inc()
            return None

    def put(self, graph, embedding: np.ndarray) -> None:
        """Store one embedding row (idempotent for identical content)."""
        key = content_fingerprint(graph)
        # Own an immutable copy: ascontiguousarray would alias the caller's
        # buffer, letting later mutation (or a mutating cache consumer)
        # silently poison every future hit.
        row = np.array(embedding, copy=True)
        row.flags.writeable = False
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= previous.nbytes
            self._entries[key] = row
            self._bytes += row.nbytes
            while len(self._entries) > self.max_entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.metrics.counter("serve.cache.evictions").inc()
            self.metrics.gauge("serve.cache.entries").set(len(self._entries))
            self.metrics.gauge("serve.cache.bytes").set(self._bytes)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.metrics.gauge("serve.cache.entries").set(0)
            self.metrics.gauge("serve.cache.bytes").set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def stats(self) -> dict:
        """JSON-ready summary (part of the ``/metrics`` payload)."""
        def count(name: str) -> int:
            return (self.metrics.counter(name).value
                    if name in self.metrics else 0)

        with self._lock:
            return {"entries": len(self._entries), "bytes": self._bytes,
                    "hits": count("serve.cache.hits"),
                    "misses": count("serve.cache.misses"),
                    "evictions": count("serve.cache.evictions")}
