"""Retrying HTTP client for the embedding service.

:class:`ServingClient` is the supported way to talk to ``repro serve``
from python: it wraps the three endpoints, maps the server's error
contract back onto the service exceptions (429 →
:class:`~repro.serve.ServiceOverloaded`, 504 →
:class:`~repro.serve.ServiceTimeout`), and retries the retryable ones —
sheds, timeouts, and connection resets — under a
:class:`~repro.faults.RetryPolicy` (capped exponential backoff with
deterministic jitter, honoring the server's ``Retry-After`` hint as a
floor).  400/413 are *not* retried: a malformed payload does not get
better with backoff.

``repro embed --remote URL`` uses :func:`embed_remote` to run the bulk
embedding path through a live server instead of a local checkpoint; the
output ``.npz`` is byte-compatible with the offline
:func:`~repro.serve.embed_dataset` reference, which is what lets the
chaos CI tier diff the two.

Tests inject a fake ``transport`` (and a no-op ``sleep``), so no socket
is needed to exercise the retry ladder.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..faults import RetryPolicy
from .batcher import ServiceOverloaded, ServiceTimeout
from .http import payload_from_graph

__all__ = ["ServingClient", "RetriesExhausted", "embed_remote"]

#: HTTP statuses worth retrying: backpressure shed and missed deadline.
RETRYABLE_STATUSES = frozenset({429, 503, 504})


class RetriesExhausted(RuntimeError):
    """Every attempt failed; ``last_error`` holds the final failure."""

    def __init__(self, message: str, last_error: BaseException):
        super().__init__(message)
        self.last_error = last_error


class _Response:
    """Status + parsed JSON body + the Retry-After hint, if any."""

    __slots__ = ("status", "body", "retry_after")

    def __init__(self, status: int, body: dict,
                 retry_after: float | None = None):
        self.status = status
        self.body = body
        self.retry_after = retry_after


def _urllib_transport(method: str, url: str, body: bytes | None,
                      timeout: float) -> _Response:
    """Default transport: stdlib urllib, errors normalized to _Response."""
    request = urllib.request.Request(
        url, data=body, method=method,
        headers={"Content-Type": "application/json"} if body else {})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            payload = json.loads(response.read())
            return _Response(response.status, payload)
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            payload = {"error": raw.decode(errors="replace")}
        retry_after = exc.headers.get("Retry-After")
        return _Response(exc.code, payload,
                         float(retry_after) if retry_after else None)


class ServingClient:
    """Talk to a ``repro serve`` endpoint with bounded, jittered retries.

    Parameters
    ----------
    base_url:
        ``http://host:port`` (no trailing slash needed).
    policy:
        The :class:`~repro.faults.RetryPolicy`; the default retries 4
        times with 0.1 s → 5 s capped exponential backoff.  Seed it for
        reproducible retry schedules (the serving bench and tests do).
    deadline_ms:
        Optional per-request ``deadline_ms`` forwarded in every ``/embed``
        body, so the server bounds its side of the wait too.
    timeout_s:
        Socket-level timeout per attempt (connect + read).
    transport / sleep:
        Injection points for tests: ``transport(method, url, body,
        timeout) -> _Response`` and a backoff ``sleep(seconds)``.
    """

    def __init__(self, base_url: str, *,
                 policy: RetryPolicy | None = None,
                 deadline_ms: float | None = None,
                 timeout_s: float = 30.0,
                 transport: Callable[..., _Response] | None = None,
                 sleep: Callable[[float], None] = time.sleep):
        self.base_url = base_url.rstrip("/")
        self.policy = policy if policy is not None else RetryPolicy()
        self.deadline_ms = deadline_ms
        self.timeout_s = float(timeout_s)
        self._transport = (transport if transport is not None
                          else _urllib_transport)
        self._sleep = sleep
        self.attempts = 0
        self.retries = 0

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def embed_graphs(self, graphs: Sequence) -> np.ndarray:
        """Embed graphs via ``POST /embed``; rows are in request order."""
        payload = {"graphs": [payload_from_graph(g) for g in graphs]}
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        body = self._request("POST", "/embed",
                             json.dumps(payload).encode())
        return np.asarray(body["embeddings"], dtype=np.float64)

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------
    # The retry ladder
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: bytes | None = None) -> dict:
        url = self.base_url + path
        last_error: BaseException | None = None
        for attempt in range(self.policy.retries + 1):
            if attempt > 0:
                retry_after = (last_error.retry_after
                               if isinstance(last_error, _RetryableStatus)
                               else None)
                self._sleep(self.policy.delay(attempt - 1,
                                              retry_after=retry_after))
                self.retries += 1
            self.attempts += 1
            try:
                response = self._transport(method, url, body,
                                           self.timeout_s)
            except (OSError, urllib.error.URLError) as exc:
                # Connection refused/reset or socket timeout: the server
                # may be restarting or draining — worth another attempt.
                last_error = exc
                continue
            if response.status == 200:
                return response.body
            error = response.body.get("error", f"HTTP {response.status}")
            if response.status in RETRYABLE_STATUSES:
                last_error = _RetryableStatus(response.status, error,
                                              response.retry_after)
                continue
            raise RuntimeError(f"HTTP {response.status}: {error}")
        message = (f"{method} {url} failed after "
                   f"{self.policy.retries + 1} attempt(s): {last_error}")
        if isinstance(last_error, _RetryableStatus):
            if last_error.status == 504:
                raise RetriesExhausted(message, ServiceTimeout(str(
                    last_error)))
            raise RetriesExhausted(message, ServiceOverloaded(str(
                last_error)))
        raise RetriesExhausted(message, last_error)


class _RetryableStatus(RuntimeError):
    """An HTTP status the client will retry (carries Retry-After)."""

    def __init__(self, status: int, error: str,
                 retry_after: float | None):
        super().__init__(f"HTTP {status}: {error}")
        self.status = status
        self.retry_after = retry_after


def embed_remote(base_url: str, out: str | Path, *,
                 dataset: str | None = None, scale: str | None = None,
                 seed: int | None = None, batch_size: int = 128,
                 client: ServingClient | None = None) -> dict:
    """``repro embed --remote``: bulk-embed a dataset through a server.

    ``dataset``/``scale``/``seed`` default to the server's own training
    identity (from ``/healthz``), mirroring how the local path defaults
    from the checkpoint.  The output ``.npz`` carries the same arrays and
    provenance as :func:`~repro.serve.embed_dataset`, so the two files
    diff byte-for-byte when the server is healthy.
    """
    from ..datasets import load_tu_dataset

    client = client if client is not None else ServingClient(base_url)
    info = client.health()
    dataset = dataset if dataset is not None else info.get("dataset")
    scale = scale if scale is not None else info.get("scale", "tiny")
    seed = seed if seed is not None else int(info.get("seed", 0))
    if dataset is None:
        raise ValueError("server did not report a dataset; pass --dataset")
    data = load_tu_dataset(dataset, scale=scale, seed=seed)
    blocks = []
    for start in range(0, len(data.graphs), batch_size):
        blocks.append(client.embed_graphs(
            data.graphs[start:start + batch_size]))
    # JSON floats round-trip exactly, so casting back to the server's
    # inference dtype recovers the offline npz byte-for-byte.
    embeddings = np.concatenate(blocks, axis=0).astype(
        str(info.get("dtype", "float32")))

    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    np.savez(out,
             embeddings=embeddings,
             labels=data.labels(),
             dataset=np.array(dataset),
             scale=np.array(scale),
             seed=np.array(int(seed)),
             dtype=np.array(str(info.get("dtype", "float32"))),
             config_hash=np.array(str(info.get("config_hash") or "")))
    saved = out if out.suffix == ".npz" else out.with_suffix(
        out.suffix + ".npz")
    return {"out": str(saved), "dataset": dataset, "scale": scale,
            "seed": int(seed), "num_graphs": int(embeddings.shape[0]),
            "dim": int(embeddings.shape[1]),
            "dtype": str(info.get("dtype", "float32")),
            "config_hash": str(info.get("config_hash") or ""),
            "attempts": client.attempts, "retries": client.retries}
