"""Frozen inference encoders loaded from training checkpoints.

A :class:`FrozenEncoder` is the serving-side view of a finished (or
checkpointed) training run: the method is rebuilt from the run directory's
``config.json`` exactly as :func:`repro.run.execute_run` built it, the
parameters and BatchNorm running statistics are reinstalled from the
PR-4 :class:`repro.run.TrainState` snapshot (``checkpoint.npz`` +
``checkpoint.json``), and the module is pinned in eval mode with gradients
disabled — BatchNorm normalizes with the checkpointed ``_buffer_attrs``
running statistics and no autograd graph is ever built.

Inference runs in float32 by default (serving is bandwidth-bound and the
downstream protocols are float32-stable); pass ``dtype="float64"`` to
reproduce training-precision embeddings.  Whatever the dtype, embeddings
are a pure per-graph function: because every layer (sparse block-diagonal
adjacency matmul, row-wise dense GEMM, eval-mode BatchNorm, per-graph
readout) treats graphs independently, the embedding of a graph is
bit-identical no matter which batch it rides in.  That property is what
lets the micro-batcher coalesce unrelated requests into one forward and
still promise byte-equality with the offline ``repro embed`` path; the
hypothesis suite in ``tests/serve/test_batcher.py`` enforces it.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Sequence

import numpy as np

from ..graph import Graph, GraphBatch
from ..tensor import PlanCache, autocast, no_grad

__all__ = ["FrozenEncoder", "CheckpointMismatch"]

#: Default offline chunk size, mirroring ``Module.embed``'s historical value.
DEFAULT_BATCH_SIZE = 128


class CheckpointMismatch(ValueError):
    """A checkpoint does not belong to the config it was loaded against."""


def _params_and_buffers(arrays: dict) -> tuple[dict, dict]:
    """Split a TrainState array dict into parameter and buffer groups."""
    from ..run.state import _ADAM_M, _ADAM_V, _BUFFER

    params = {name: arr for name, arr in arrays.items()
              if not name.startswith((_ADAM_M, _ADAM_V, _BUFFER))}
    buffers = {name[len(_BUFFER):]: arr for name, arr in arrays.items()
               if name.startswith(_BUFFER)}
    return params, buffers


class FrozenEncoder:
    """An eval-mode, gradient-free graph encoder ready for serving.

    Build one with :meth:`from_checkpoint`; the direct constructor accepts
    an already-restored method (tests use it to freeze an in-memory model
    without a disk round-trip).
    """

    def __init__(self, method, *, dtype: str = "float32",
                 config=None, config_hash: str | None = None,
                 num_features: int | None = None,
                 plan_cache: int | None = None):
        from ..tensor.dtype import _validate

        self._dtype = np.dtype(_validate(dtype)).name
        self._num_features = num_features
        self.method = method.eval()
        for param in method.parameters():
            param.requires_grad = False
        self.config = config
        self.config_hash = config_hash
        self._embedding_dim: int | None = None
        # Shape-bucketed replay plans for steady-state /embed traffic;
        # capacity None follows REPRO_PLAN_CACHE (default 32), 0 disables.
        self._plan_cache = PlanCache(plan_cache)
        # Forwards mutate no state, but the tensor engine's dtype policy is
        # process-global; serialize forwards so concurrent callers (the
        # micro-batcher is single-threaded, but tests call embed directly)
        # cannot interleave autocast scopes.
        self._forward_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Construction from a run directory
    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, run_dir: str | Path, *,
                        dtype: str = "float32",
                        plan_cache: int | None = None) -> "FrozenEncoder":
        """Load a frozen encoder from a PR-4 run directory.

        The directory must hold ``config.json`` plus the
        ``checkpoint.npz``/``checkpoint.json`` pair written by a run with
        ``checkpoint_every``.  The checkpoint's embedded config hash is
        checked against the hash of ``config.json`` — a mismatch means the
        directory's config no longer describes the weights and loading is
        refused with :class:`CheckpointMismatch`.
        """
        from ..run import RunConfig
        from ..run.config import CONFIG_FILENAME
        from ..run.registry import get_method
        from ..run.state import TrainState
        from ..utils.seed import seeded_rng

        run_dir = Path(run_dir)
        config_path = run_dir / CONFIG_FILENAME
        if not config_path.exists():
            raise FileNotFoundError(
                f"no {CONFIG_FILENAME} in {run_dir}; serving loads runs "
                "written by `repro run --run-dir ... --checkpoint-every N`")
        config = RunConfig.from_file(config_path).resolve()
        if config.level != "graph":
            raise ValueError(
                f"run in {run_dir} trained {config.method!r} at the "
                "node level; the embedding service batches graph-level "
                "requests — use the method's embed() directly for "
                "node-level inference")
        state = TrainState.load(run_dir)
        expected = config.config_hash()
        stored = state.meta.get("config_hash")
        if stored and stored != expected:
            raise CheckpointMismatch(
                f"checkpoint in {run_dir} was written under config hash "
                f"{stored} but {CONFIG_FILENAME} now resolves to "
                f"{expected}; the config no longer describes these "
                "weights — restore the original config.json or re-train "
                "under the edited one")
        num_features = state.meta.get("num_features")
        if num_features is None:
            # Pre-serving checkpoints did not record the input width; the
            # training dataset is synthetic and reproducible, so recover it.
            from ..datasets import load_tu_dataset

            num_features = load_tu_dataset(
                config.dataset, scale=config.scale,
                seed=config.seed).num_features
        entry = get_method(config.method, config.level)
        with autocast(dtype):
            method = entry.build(int(num_features), rng=seeded_rng(config.seed),
                                 hidden_dim=config.hidden_dim,
                                 out_dim=config.out_dim,
                                 num_layers=config.num_layers)
            params, buffers = _params_and_buffers(state.arrays)
            method.load_state_dict(params)
            if buffers:
                method.load_buffers_dict(buffers)
        return cls(method, dtype=dtype, config=config, config_hash=expected,
                   num_features=int(num_features), plan_cache=plan_cache)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dtype(self) -> str:
        """Numpy dtype name embeddings are computed and returned in."""
        return self._dtype

    @property
    def num_features(self) -> int:
        """Node-feature width every request graph must match."""
        if self._num_features is None:
            # Fallback for directly-constructed encoders: the first module
            # exposing ``in_features`` is the input-side Linear of the
            # first encoder layer (modules() walks attributes in
            # registration order, and every method registers its encoder
            # before its projector).
            for module in self.method.modules():
                width = getattr(module, "in_features", None)
                if width is not None:
                    self._num_features = int(width)
                    break
            else:
                raise AttributeError(
                    "encoder exposes no in_features; pass num_features= "
                    "to FrozenEncoder to validate request feature widths")
        return self._num_features

    @property
    def embedding_dim(self) -> int:
        """Output dimensionality (computed once via a one-node probe)."""
        if self._embedding_dim is None:
            probe = Graph(1, np.empty((0, 2), dtype=np.int64),
                          np.zeros((1, self.num_features)))
            self._embedding_dim = int(self.embed([probe]).shape[1])
        return self._embedding_dim

    def describe(self) -> dict:
        """JSON-able identity block (the ``/healthz`` payload core)."""
        info = {"dtype": self._dtype, "embedding_dim": self.embedding_dim,
                "num_features": self.num_features,
                "config_hash": self.config_hash}
        if self.config is not None:
            info.update(method=self.config.method,
                        dataset=self.config.dataset,
                        level=self.config.level,
                        gradgcl_weight=self.config.weight,
                        scale=self.config.scale,
                        seed=self.config.seed)
        return info

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def validate(self, graphs: Sequence[Graph]) -> None:
        """Reject feature widths the checkpoint was not trained on."""
        width = self.num_features
        for i, graph in enumerate(graphs):
            if graph.num_features != width:
                raise ValueError(
                    f"graph {i} has {graph.num_features} node features "
                    f"but the checkpoint was trained on {width}")

    def embed(self, graphs: Sequence[Graph],
              batch_size: int | None = None) -> np.ndarray:
        """Embed ``graphs`` with one block-diagonal forward per chunk.

        ``batch_size=None`` embeds everything in a single forward (what
        the micro-batcher wants); the offline bulk path passes a chunk
        size to bound peak memory.  Either way each graph's row is
        bit-identical — batch composition is numerically invisible.
        """
        if len(graphs) == 0:
            raise ValueError("cannot embed an empty list of graphs")
        if batch_size is None:
            batch_size = len(graphs)
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        chunks = []
        with self._forward_lock, autocast(self._dtype), no_grad():
            for start in range(0, len(graphs), batch_size):
                batch = GraphBatch(list(graphs[start:start + batch_size]))
                chunks.append(self._plan_cache.run(
                    self.method, self.method.graph_embeddings, batch))
        out = np.concatenate(chunks, axis=0)
        if self._embedding_dim is None:
            self._embedding_dim = int(out.shape[1])
        return out

    def plan_metrics(self) -> dict:
        """``plan.*`` capture/replay counters for the serve journal."""
        return self._plan_cache.metrics()
