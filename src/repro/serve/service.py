"""The embedding service: frozen encoder + LRU cache + micro-batcher.

:class:`EmbeddingService` is the process-level object behind both the
HTTP front end (``repro serve``) and in-process callers (CI tier e, the
serving benchmark).  A request flows:

1. **validate** — feature widths must match the checkpoint;
2. **cache probe** — graphs whose structure+feature fingerprint is cached
   skip the forward entirely;
3. **micro-batch** — the misses join the shared
   :class:`~repro.serve.MicroBatcher` queue and ride a coalesced
   block-diagonal forward (or the request sheds with
   :class:`~repro.serve.ServiceOverloaded` under backpressure);
4. **merge + fill** — cached rows and fresh rows are reassembled in
   request order and the fresh ones are inserted into the cache.

Every stage records into one :class:`repro.obs.MetricRegistry`
(``serve.requests`` / ``serve.graphs`` / ``serve.latency_seconds`` /
``serve.batches`` / ``serve.coalesced_requests`` / ``serve.shed`` /
``serve.cache.*``), the snapshot additionally carries the encoder's
``plan.*`` capture/replay counters, and
:meth:`EmbeddingService.log_metrics` journals the
snapshot as a standard ``metrics`` event so ``repro report`` can render a
serving session like any training run.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from ..faults import counters_snapshot as _fault_counters
from ..obs import MetricRegistry
from .batcher import (
    DEFAULT_MAX_BATCH_SIZE,
    DEFAULT_MAX_WAIT_MS,
    DEFAULT_QUEUE_SIZE,
    MicroBatcher,
)
from .cache import EmbeddingCache
from .encoder import FrozenEncoder

__all__ = ["EmbeddingService"]


class EmbeddingService:
    """Concurrent embedding inference over one frozen encoder.

    Parameters mirror the ``repro serve`` flags; ``cache_entries=0``
    disables the embedding cache (every request takes a forward).
    """

    def __init__(self, encoder: FrozenEncoder, *,
                 max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 deadline_ms: float | None = None,
                 forward_timeout_ms: float | None = None,
                 cache_entries: int | None = None,
                 metrics: MetricRegistry | None = None):
        self.encoder = encoder
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.cache = (None if cache_entries == 0
                      else EmbeddingCache(max_entries=cache_entries,
                                          metrics=self.metrics))
        self.batcher = MicroBatcher(encoder.embed,
                                    max_batch_size=max_batch_size,
                                    max_wait_ms=max_wait_ms,
                                    queue_size=queue_size,
                                    deadline_ms=deadline_ms,
                                    forward_timeout_ms=forward_timeout_ms,
                                    metrics=self.metrics)
        self._started = time.time()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def embed_graphs(self, graphs: Sequence, *,
                     deadline_ms: float | None = None) -> np.ndarray:
        """Embed a request's graphs; rows are in request order.

        Bit-identical to ``FrozenEncoder.embed(graphs)`` (and therefore to
        the offline ``repro embed`` path) at every concurrency level: the
        cache stores exact forward outputs and batch composition is
        numerically invisible.
        """
        if len(graphs) == 0:
            raise ValueError("request carries no graphs")
        started = time.perf_counter()
        self.encoder.validate(graphs)
        self.metrics.counter("serve.requests").inc()
        self.metrics.counter("serve.graphs").inc(len(graphs))

        rows: list[np.ndarray | None] = [None] * len(graphs)
        misses: list[int] = []
        if self.cache is not None:
            for i, graph in enumerate(graphs):
                cached = self.cache.get(graph)
                if cached is not None:
                    rows[i] = cached
                else:
                    misses.append(i)
        else:
            misses = list(range(len(graphs)))

        if misses:
            fresh = self.batcher.submit([graphs[i] for i in misses],
                                        deadline_ms=deadline_ms)
            for slot, row in zip(misses, fresh):
                rows[slot] = row
                if self.cache is not None:
                    self.cache.put(graphs[slot], row)
        out = np.stack(rows, axis=0)
        elapsed = time.perf_counter() - started
        self.metrics.histogram("serve.latency_seconds").observe(elapsed)
        return out

    # ------------------------------------------------------------------
    # Introspection / telemetry
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``/healthz`` payload."""
        info = {"status": "ok",
                "uptime_seconds": round(time.time() - self._started, 3),
                "max_batch_size": self.batcher.max_batch_size,
                "max_wait_ms": self.batcher.max_wait_s * 1000.0,
                "cache_enabled": self.cache is not None}
        info.update(self.encoder.describe())
        return info

    def metrics_snapshot(self) -> dict:
        """The ``/metrics`` payload: raw instruments + derived rates."""
        snapshot = self.metrics.snapshot()

        def count(name: str) -> int:
            value = snapshot.get(name)
            return int(value) if isinstance(value, (int, float)) else 0

        requests = count("serve.requests")
        coalesced = count("serve.coalesced_requests")
        batches = count("serve.batches")
        snapshot["serve.batch_coalesce_rate"] = (
            coalesced / requests if requests else 0.0)
        snapshot["serve.requests_per_batch"] = (
            requests / batches if batches else 0.0)
        snapshot["serve.uptime_seconds"] = round(
            time.time() - self._started, 3)
        snapshot.update(self.encoder.plan_metrics())
        # Cross-subsystem fault tally: the process-wide counters win over
        # the registry mirrors (they also count pipeline/training faults).
        snapshot.update(_fault_counters())
        return snapshot

    def log_metrics(self, journal) -> dict:
        """Emit the snapshot as a journal ``metrics`` event."""
        return journal.log("metrics", **self.metrics_snapshot())

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain in-flight requests and stop the batching worker."""
        self.batcher.close()

    def __enter__(self) -> "EmbeddingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
