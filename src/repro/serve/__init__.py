"""Embedding inference service: the serving half of the roadmap.

Training produces a checkpoint; this package turns it into embeddings on
demand.  Four layers, stdlib+numpy only:

* :mod:`repro.serve.encoder` — :class:`FrozenEncoder`: rebuild the method
  from a run directory's ``config.json``, reinstall parameters and
  BatchNorm running statistics from the PR-4 checkpoint, pin eval mode,
  disable gradients, and expose batched block-diagonal ``embed``;
* :mod:`repro.serve.batcher` — :class:`MicroBatcher`: coalesce concurrent
  requests into one forward under ``max_batch_size``/``max_wait_ms``,
  shedding load with :class:`ServiceOverloaded` when the bounded queue
  fills, failing requests that miss their deadline with
  :class:`ServiceTimeout`, and tombstoning hung forwards via a watchdog
  (see ``docs/robustness.md``);
* :mod:`repro.serve.client` — :class:`ServingClient`: the retrying HTTP
  client (capped exponential backoff + jitter, honors ``Retry-After``)
  behind ``repro embed --remote`` and the serving bench;
* :mod:`repro.serve.cache` — :class:`EmbeddingCache`: LRU keyed on the
  blake2b structure+feature :func:`content_fingerprint`, so repeated
  graphs skip the forward entirely;
* :mod:`repro.serve.http` / :mod:`repro.serve.service` — the
  :class:`EmbeddingService` request path and the threaded HTTP front end
  (``/embed``, ``/healthz``, ``/metrics``) behind ``repro serve``.

The determinism contract: a graph's served embedding is bit-identical to
the offline ``repro embed`` output (:func:`embed_dataset`) at every
concurrency level, batch composition, and arrival order — enforced by
``tests/serve`` and CI tier e.
"""

from .batcher import MicroBatcher, ServiceOverloaded, ServiceTimeout
from .bulk import embed_dataset
from .cache import EmbeddingCache, content_fingerprint
from .client import RetriesExhausted, ServingClient, embed_remote
from .encoder import CheckpointMismatch, FrozenEncoder
from .http import (
    EmbeddingHTTPServer,
    graph_from_payload,
    install_drain_handler,
    make_server,
    payload_from_graph,
)
from .service import EmbeddingService

__all__ = [
    "FrozenEncoder", "CheckpointMismatch",
    "MicroBatcher", "ServiceOverloaded", "ServiceTimeout",
    "ServingClient", "RetriesExhausted", "embed_remote",
    "EmbeddingCache", "content_fingerprint",
    "EmbeddingService", "EmbeddingHTTPServer", "make_server",
    "install_drain_handler",
    "graph_from_payload", "payload_from_graph",
    "embed_dataset",
]
