"""Stdlib-only threaded HTTP front end for the embedding service.

``repro serve`` binds an :class:`EmbeddingHTTPServer` (a
``ThreadingHTTPServer`` with daemon handler threads) over one
:class:`~repro.serve.EmbeddingService`.  Three endpoints:

* ``POST /embed`` — body ``{"graphs": [{"num_nodes": N, "edges":
  [[u, v], ...], "x": [[...], ...]}, ...]}``; responds ``{"embeddings":
  [[...], ...], "dim": d, "count": n}`` with rows in request order.
  Responses are JSON — python's ``repr``-based float serialization round-
  trips exactly, so the bytes a client reconstructs are bit-identical to
  the offline ``repro embed`` npz (CI tier e asserts this under load).
* ``GET /healthz`` — encoder identity (method, dataset, config hash,
  dims, dtype) plus service knobs; any 200 means the model is loaded.
* ``GET /metrics`` — JSON :class:`~repro.obs.MetricRegistry` snapshot with
  derived rates (``serve.batch_coalesce_rate``, ``serve.requests_per_batch``).

Error mapping: malformed payloads are 400, backpressure sheds are 429
(with ``Retry-After``), missed deadlines are 504 (also retry-able), and
unexpected failures are 500; every error body is ``{"error": message}``.
A request may bound its own wait with a top-level ``"deadline_ms"``
field; otherwise the service default applies (see ``docs/robustness.md``).

Handler threads only parse JSON and wait on the micro-batcher — all tensor
work happens on the batcher's single worker thread, so concurrency never
touches the engine's global dtype state.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from ..graph import Graph
from .batcher import ServiceOverloaded, ServiceTimeout
from .service import EmbeddingService

__all__ = ["EmbeddingHTTPServer", "graph_from_payload",
           "payload_from_graph", "make_server", "install_drain_handler"]

#: Cap on accepted request bodies (64 MiB): a malicious or confused client
#: should shed here, not in the allocator.
MAX_BODY_BYTES = 64 * 1024 * 1024


def graph_from_payload(payload: dict) -> Graph:
    """Build a :class:`Graph` from one ``/embed`` request entry.

    Validation errors raise ``ValueError`` (mapped to HTTP 400): the
    payload must carry ``num_nodes``, ``edges``, and a feature matrix
    ``x`` with one row per node.
    """
    if not isinstance(payload, dict):
        raise ValueError("each graph must be a JSON object")
    missing = {"num_nodes", "edges", "x"} - set(payload)
    if missing:
        raise ValueError(f"graph payload missing {sorted(missing)}")
    try:
        num_nodes = int(payload["num_nodes"])
        edges = np.asarray(payload["edges"], dtype=np.int64).reshape(-1, 2)
        x = np.asarray(payload["x"], dtype=np.float64)
    except (TypeError, OverflowError) as exc:
        raise ValueError(f"malformed graph payload: {exc}") from exc
    if x.ndim != 2:
        raise ValueError(f"x must be a 2-d feature matrix, got {x.ndim}-d")
    return Graph(num_nodes, edges, x)


def payload_from_graph(graph: Graph) -> dict:
    """Inverse of :func:`graph_from_payload` (client-side convenience)."""
    return {"num_nodes": int(graph.num_nodes),
            "edges": np.asarray(graph.edges).tolist(),
            "x": np.asarray(graph.x).tolist()}


class _Handler(BaseHTTPRequestHandler):
    """Routes the three endpoints onto ``self.server.service``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    # BaseHTTPRequestHandler logs every request to stderr; serving should
    # account through the metric registry instead of a text log.
    def log_message(self, format, *args):  # noqa: A002 (stdlib signature)
        pass

    @property
    def service(self) -> EmbeddingService:
        return self.server.service

    def _reply(self, status: int, payload: dict,
               headers: dict | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
        if self.path == "/healthz":
            self._reply(200, self.service.health())
        elif self.path == "/metrics":
            self._reply(200, self.service.metrics_snapshot())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}; "
                                       "endpoints: /embed /healthz /metrics"})

    def do_POST(self) -> None:  # noqa: N802 (stdlib casing)
        if self.path != "/embed":
            self._reply(404, {"error": f"unknown path {self.path!r}; "
                                       "POST to /embed"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length <= 0:
                raise ValueError("empty request body")
            if length > MAX_BODY_BYTES:
                self._reply(413, {"error": f"request body of {length} bytes "
                                           f"exceeds {MAX_BODY_BYTES}"})
                return
            request = json.loads(self.rfile.read(length))
            entries = request.get("graphs")
            if not isinstance(entries, list) or not entries:
                raise ValueError('body must be {"graphs": [...]} with at '
                                 "least one graph")
            deadline_ms = request.get("deadline_ms")
            if deadline_ms is not None:
                try:
                    deadline_ms = float(deadline_ms)
                except (TypeError, ValueError):
                    raise ValueError("deadline_ms must be a positive "
                                     "number") from None
                if deadline_ms <= 0:
                    raise ValueError(
                        f"deadline_ms must be > 0, got {deadline_ms}")
            graphs = [graph_from_payload(entry) for entry in entries]
            embeddings = self.service.embed_graphs(graphs,
                                                   deadline_ms=deadline_ms)
        except ServiceOverloaded as exc:
            self._reply(429, {"error": str(exc)}, {"Retry-After": "1"})
            return
        except ServiceTimeout as exc:
            self._reply(504, {"error": str(exc)}, {"Retry-After": "1"})
            return
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        except Exception as exc:  # pragma: no cover - defensive 500
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._reply(200, {"embeddings": embeddings.tolist(),
                          "dim": int(embeddings.shape[1]),
                          "count": int(embeddings.shape[0])})


class EmbeddingHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`EmbeddingService`.

    ``daemon_threads`` keeps a hung client from blocking shutdown;
    :meth:`shutdown` (inherited) stops the accept loop, after which the
    owner closes the service to drain the batcher.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: EmbeddingService):
        super().__init__(address, _Handler)
        self.service = service


def make_server(service: EmbeddingService, host: str = "127.0.0.1",
                port: int = 8080) -> EmbeddingHTTPServer:
    """Bind (but do not start) the serving endpoint; ``port=0`` picks a
    free port (``server.server_address`` reports the bound one)."""
    return EmbeddingHTTPServer((host, port), service)


def install_drain_handler(server: EmbeddingHTTPServer,
                          signals=(signal.SIGTERM,)) -> dict:
    """Make SIGTERM a graceful drain instead of a hard kill.

    The handler asks the server to stop accepting (``shutdown`` must run
    off the serve_forever thread, hence the helper thread); in-flight
    requests finish on their daemon handler threads, ``serve_forever``
    returns, and the owner's teardown path (close the service, journal the
    final metrics snapshot) runs exactly as on Ctrl-C.  Returns the
    previous handlers keyed by signal, for callers that restore them.
    """
    def _drain(signum, frame):
        threading.Thread(target=server.shutdown,
                         name="repro-serve-drain", daemon=True).start()

    return {sig: signal.signal(sig, _drain) for sig in signals}
