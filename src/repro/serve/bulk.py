"""Offline bulk embedding: ``repro embed`` (checkpoint -> embeddings.npz).

The batch counterpart of the online service: load a
:class:`~repro.serve.FrozenEncoder` from a run directory, embed a whole
dataset in fixed-size block-diagonal chunks, and write one ``.npz`` with
the embedding matrix, the labels, and the provenance fields needed to
audit it later (config hash, dtype, dataset identity).

Because per-graph embeddings are independent of batch composition, this
path is the *reference* the served numbers are gated against: CI tier e
fires concurrent ``/embed`` requests and asserts byte-equality with the
``embeddings.npz`` produced here.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .encoder import DEFAULT_BATCH_SIZE, FrozenEncoder

__all__ = ["embed_dataset"]


def embed_dataset(run_dir: str | Path, out: str | Path, *,
                  dataset: str | None = None, scale: str | None = None,
                  seed: int | None = None,
                  batch_size: int = DEFAULT_BATCH_SIZE,
                  dtype: str = "float32",
                  plan_cache: int | None = None) -> dict:
    """Embed ``dataset`` with the checkpoint in ``run_dir``; write ``out``.

    ``dataset``/``scale``/``seed`` default to the values the checkpoint
    was trained with (from the run directory's ``config.json``).  Returns
    a JSON-able summary (shape, output path, provenance) for the CLI.
    """
    from ..datasets import load_tu_dataset

    encoder = FrozenEncoder.from_checkpoint(run_dir, dtype=dtype,
                                            plan_cache=plan_cache)
    config = encoder.config
    dataset = dataset if dataset is not None else config.dataset
    scale = scale if scale is not None else config.scale
    seed = seed if seed is not None else config.seed
    data = load_tu_dataset(dataset, scale=scale, seed=seed)
    encoder.validate(data.graphs)
    embeddings = encoder.embed(data.graphs, batch_size=batch_size)

    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    np.savez(out,
             embeddings=embeddings,
             labels=data.labels(),
             dataset=np.array(dataset),
             scale=np.array(scale),
             seed=np.array(int(seed)),
             dtype=np.array(encoder.dtype),
             config_hash=np.array(encoder.config_hash or ""))
    saved = out if out.suffix == ".npz" else out.with_suffix(
        out.suffix + ".npz")
    return {"out": str(saved), "dataset": dataset, "scale": scale,
            "seed": int(seed), "num_graphs": int(embeddings.shape[0]),
            "dim": int(embeddings.shape[1]), "dtype": encoder.dtype,
            "config_hash": encoder.config_hash}
