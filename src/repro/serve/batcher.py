"""Dynamic micro-batching: coalesce concurrent embed requests into one forward.

Serving traffic arrives as many small requests; the encoder is fastest on
one large block-diagonal :class:`~repro.graph.GraphBatch` forward (the
per-forward python/scipy overhead dominates for small graphs).  The
:class:`MicroBatcher` bridges the two: requests enter a bounded FIFO, a
single worker thread takes the oldest request and then keeps collecting
followers for at most ``max_wait_ms`` (or until ``max_batch_size`` graphs
are gathered), runs one forward over the coalesced graph list, and
scatters the embedding rows back to the waiting callers.

Correctness rests on the :class:`~repro.serve.FrozenEncoder` determinism
contract: each graph's embedding is bit-identical regardless of batch
composition, so coalescing is numerically invisible — a request gets the
same bytes whether it rode alone, with its own batch, or sandwiched
between strangers.

Failure is bounded on three axes (see ``docs/robustness.md``):

* **Backpressure** — when the queue is full, :meth:`submit` sheds the
  request immediately with :class:`ServiceOverloaded` (HTTP 429) instead
  of queueing unbounded latency; the ``serve.shed`` counter records every
  rejection.
* **Deadlines** — every request carries a
  :class:`~repro.faults.Deadline`; a caller never waits past it.  On
  expiry the request resolves to :class:`ServiceTimeout` (HTTP 504) via
  first-write-wins resolution, so a late forward result is discarded
  rather than racing the timeout.
* **Watchdog** — a hung forward is *tombstoned*: a monitor thread notices
  the in-flight batch outliving ``forward_timeout_ms``, fails its waiters
  with :class:`ServiceTimeout`, and hands the queue to a fresh worker
  generation.  The hung thread, on eventually returning, sees its stale
  generation and exits without touching the queue — one wedged forward
  costs its own batch, not the process.

Close/submit is race-free by construction: a small admission lock orders
every :meth:`submit` enqueue against :meth:`close`'s sentinel, so no
request can land behind the sentinel unseen; the worker and :meth:`close`
additionally drain-reject any leftovers, and the deadline wait bounds
even a hypothetical straggler.

This module and :mod:`repro.pipeline` are the only places in the library
allowed to start threads (``scripts/lint_repro.py`` enforces it): the
worker and watchdog are daemons, teardown is explicit via :meth:`close`,
and every request enqueued before the sentinel is answered before the
worker exits.
"""

from __future__ import annotations

import queue
import threading
from typing import Callable, Sequence

import numpy as np

from ..faults import Deadline, default_deadline_ms, default_forward_timeout_ms
from ..faults import inject as _inject
from ..faults import record as _record_fault
from ..obs import MetricRegistry

__all__ = ["MicroBatcher", "ServiceOverloaded", "ServiceTimeout"]

DEFAULT_MAX_BATCH_SIZE = 64
DEFAULT_MAX_WAIT_MS = 2.0
DEFAULT_QUEUE_SIZE = 128

#: Fault-injection point for the coalesced forward (slow/raise/drop).
FORWARD_POINT = "serve.forward"


class ServiceOverloaded(RuntimeError):
    """The request queue is full; the caller should back off and retry."""


class ServiceTimeout(RuntimeError):
    """The request missed its deadline (HTTP 504); safe to retry."""


class _Pending:
    """One in-flight request: graphs in, an embedding block (or error) out.

    Resolution is **first-write-wins**: the worker, the watchdog, and the
    submitting caller's deadline expiry may all try to resolve; exactly
    one outcome sticks and later writes are no-ops.  That is what makes a
    tombstoned forward safe — its late rows land on an already-failed
    request and vanish.
    """

    __slots__ = ("graphs", "deadline", "done", "result", "error", "_lock",
                 "_resolved")

    def __init__(self, graphs, deadline: Deadline):
        self.graphs = list(graphs)
        self.deadline = deadline
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None
        self._lock = threading.Lock()
        self._resolved = False

    def resolve(self, result: np.ndarray | None,
                error: BaseException | None = None) -> bool:
        """First write wins; returns whether this call was the winner."""
        with self._lock:
            if self._resolved:
                return False
            self._resolved = True
            self.result = result
            self.error = error
        self.done.set()
        return True

    @property
    def resolved(self) -> bool:
        return self._resolved


_SENTINEL = object()


class MicroBatcher:
    """Coalesce concurrent embed requests into block-diagonal forwards.

    Parameters
    ----------
    forward:
        ``graphs -> (n, d) ndarray``; typically
        :meth:`repro.serve.FrozenEncoder.embed`.  Runs only on the worker
        thread, so it needs no internal locking.
    max_batch_size:
        Stop coalescing once this many *graphs* are gathered.  The batch
        that crosses the line still executes whole (requests are never
        split), so a single oversized request works — it just forms its
        own batch.
    max_wait_ms:
        How long the worker holds the first request of a batch open for
        followers.  ``0`` disables waiting: each forward takes exactly
        what is already queued.
    queue_size:
        Bound on queued (not yet batched) requests; beyond it
        :meth:`submit` sheds with :class:`ServiceOverloaded`.
    deadline_ms:
        Default per-request deadline (``REPRO_DEADLINE_MS`` when unset);
        :meth:`submit` accepts a per-call override.  A request that misses
        it fails with :class:`ServiceTimeout` instead of waiting.
    forward_timeout_ms:
        Watchdog threshold: a forward still running past this is
        tombstoned and its worker generation retired
        (``REPRO_FORWARD_TIMEOUT_MS`` when unset, which itself defaults to
        the request deadline).
    metrics:
        Shared :class:`MetricRegistry` for the ``serve.*`` instruments.
    """

    def __init__(self, forward: Callable[[Sequence], np.ndarray], *,
                 max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 deadline_ms: float | None = None,
                 forward_timeout_ms: float | None = None,
                 metrics: MetricRegistry | None = None):
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self._forward = forward
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self.deadline_ms = (default_deadline_ms() if deadline_ms is None
                            else float(deadline_ms))
        self.forward_timeout_ms = (default_forward_timeout_ms()
                                   if forward_timeout_ms is None
                                   else float(forward_timeout_ms))
        if self.deadline_ms <= 0:
            raise ValueError(
                f"deadline_ms must be > 0, got {self.deadline_ms}")
        if self.forward_timeout_ms <= 0:
            raise ValueError(
                f"forward_timeout_ms must be > 0, got "
                f"{self.forward_timeout_ms}")
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._closed = threading.Event()
        # Admission lock: orders submit's enqueue against close's sentinel
        # so nothing can land behind the sentinel (the old check-then-put
        # race left such a request waiting forever on a dead worker).
        self._admit = threading.Lock()
        # Worker-generation state, guarded by _state: the watchdog retires
        # a generation by bumping the counter; a stale worker returning
        # from a hung forward exits without touching the queue.
        self._state = threading.Lock()
        self._generation = 0
        self._inflight: tuple[list[_Pending], Deadline, int] | None = None
        self._worker = self._start_worker(self._generation)
        interval = min(0.05, self.forward_timeout_ms / 1000.0 / 4)
        self._watchdog_interval = max(0.005, interval)
        self._watchdog = threading.Thread(target=self._watch,
                                          name="repro-serve-watchdog",
                                          daemon=True)
        self._watchdog.start()

    # ------------------------------------------------------------------
    # Request side
    # ------------------------------------------------------------------
    def submit(self, graphs: Sequence, *,
               deadline_ms: float | None = None) -> np.ndarray:
        """Embed ``graphs``; blocks until resolved or the deadline passes.

        Raises :class:`ServiceOverloaded` immediately when the queue is
        full (load shedding — bounded latency beats unbounded queueing),
        :class:`ServiceTimeout` when the deadline expires first, and
        re-raises any exception the forward raised for this batch.
        """
        if len(graphs) == 0:
            raise ValueError("cannot embed an empty list of graphs")
        ms = self.deadline_ms if deadline_ms is None else float(deadline_ms)
        if ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {ms}")
        pending = _Pending(graphs, Deadline.after_ms(ms))
        with self._admit:
            if self._closed.is_set():
                raise RuntimeError("MicroBatcher is closed")
            try:
                self._queue.put_nowait(pending)
            except queue.Full:
                self.metrics.counter("serve.shed").inc()
                raise ServiceOverloaded(
                    f"embed queue is full ({self._queue.maxsize} requests "
                    "waiting); retry with backoff or raise --queue-size"
                ) from None
        pending.done.wait(pending.deadline.remaining_or_none())
        if not pending.resolved:
            timed_out = pending.resolve(None, ServiceTimeout(
                f"request missed its {ms:.0f} ms deadline "
                "(queue wait + forward time); retry with backoff or relax "
                "deadline_ms"))
            if timed_out:
                self._count_timeout()
        if pending.error is not None:
            raise pending.error
        return pending.result

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _start_worker(self, generation: int) -> threading.Thread:
        worker = threading.Thread(target=self._loop, args=(generation,),
                                  name=f"repro-serve-batcher-{generation}",
                                  daemon=True)
        worker.start()
        return worker

    def _loop(self, generation: int) -> None:
        while True:
            head = self._queue.get()
            if head is _SENTINEL:
                self._drain_rejected()
                return
            batch = [head]
            total = len(head.graphs)
            stop = False
            window = Deadline.after(self.max_wait_s)
            while total < self.max_batch_size:
                remaining = window.remaining()
                if remaining <= 0:
                    # Even with no time left, drain whatever is already
                    # queued — coalescing what exists costs no latency.
                    try:
                        follower = self._queue.get_nowait()
                    except queue.Empty:
                        break
                else:
                    try:
                        follower = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if follower is _SENTINEL:
                    stop = True
                    break
                batch.append(follower)
                total += len(follower.graphs)
            self._execute(batch, total, generation)
            if self._stale(generation):
                # Tombstoned while the forward ran: a replacement owns the
                # queue now; this thread must not consume from it again.
                return
            if stop:
                self._drain_rejected()
                return

    def _execute(self, batch: list[_Pending], total: int,
                 generation: int) -> None:
        # Skip requests whose deadline already passed in the queue (their
        # caller has raised ServiceTimeout; computing rows for them only
        # delays the live ones).
        live = [p for p in batch
                if not p.resolved and not p.deadline.expired()]
        for pending in batch:
            if pending not in live:
                if pending.resolve(None, ServiceTimeout(
                        "request expired while queued")):
                    self._count_timeout()
        if not live:
            return
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch.graphs").observe(total)
        self.metrics.histogram("serve.batch.requests").observe(len(live))
        if len(live) > 1:
            self.metrics.counter("serve.coalesced_requests").inc(len(live))
        graphs = [graph for pending in live for graph in pending.graphs]
        self._register(live, generation)
        try:
            action = _inject(FORWARD_POINT, self.metrics)
            if action == "drop":
                # Simulated lost result: leave the waiters to their
                # deadlines (submit resolves them with ServiceTimeout).
                self.metrics.counter("serve.dropped_batches").inc()
                return
            embeddings = self._forward(graphs)
        except BaseException as exc:  # propagate to every waiting caller
            for pending in live:
                pending.resolve(None, exc)
            return
        finally:
            self._clear(generation)
        offset = 0
        for pending in live:
            rows = embeddings[offset:offset + len(pending.graphs)]
            offset += len(pending.graphs)
            pending.resolve(rows)

    # ------------------------------------------------------------------
    # Watchdog: tombstone hung forwards
    # ------------------------------------------------------------------
    def _register(self, batch: list[_Pending], generation: int) -> None:
        timeout = Deadline.after_ms(self.forward_timeout_ms)
        with self._state:
            self._inflight = (batch, timeout, generation)

    def _clear(self, generation: int) -> None:
        with self._state:
            if self._inflight is not None and self._inflight[2] == generation:
                self._inflight = None

    def _stale(self, generation: int) -> bool:
        with self._state:
            return self._generation != generation

    def _watch(self) -> None:
        while not self._closed.wait(self._watchdog_interval):
            self._tombstone_expired()

    def _tombstone_expired(self, force: bool = False) -> None:
        """Retire the worker generation whose forward outlived its budget.

        The hung thread keeps running (python threads cannot be killed)
        but is disowned: its batch is failed with :class:`ServiceTimeout`,
        a fresh worker takes over the queue, and whatever the stale thread
        eventually computes is dropped by first-write-wins resolution.
        """
        with self._state:
            if self._inflight is None:
                return
            batch, timeout, generation = self._inflight
            if generation != self._generation:
                self._inflight = None
                return
            if not force and not timeout.expired():
                return
            self._generation += 1
            replacement = self._generation
            self._inflight = None
        self.metrics.counter("serve.tombstones").inc()
        exc = ServiceTimeout(
            f"forward exceeded {self.forward_timeout_ms:.0f} ms and was "
            "tombstoned; a fresh worker has taken over")
        for pending in batch:
            if pending.resolve(None, exc):
                self._count_timeout()
        if not self._closed.is_set():
            self._worker = self._start_worker(replacement)

    def _count_timeout(self) -> None:
        _record_fault("timeouts")
        self.metrics.counter("serve.timeouts").inc()
        self.metrics.counter("faults.timeouts").inc()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting requests, drain the queue, join the worker.

        Every request enqueued before the sentinel is answered: served by
        the worker on its way out, or — if the worker is hung —
        force-resolved with :class:`ServiceTimeout` here.  Requests
        arriving during close are rejected at admission (the lock orders
        them against the sentinel), so none can hang.
        """
        with self._admit:
            if self._closed.is_set():
                return
            self._closed.set()
            try:
                self._queue.put_nowait(_SENTINEL)
            except queue.Full:
                # Worker is wedged behind a full backlog: reject the
                # backlog (those callers get "closed", not a hang) to make
                # room for the sentinel.
                self._drain_rejected()
                self._queue.put_nowait(_SENTINEL)
        self._worker.join(timeout=timeout)
        if self._worker.is_alive():
            # Hung forward at shutdown: disown it and fail its batch.
            self._tombstone_expired(force=True)
        self._watchdog.join(timeout=1.0)
        self._drain_rejected()

    def _drain_rejected(self) -> None:
        """Fail everything still queued (post-sentinel stragglers)."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _SENTINEL:
                continue
            if item.resolve(None, RuntimeError("MicroBatcher is closed")):
                self.metrics.counter("serve.rejected_on_close").inc()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
