"""Dynamic micro-batching: coalesce concurrent embed requests into one forward.

Serving traffic arrives as many small requests; the encoder is fastest on
one large block-diagonal :class:`~repro.graph.GraphBatch` forward (the
per-forward python/scipy overhead dominates for small graphs).  The
:class:`MicroBatcher` bridges the two: requests enter a bounded FIFO, a
single worker thread takes the oldest request and then keeps collecting
followers for at most ``max_wait_ms`` (or until ``max_batch_size`` graphs
are gathered), runs one forward over the coalesced graph list, and
scatters the embedding rows back to the waiting callers.

Correctness rests on the :class:`~repro.serve.FrozenEncoder` determinism
contract: each graph's embedding is bit-identical regardless of batch
composition, so coalescing is numerically invisible — a request gets the
same bytes whether it rode alone, with its own batch, or sandwiched
between strangers.

Backpressure is explicit: when the queue is full, :meth:`submit` sheds the
request immediately with :class:`ServiceOverloaded` instead of queueing
unbounded latency.  Callers (the HTTP front end maps this to 429) retry or
back off; the ``serve.shed`` counter records every rejection.

This module and :mod:`repro.pipeline` are the only places in the library
allowed to start threads (``scripts/lint_repro.py`` enforces it): the
worker is a daemon, teardown is explicit via :meth:`close`, and in-flight
requests are always answered before the worker exits.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Sequence

import numpy as np

from ..obs import MetricRegistry

__all__ = ["MicroBatcher", "ServiceOverloaded"]

DEFAULT_MAX_BATCH_SIZE = 64
DEFAULT_MAX_WAIT_MS = 2.0
DEFAULT_QUEUE_SIZE = 128


class ServiceOverloaded(RuntimeError):
    """The request queue is full; the caller should back off and retry."""


class _Pending:
    """One in-flight request: graphs in, an embedding block (or error) out."""

    __slots__ = ("graphs", "done", "result", "error")

    def __init__(self, graphs):
        self.graphs = list(graphs)
        self.done = threading.Event()
        self.result: np.ndarray | None = None
        self.error: BaseException | None = None

    def resolve(self, result: np.ndarray | None,
                error: BaseException | None = None) -> None:
        self.result = result
        self.error = error
        self.done.set()


_SENTINEL = object()


class MicroBatcher:
    """Coalesce concurrent embed requests into block-diagonal forwards.

    Parameters
    ----------
    forward:
        ``graphs -> (n, d) ndarray``; typically
        :meth:`repro.serve.FrozenEncoder.embed`.  Runs only on the worker
        thread, so it needs no internal locking.
    max_batch_size:
        Stop coalescing once this many *graphs* are gathered.  The batch
        that crosses the line still executes whole (requests are never
        split), so a single oversized request works — it just forms its
        own batch.
    max_wait_ms:
        How long the worker holds the first request of a batch open for
        followers.  ``0`` disables waiting: each forward takes exactly
        what is already queued.
    queue_size:
        Bound on queued (not yet batched) requests; beyond it
        :meth:`submit` sheds with :class:`ServiceOverloaded`.
    metrics:
        Shared :class:`MetricRegistry` for the ``serve.*`` instruments.
    """

    def __init__(self, forward: Callable[[Sequence], np.ndarray], *,
                 max_batch_size: int = DEFAULT_MAX_BATCH_SIZE,
                 max_wait_ms: float = DEFAULT_MAX_WAIT_MS,
                 queue_size: int = DEFAULT_QUEUE_SIZE,
                 metrics: MetricRegistry | None = None):
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self._forward = forward
        self.max_batch_size = max_batch_size
        self.max_wait_s = max_wait_ms / 1000.0
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        self._closed = threading.Event()
        self._worker = threading.Thread(target=self._loop,
                                        name="repro-serve-batcher",
                                        daemon=True)
        self._worker.start()

    # ------------------------------------------------------------------
    # Request side
    # ------------------------------------------------------------------
    def submit(self, graphs: Sequence) -> np.ndarray:
        """Embed ``graphs``; blocks until the coalesced forward resolves.

        Raises :class:`ServiceOverloaded` immediately when the queue is
        full (load shedding — bounded latency beats unbounded queueing)
        and re-raises any exception the forward raised for this batch.
        """
        if self._closed.is_set():
            raise RuntimeError("MicroBatcher is closed")
        if len(graphs) == 0:
            raise ValueError("cannot embed an empty list of graphs")
        pending = _Pending(graphs)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            self.metrics.counter("serve.shed").inc()
            raise ServiceOverloaded(
                f"embed queue is full ({self._queue.maxsize} requests "
                "waiting); retry with backoff or raise --queue-size"
            ) from None
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        return pending.result

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            head = self._queue.get()
            if head is _SENTINEL:
                return
            batch = [head]
            total = len(head.graphs)
            stop = False
            deadline = time.monotonic() + self.max_wait_s
            while total < self.max_batch_size:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Even with no time left, drain whatever is already
                    # queued — coalescing what exists costs no latency.
                    try:
                        follower = self._queue.get_nowait()
                    except queue.Empty:
                        break
                else:
                    try:
                        follower = self._queue.get(timeout=remaining)
                    except queue.Empty:
                        break
                if follower is _SENTINEL:
                    stop = True
                    break
                batch.append(follower)
                total += len(follower.graphs)
            self._execute(batch, total)
            if stop:
                return

    def _execute(self, batch: list[_Pending], total: int) -> None:
        self.metrics.counter("serve.batches").inc()
        self.metrics.histogram("serve.batch.graphs").observe(total)
        self.metrics.histogram("serve.batch.requests").observe(len(batch))
        if len(batch) > 1:
            self.metrics.counter("serve.coalesced_requests").inc(len(batch))
        graphs = [graph for pending in batch for graph in pending.graphs]
        try:
            embeddings = self._forward(graphs)
        except BaseException as exc:  # propagate to every waiting caller
            for pending in batch:
                pending.resolve(None, exc)
            return
        offset = 0
        for pending in batch:
            rows = embeddings[offset:offset + len(pending.graphs)]
            offset += len(pending.graphs)
            pending.resolve(rows)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting requests, drain the queue, join the worker."""
        if self._closed.is_set():
            return
        self._closed.set()
        # Blocking put: the FIFO guarantees every request enqueued before
        # the sentinel is answered before the worker exits.
        self._queue.put(_SENTINEL)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
