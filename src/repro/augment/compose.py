"""Augmentation combinators: sequencing and (weighted) random choice.

GraphCL samples one augmentation per view uniformly; JOAO replaces the
uniform distribution with a learned one, which it updates through
:meth:`RandomChoice.set_probabilities`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..graph import Graph
from .base import Augmentation

__all__ = ["Compose", "RandomChoice"]


class Compose:
    """Apply augmentations in sequence."""

    def __init__(self, augmentations: Sequence[Augmentation]):
        if not augmentations:
            raise ValueError("Compose needs at least one augmentation")
        self.augmentations = list(augmentations)
        self.name = "+".join(a.name for a in self.augmentations)

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        for aug in self.augmentations:
            graph = aug(graph, rng)
        return graph


class RandomChoice:
    """Pick one augmentation per call according to ``probabilities``."""

    def __init__(self, augmentations: Sequence[Augmentation],
                 probabilities: Sequence[float] | None = None):
        if not augmentations:
            raise ValueError("RandomChoice needs at least one augmentation")
        self.augmentations = list(augmentations)
        self.name = "choice(" + "|".join(a.name for a in self.augmentations) + ")"
        if probabilities is None:
            probabilities = np.full(len(self.augmentations),
                                    1.0 / len(self.augmentations))
        self.set_probabilities(probabilities)
        self.last_choice: int | None = None

    def set_probabilities(self, probabilities: Sequence[float]) -> None:
        probabilities = np.asarray(probabilities, dtype=np.float64)
        if len(probabilities) != len(self.augmentations):
            raise ValueError("probability count must match augmentations")
        if (probabilities < 0).any():
            raise ValueError("probabilities must be non-negative")
        total = probabilities.sum()
        if total <= 0:
            raise ValueError("probabilities must not all be zero")
        self.probabilities = probabilities / total
        # Cached inverse-CDF table.  ``rng.choice(k, p=p)`` re-validates and
        # re-accumulates ``p`` on every call, which dominates per-graph
        # augmentation dispatch; searching the cached CDF against a single
        # ``rng.random()`` draw consumes the generator identically.
        self._cdf = self.probabilities.cumsum()
        self._cdf /= self._cdf[-1]

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        index = int(np.searchsorted(self._cdf, rng.random(), side="right"))
        self.last_choice = index
        return self.augmentations[index](graph, rng)
