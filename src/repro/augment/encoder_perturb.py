"""Encoder perturbation (SimGRACE's "augmentation-free" view).

SimGRACE produces the second view by running the *same* graph through a
perturbed copy of the encoder: ``theta' = theta + eta * epsilon`` where
``epsilon ~ N(0, std(theta_layer)^2)`` per parameter tensor.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module

__all__ = ["perturbed_copy"]


def perturbed_copy(module: Module, magnitude: float,
                   rng: np.random.Generator) -> Module:
    """Return a deep copy of ``module`` with Gaussian-perturbed weights.

    The noise scale of each parameter tensor is ``magnitude * std(tensor)``,
    matching SimGRACE's per-layer scaling.  Zero-variance tensors (e.g.
    freshly initialized biases) receive no noise.
    """
    if magnitude < 0:
        raise ValueError(f"magnitude must be >= 0, got {magnitude}")
    clone = module.clone()
    for _, param in clone.named_parameters():
        std = float(param.data.std())
        if std > 0 and magnitude > 0:
            param.data += rng.normal(0.0, magnitude * std,
                                     size=param.data.shape)
    return clone
