"""Graph augmentations: structural, feature-level, adaptive, encoder-level."""

from .base import Augmentation, Identity
from .structural import EdgePerturb, NodeDrop, SubgraphSample
from .features import AttributeMask, FeatureColumnDrop
from .compose import Compose, RandomChoice
from .adaptive import AdaptiveEdgeDrop, AdaptiveFeatureMask
from .encoder_perturb import perturbed_copy

__all__ = [
    "Augmentation", "Identity",
    "NodeDrop", "EdgePerturb", "SubgraphSample",
    "AttributeMask", "FeatureColumnDrop",
    "Compose", "RandomChoice",
    "AdaptiveEdgeDrop", "AdaptiveFeatureMask",
    "perturbed_copy",
]
