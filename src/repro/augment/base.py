"""Augmentation interface.

An augmentation is a callable ``(graph, rng) -> graph`` producing a perturbed
view of the input (the ``Pert`` operator of the paper's Sec. II-C).  All
randomness comes from the explicit generator so views are reproducible.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..graph import Graph

__all__ = ["Augmentation", "Identity"]


@runtime_checkable
class Augmentation(Protocol):
    """Structural typing for augmentations: callable graph transforms."""

    name: str

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        ...


class Identity:
    """No-op augmentation (used by MVGRL's anchor view and in ablations)."""

    name = "identity"

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        return graph.copy()
