"""GCA's adaptive augmentation: centrality-weighted edge/feature dropping.

GCA (Zhu et al. 2021) drops unimportant edges/features with higher
probability, where importance comes from node centrality.  We use degree
centrality, the cheapest of the three variants in the original paper.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["AdaptiveEdgeDrop", "AdaptiveFeatureMask"]


def _degree_edge_weights(graph: Graph) -> np.ndarray:
    """Per-edge importance = log mean degree of the endpoints."""
    deg = graph.degrees().astype(np.float64)
    if graph.num_edges == 0:
        return np.empty(0)
    mean_deg = 0.5 * (deg[graph.edges[:, 0]] + deg[graph.edges[:, 1]])
    return np.log1p(mean_deg)


class AdaptiveEdgeDrop:
    """Drop edges with probability inversely related to their centrality."""

    name = "adaptive_edge_drop"

    def __init__(self, drop_ratio: float = 0.3, clamp: float = 0.7):
        if not 0.0 <= drop_ratio < 1.0:
            raise ValueError(f"drop_ratio must be in [0, 1), got {drop_ratio}")
        self.drop_ratio = drop_ratio
        self.clamp = clamp

    def drop_probabilities(self, graph: Graph) -> np.ndarray:
        weights = _degree_edge_weights(graph)
        if weights.size == 0:
            return weights
        spread = weights.max() - weights.mean()
        if spread <= 1e-12:
            return np.full(len(weights), self.drop_ratio)
        normalized = (weights.max() - weights) / spread
        return np.minimum(normalized * self.drop_ratio, self.clamp)

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        out = graph.copy()
        if graph.num_edges == 0:
            return out
        probs = self.drop_probabilities(graph)
        keep = rng.random(len(probs)) >= probs
        if not keep.any():  # never produce an edgeless view
            keep[int(rng.integers(0, len(keep)))] = True
        out.edges = graph.edges[keep]
        return out


class AdaptiveFeatureMask:
    """Mask feature columns with probability inverse to their weighted use."""

    name = "adaptive_feature_mask"

    def __init__(self, mask_ratio: float = 0.3, clamp: float = 0.7):
        if not 0.0 <= mask_ratio < 1.0:
            raise ValueError(f"mask_ratio must be in [0, 1), got {mask_ratio}")
        self.mask_ratio = mask_ratio
        self.clamp = clamp

    def mask_probabilities(self, graph: Graph) -> np.ndarray:
        deg = graph.degrees().astype(np.float64).reshape(-1, 1)
        weights = np.log1p(np.abs(graph.x) * deg).sum(axis=0)
        spread = weights.max() - weights.mean()
        if spread <= 1e-12:
            return np.full(graph.num_features, self.mask_ratio)
        normalized = (weights.max() - weights) / spread
        return np.minimum(normalized * self.mask_ratio, self.clamp)

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        out = graph.copy()
        probs = self.mask_probabilities(graph)
        cols = rng.random(graph.num_features) < probs
        out.x = out.x.copy()
        out.x[:, cols] = 0.0
        return out
