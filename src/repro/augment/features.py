"""Feature-level augmentations: attribute masking and column dropping."""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["AttributeMask", "FeatureColumnDrop"]


class AttributeMask:
    """Zero out a random fraction of per-node feature entries.

    GraphCL's attribute-masking operator; GRACE uses the column variant
    (:class:`FeatureColumnDrop`).
    """

    name = "attr_mask"

    def __init__(self, mask_ratio: float = 0.2):
        if not 0.0 <= mask_ratio < 1.0:
            raise ValueError(f"mask_ratio must be in [0, 1), got {mask_ratio}")
        self.mask_ratio = mask_ratio

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        out = graph.copy()
        mask = rng.random(out.x.shape) < self.mask_ratio
        out.x = np.where(mask, 0.0, out.x)
        return out


class FeatureColumnDrop:
    """Zero entire feature columns (GRACE/GCA-style feature masking)."""

    name = "feature_column_drop"

    def __init__(self, drop_ratio: float = 0.2):
        if not 0.0 <= drop_ratio < 1.0:
            raise ValueError(f"drop_ratio must be in [0, 1), got {drop_ratio}")
        self.drop_ratio = drop_ratio

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        out = graph.copy()
        cols = rng.random(out.x.shape[1]) < self.drop_ratio
        out.x = out.x.copy()
        out.x[:, cols] = 0.0
        return out
