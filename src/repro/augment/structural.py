"""Structural augmentations: node dropping, edge perturbation, subgraphs.

These are GraphCL's augmentation family (You et al. 2020); JOAO reuses the
same operators and learns a sampling distribution over them.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["NodeDrop", "EdgePerturb", "SubgraphSample"]


def _validate_ratio(ratio: float, name: str) -> None:
    if not 0.0 <= ratio < 1.0:
        raise ValueError(f"{name} must be in [0, 1), got {ratio}")


class NodeDrop:
    """Remove a random fraction of nodes and keep the induced subgraph.

    At least one node always survives so the view is non-degenerate.
    """

    name = "node_drop"

    def __init__(self, drop_ratio: float = 0.2):
        _validate_ratio(drop_ratio, "drop_ratio")
        self.drop_ratio = drop_ratio

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        n = graph.num_nodes
        keep_count = max(1, int(round(n * (1.0 - self.drop_ratio))))
        kept = rng.choice(n, size=keep_count, replace=False)
        return graph.subgraph(kept)


class EdgePerturb:
    """Delete a fraction of edges and add the same number of random edges."""

    name = "edge_perturb"

    def __init__(self, perturb_ratio: float = 0.2, add_edges: bool = True):
        _validate_ratio(perturb_ratio, "perturb_ratio")
        self.perturb_ratio = perturb_ratio
        self.add_edges = add_edges

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        out = graph.copy()
        m = graph.num_edges
        if m == 0:
            return out
        num_changed = int(round(m * self.perturb_ratio))
        if num_changed == 0:
            return out
        keep_mask = np.ones(m, dtype=bool)
        keep_mask[rng.choice(m, size=num_changed, replace=False)] = False
        kept = graph.edges[keep_mask]
        if self.add_edges and graph.num_nodes > 1:
            existing = graph.edge_set()
            additions: list[tuple[int, int]] = []
            attempts = 0
            while len(additions) < num_changed and attempts < 20 * num_changed:
                attempts += 1
                u, v = rng.integers(0, graph.num_nodes, size=2)
                if u == v:
                    continue
                edge = (int(min(u, v)), int(max(u, v)))
                if edge in existing:
                    continue
                existing.add(edge)
                additions.append(edge)
            if additions:
                kept = np.concatenate(
                    [kept, np.array(additions, dtype=np.int64)], axis=0)
        out.edges = Graph.canonical_edges(kept)
        return out


class SubgraphSample:
    """Random-walk subgraph sampling: keep nodes reached by a walk."""

    name = "subgraph"

    def __init__(self, keep_ratio: float = 0.8):
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError(f"keep_ratio must be in (0, 1], got {keep_ratio}")
        self.keep_ratio = keep_ratio

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        n = graph.num_nodes
        target = max(1, int(round(n * self.keep_ratio)))
        neighbors: dict[int, list[int]] = {i: [] for i in range(n)}
        for u, v in graph.edges:
            neighbors[int(u)].append(int(v))
            neighbors[int(v)].append(int(u))
        visited = {int(rng.integers(0, n))}
        frontier = list(visited)
        # Random-walk-with-restart style expansion until the target size.
        while len(visited) < target:
            if not frontier:
                # Disconnected remainder: jump to a fresh random node.
                remaining = [i for i in range(n) if i not in visited]
                fresh = int(rng.choice(remaining))
                visited.add(fresh)
                frontier.append(fresh)
                continue
            current = frontier[int(rng.integers(0, len(frontier)))]
            options = [v for v in neighbors[current] if v not in visited]
            if not options:
                frontier.remove(current)
                continue
            nxt = int(options[int(rng.integers(0, len(options)))])
            visited.add(nxt)
            frontier.append(nxt)
        return graph.subgraph(np.array(sorted(visited)))
