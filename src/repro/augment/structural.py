"""Structural augmentations: node dropping, edge perturbation, subgraphs.

These are GraphCL's augmentation family (You et al. 2020); JOAO reuses the
same operators and learns a sampling distribution over them.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph

__all__ = ["NodeDrop", "EdgePerturb", "SubgraphSample"]


def _validate_ratio(ratio: float, name: str) -> None:
    if not 0.0 <= ratio < 1.0:
        raise ValueError(f"{name} must be in [0, 1), got {ratio}")


def _cached_structure(graph, kind: str, build):
    """Memoize a structural precomputation in the active pipeline cache.

    These derived structures are pure functions of the graph's edges; with
    no active cache (the seed-era default) they are rebuilt per call.
    """
    from ..pipeline.cache import active_structure_cache

    cache = active_structure_cache()
    if cache is None:
        return build()
    return cache.get(graph, kind, (), build)


def _edge_keys(graph) -> np.ndarray:
    """Canonical undirected edge keys ``min * n + max`` for membership tests."""
    def build():
        n = graph.num_nodes
        return graph.edges.min(axis=1) * n + graph.edges.max(axis=1)

    return _cached_structure(graph, "edge_keys", build)


def _neighbor_lists(graph) -> tuple[np.ndarray, np.ndarray]:
    """CSR-style neighbour lists ``(flat_neighbors, starts)``.

    Sorting by (source, edge index) keeps each node's neighbours in
    edge-list order — the same order the old per-edge append loop produced
    — so random walks consume RNG draws identically.
    """
    def build():
        n, m = graph.num_nodes, graph.num_edges
        src = np.concatenate([graph.edges[:, 0], graph.edges[:, 1]])
        dst = np.concatenate([graph.edges[:, 1], graph.edges[:, 0]])
        edge_idx = np.concatenate([np.arange(m), np.arange(m)])
        order = np.lexsort((edge_idx, src))
        flat_neighbors = dst[order]
        starts = np.searchsorted(src[order], np.arange(n + 1))
        return flat_neighbors, starts

    return _cached_structure(graph, "neighbors", build)


class NodeDrop:
    """Remove a random fraction of nodes and keep the induced subgraph.

    At least one node always survives so the view is non-degenerate.
    """

    name = "node_drop"

    def __init__(self, drop_ratio: float = 0.2):
        _validate_ratio(drop_ratio, "drop_ratio")
        self.drop_ratio = drop_ratio

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        n = graph.num_nodes
        keep_count = max(1, int(round(n * (1.0 - self.drop_ratio))))
        kept = rng.choice(n, size=keep_count, replace=False)
        return graph.subgraph(kept)


class EdgePerturb:
    """Delete a fraction of edges and add the same number of random edges."""

    name = "edge_perturb"

    def __init__(self, perturb_ratio: float = 0.2, add_edges: bool = True):
        _validate_ratio(perturb_ratio, "perturb_ratio")
        self.perturb_ratio = perturb_ratio
        self.add_edges = add_edges

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        out = graph.copy()
        m = graph.num_edges
        if m == 0:
            return out
        num_changed = int(round(m * self.perturb_ratio))
        if num_changed == 0:
            return out
        keep_mask = np.ones(m, dtype=bool)
        keep_mask[rng.choice(m, size=num_changed, replace=False)] = False
        kept = graph.edges[keep_mask]
        if self.add_edges and graph.num_nodes > 1:
            # Batched rejection sampling: draw the whole attempt budget at
            # once, then keep the first ``num_changed`` proposals that are
            # not self loops, not duplicates, and not existing edges — the
            # same acceptance rules the per-draw loop applied.
            n = graph.num_nodes
            proposals = rng.integers(0, n, size=(20 * num_changed, 2))
            lo = proposals.min(axis=1)
            hi = proposals.max(axis=1)
            valid = lo != hi
            keys = (lo * n + hi)[valid]
            _, first = np.unique(keys, return_index=True)
            keys = keys[np.sort(first)]  # unique, in proposal order
            existing_keys = _edge_keys(graph)
            keys = keys[~np.isin(keys, existing_keys)][:num_changed]
            if len(keys):
                additions = np.stack([keys // n, keys % n], axis=1)
                kept = np.concatenate([kept, additions], axis=0)
        out.edges = Graph.canonical_edges(kept)
        return out


class SubgraphSample:
    """Random-walk subgraph sampling: keep nodes reached by a walk."""

    name = "subgraph"

    def __init__(self, keep_ratio: float = 0.8):
        if not 0.0 < keep_ratio <= 1.0:
            raise ValueError(f"keep_ratio must be in (0, 1], got {keep_ratio}")
        self.keep_ratio = keep_ratio

    def __call__(self, graph: Graph, rng: np.random.Generator) -> Graph:
        n = graph.num_nodes
        target = max(1, int(round(n * self.keep_ratio)))
        flat_neighbors, starts = _neighbor_lists(graph)
        visited = np.zeros(n, dtype=bool)
        start = int(rng.integers(0, n))
        visited[start] = True
        num_visited = 1
        frontier = [start]
        # Random-walk-with-restart style expansion until the target size.
        while num_visited < target:
            if not frontier:
                # Disconnected remainder: jump to a fresh random node.
                remaining = np.flatnonzero(~visited)
                fresh = int(rng.choice(remaining))
                visited[fresh] = True
                num_visited += 1
                frontier.append(fresh)
                continue
            current = frontier[int(rng.integers(0, len(frontier)))]
            adjacent = flat_neighbors[starts[current]:starts[current + 1]]
            options = adjacent[~visited[adjacent]]
            if not len(options):
                frontier.remove(current)
                continue
            nxt = int(options[int(rng.integers(0, len(options)))])
            visited[nxt] = True
            num_visited += 1
            frontier.append(nxt)
        return graph.subgraph(np.flatnonzero(visited))
