"""Dimensional-collapse diagnostics (paper Sec. III-A, Figs. 1 and 5).

The paper detects collapse by the singular spectrum of the representation
covariance matrix (Eq. 5): trailing zero singular values mean the embeddings
live in a lower-dimensional subspace.  We expose the spectrum itself plus two
scalar summaries used by the tests and benchmarks: the number of collapsed
dimensions and the effective rank (exponential of the spectral entropy).
"""

from __future__ import annotations

import numpy as np

__all__ = ["covariance_matrix", "singular_spectrum", "log_spectrum",
           "num_collapsed_dimensions", "effective_rank",
           "matrix_effective_rank"]


def covariance_matrix(embeddings: np.ndarray) -> np.ndarray:
    """Sample covariance ``C = 1/n sum (u_i - mean)(u_i - mean)^T`` (Eq. 5)."""
    embeddings = np.asarray(embeddings, dtype=np.float64)
    if embeddings.ndim != 2:
        raise ValueError("embeddings must be a 2D (n, d) array")
    centered = embeddings - embeddings.mean(axis=0, keepdims=True)
    return centered.T @ centered / len(embeddings)


def singular_spectrum(embeddings: np.ndarray) -> np.ndarray:
    """Sorted (descending) singular values of the covariance matrix."""
    cov = covariance_matrix(embeddings)
    return np.linalg.svd(cov, compute_uv=False)


def log_spectrum(embeddings: np.ndarray, floor: float = 1e-12) -> np.ndarray:
    """Log-scale spectrum as plotted in the paper's Fig. 1 / Fig. 5."""
    return np.log10(np.maximum(singular_spectrum(embeddings), floor))


def num_collapsed_dimensions(embeddings: np.ndarray,
                             tol: float = 1e-8) -> int:
    """Count dimensions whose singular value is (relatively) ~zero."""
    spectrum = singular_spectrum(embeddings)
    top = spectrum[0] if spectrum[0] > 0 else 1.0
    return int((spectrum / top < tol).sum())


def matrix_effective_rank(matrix: np.ndarray, eps: float = 1e-12) -> float:
    """Effective rank of a *matrix* (spectral entropy of its own SVD).

    Unlike :func:`effective_rank`, which diagnoses an (n, d) embedding
    cloud through its covariance, this measures the rank of a weight
    matrix directly — used by the Lemma 2/3 gradient-flow analysis in
    :mod:`repro.core.theory`.
    """
    spectrum = np.linalg.svd(np.asarray(matrix, dtype=np.float64),
                             compute_uv=False)
    total = spectrum.sum()
    if total <= eps:
        return 0.0
    p = spectrum / total
    entropy = -(p * np.log(p + eps)).sum()
    return float(np.exp(entropy))


def effective_rank(embeddings: np.ndarray, eps: float = 1e-12) -> float:
    """Roy & Vetterli effective rank: ``exp(H(sigma / sum sigma))``.

    A spectrum concentrated on few directions gives a small effective rank;
    a flat spectrum over d directions gives ~d.  GradGCL's claim (Lemma 3,
    Fig. 5) is that the gradient loss raises this number.
    """
    spectrum = singular_spectrum(embeddings)
    total = spectrum.sum()
    if total <= eps:
        return 0.0
    p = spectrum / total
    entropy = -(p * np.log(p + eps)).sum()
    return float(np.exp(entropy))
