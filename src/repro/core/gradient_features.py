"""Closed-form gradient features — the heart of GradGCL (paper Eq. 6).

GradGCL's second information channel is the gradient of the contrastive loss
with respect to each sample's representation, ``g_n = d loss / d u_n``.  For
every loss family used in the paper this gradient has a closed form that is
itself a differentiable function of the batch of representations, so we build
it *inside* the autodiff graph: the gradient contrastive loss (Eq. 19) then
trains the encoder end-to-end with ordinary first-order backprop — no
second-order machinery is required.

Derivations (per anchor ``i``; ``p`` denotes the softmax over candidates):

* InfoNCE with dot-product similarity (Eq. 6)::

      loss_i = -log softmax_i(u_i . v_* / tau)
      d loss_i / d u_i = (sum_j p_ij v_j - v_i) / tau = ((p @ v) - v) / tau

* InfoNCE with euclidean similarity (Eq. 20, used in the collapse analysis)
  gives exactly ``(p @ v) - v`` — the same functional form with ``tau = 1``.

* Cosine similarity: Eq. 6 is applied to the L2-normalized representations,
  i.e. the gradient is taken with respect to the normalized embedding (the
  quantity the loss actually compares).

* JSD (InfoGraph / MVGRL): with scores ``T = u v^T``,

      d loss / d u_i = -sigmoid(-T_ii) v_i / P + sum_{j != i} sigmoid(T_ij) v_j / N

  where ``P``/``N`` are the positive/negative pair counts.

* Bootstrap cosine (BGRL / SGCL): for ``loss_i = 2 - 2 cos(p_i, z_i)``,

      d loss_i / d p_i = 2 (cos_i p_hat_i - z_hat_i) / |p_i|
"""

from __future__ import annotations

import numpy as np

from ..tensor import (
    Tensor,
    call,
    dot_rows,
    l2_normalize,
    pairwise_sqdist,
    softmax,
)

__all__ = [
    "infonce_gradient_features",
    "jsd_gradient_features",
    "bipartite_jsd_gradient_features",
    "bootstrap_gradient_features",
    "aggregate_gradient_features",
]


def infonce_gradient_features(u: Tensor, v: Tensor, tau: float = 0.5,
                              sim: str = "cos") -> tuple[Tensor, Tensor]:
    """Gradient features of the InfoNCE loss for both views.

    Returns ``(g, g')`` where ``g[i] = d loss/d u_i`` (anchoring on ``u``)
    and ``g'[i] = d loss/d v_i`` (anchoring on ``v``); both are
    differentiable functions of the inputs.

    Parameters
    ----------
    sim:
        ``"dot"`` (paper Eq. 6), ``"cos"`` (Eq. 6 on normalized embeddings),
        or ``"euclid"`` (Eq. 20's gradient).
    """
    if u.shape != v.shape:
        raise ValueError(f"view shapes differ: {u.shape} vs {v.shape}")
    if tau <= 0:
        raise ValueError(f"temperature must be positive, got {tau}")
    if sim == "euclid":
        # The euclid form chains the softmax through pairwise distances and
        # has no registered kernel; it is its own (reference-only) path.
        grad_u = _anchor_gradient(u, v, tau, sim)
        grad_v = _anchor_gradient(v, u, tau, sim)
        return grad_u, grad_v
    if sim == "cos":
        u_in, v_in = call("l2_normalize", u), call("l2_normalize", v)
    elif sim == "dot":
        u_in, v_in = u, v
    else:
        raise ValueError(f"unknown similarity {sim!r}")
    scale = 1.0 / tau
    grad_u = call("gradient_features", u_in, v_in, tau) * scale
    grad_v = call("gradient_features", v_in, u_in, tau) * scale
    return grad_u, grad_v


def _anchor_gradient(anchor: Tensor, candidates: Tensor, tau: float,
                     sim: str) -> Tensor:
    """``(p @ candidates) - candidates`` with ``p`` the anchor softmax.

    Reference (unfused) composition; :func:`repro.tensor.fused_gradient_features`
    is the single-node equivalent for dot-product logits.
    """
    if sim == "euclid":
        logits = pairwise_sqdist(anchor, candidates) * -0.5
    else:
        logits = (anchor @ candidates.T) / tau
    p = softmax(logits, axis=1)
    return p @ candidates - candidates


def jsd_gradient_features(u: Tensor, v: Tensor) -> tuple[Tensor, Tensor]:
    """Gradient features of the paired-view JSD loss for both views."""
    if u.shape != v.shape:
        raise ValueError(f"view shapes differ: {u.shape} vs {v.shape}")
    n = len(u)
    if n < 2:
        raise ValueError("JSD gradients need at least 2 samples")
    positive_mask = np.eye(n, dtype=bool)
    grad_u = _jsd_anchor_gradient(u, v, positive_mask)
    grad_v = _jsd_anchor_gradient(v, u, positive_mask)
    return grad_u, grad_v


def _jsd_anchor_gradient(anchor: Tensor, candidates: Tensor,
                         positive_mask: np.ndarray) -> Tensor:
    """d(JSD loss)/d(anchor rows) as a differentiable composition."""
    num_pos = positive_mask.sum()
    num_neg = positive_mask.size - num_pos
    scores = anchor @ candidates.T
    sig = scores.sigmoid()  # sigma(T)
    pos = Tensor(positive_mask.astype(np.float64))
    neg = Tensor((~positive_mask).astype(np.float64))
    # d softplus(-T)/dT = -sigma(-T) = sigma(T) - 1 on positive pairs;
    # d softplus(T)/dT  =  sigma(T) on negative pairs.
    weights = (sig - 1.0) * pos / float(num_pos) + sig * neg / float(num_neg)
    return weights @ candidates


def bipartite_jsd_gradient_features(
        local: Tensor, global_: Tensor,
        positive_mask: np.ndarray) -> tuple[Tensor, Tensor]:
    """Gradient features of the local-global JSD loss.

    Returns ``(g_local, g_global)`` — the loss gradients with respect to each
    local (node) embedding and each global (graph) embedding.  This is how
    GradGCL attaches to InfoGraph/MVGRL, whose "two views" are the local and
    global channels.
    """
    positive_mask = np.asarray(positive_mask, dtype=bool)
    num_pos = positive_mask.sum()
    num_neg = positive_mask.size - num_pos
    if num_pos == 0 or num_neg == 0:
        raise ValueError("mask needs both positive and negative pairs")
    scores = local @ global_.T
    sig = scores.sigmoid()
    pos = Tensor(positive_mask.astype(np.float64))
    neg = Tensor((~positive_mask).astype(np.float64))
    weights = (sig - 1.0) * pos / float(num_pos) + sig * neg / float(num_neg)
    grad_local = weights @ global_
    grad_global = weights.T @ local
    return grad_local, grad_global


def aggregate_gradient_features(gradients: Tensor, graph) -> Tensor:
    """One-hop neighbourhood aggregation of node-level gradient features.

    The paper observes (Sec. IV-B) that node-classification gains are
    smaller because per-node gradients "are computed on an individual
    instance without aggregating neighborhood gradients".  This extension
    (flagged as future work there) smooths the gradient channel with a
    random-walk-normalized hop, ``g_agg = D^-1 (A + I) g``, before the
    gradient InfoNCE — giving the gradient channel the same receptive-field
    structure the representations enjoy.
    """
    from ..graph import adjacency_matrix, row_normalize
    from ..tensor import spmm

    operator = row_normalize(adjacency_matrix(graph, self_loops=True))
    return spmm(operator, gradients)


def bootstrap_gradient_features(prediction: Tensor,
                                target: Tensor) -> Tensor:
    """Gradient of the BGRL cosine loss w.r.t. each prediction row."""
    if prediction.shape != target.shape:
        raise ValueError(
            f"shape mismatch: {prediction.shape} vs {target.shape}")
    p_hat = l2_normalize(prediction)
    z_hat = l2_normalize(target.detach())
    cos = dot_rows(p_hat, z_hat).reshape(-1, 1)
    norms = ((prediction * prediction).sum(axis=1, keepdims=True) + 1e-12).sqrt()
    return (p_hat * cos - z_hat) * 2.0 / norms
