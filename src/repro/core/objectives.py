"""Contrastive objectives and the GradGCL plug-in wrapper (paper Eq. 18).

Every method in :mod:`repro.methods` delegates its view-vs-view loss to a
:class:`ContrastiveObjective`.  GradGCL is then literally a plug-in: wrapping
a method's objective in :class:`GradGCLObjective` adds the gradient
contrastive term without touching the method itself, mirroring the paper's
"XXX(f+g)" construction:

* ``weight = 0``   -> the base model ("XXX"),
* ``weight = 1``   -> gradients alone ("XXX(g)"),
* ``0 < weight < 1`` -> the full GradGCL ("XXX(f+g)").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..losses import info_nce, jsd_loss
from ..tensor import Tensor
from .gradient_features import (
    infonce_gradient_features,
    jsd_gradient_features,
)

__all__ = [
    "ContrastiveObjective",
    "InfoNCEObjective",
    "JSDObjective",
    "GradGCLObjective",
    "AlignmentAugmentedObjective",
    "gradgcl",
]


class ContrastiveObjective:
    """Maps a pair of view embeddings ``(u, v)`` to a scalar loss.

    Subclasses that support GradGCL also implement
    :meth:`gradient_features`, returning the per-sample loss gradients
    ``(g, g')`` as differentiable tensors (paper Eq. 6).
    """

    def loss(self, u: Tensor, v: Tensor) -> Tensor:
        raise NotImplementedError

    def gradient_features(self, u: Tensor, v: Tensor) -> tuple[Tensor, Tensor]:
        raise NotImplementedError(
            f"{type(self).__name__} does not expose gradient features")

    def __call__(self, u: Tensor, v: Tensor) -> Tensor:
        return self.loss(u, v)


@dataclass
class InfoNCEObjective(ContrastiveObjective):
    """The classic representation loss ``l_f`` (paper Eq. 4 / Eq. 20)."""

    tau: float = 0.5
    sim: str = "cos"
    symmetric: bool = True

    def loss(self, u: Tensor, v: Tensor) -> Tensor:
        return info_nce(u, v, tau=self.tau, sim=self.sim,
                        symmetric=self.symmetric)

    def gradient_features(self, u: Tensor, v: Tensor) -> tuple[Tensor, Tensor]:
        return infonce_gradient_features(u, v, tau=self.tau, sim=self.sim)


@dataclass
class JSDObjective(ContrastiveObjective):
    """Paired-view JSD objective (MVGRL-style graph-graph contrast)."""

    def loss(self, u: Tensor, v: Tensor) -> Tensor:
        return jsd_loss(u, v)

    def gradient_features(self, u: Tensor, v: Tensor) -> tuple[Tensor, Tensor]:
        return jsd_gradient_features(u, v)


@dataclass
class GradGCLObjective(ContrastiveObjective):
    """GradGCL combined objective ``(1-a) l_f + a l_g`` (paper Eq. 18).

    Parameters
    ----------
    base:
        The wrapped representation objective (supplies ``l_f`` and Eq. 6's
        gradient features).
    weight:
        The gradient-loss weight ``a`` in Eq. 18.
    grad_tau / grad_sim:
        Temperature and similarity of the gradient InfoNCE ``l_g`` (Eq. 19).
    detach_features:
        Ablation switch: treat the gradient features as constants instead of
        differentiable functions of the representations.  The paper's method
        keeps them differentiable (default False).

    Both terms ride the fused tensor kernels when globally enabled: ``l_f``
    dispatches through :func:`repro.losses.info_nce` and ``l_g`` through the
    fused Eq. 6 features plus fused InfoNCE (see :mod:`repro.tensor.fused`);
    ``fused_kernels(False)`` selects the primitive reference compositions.
    """

    base: ContrastiveObjective = field(default_factory=InfoNCEObjective)
    weight: float = 0.5
    grad_tau: float = 0.5
    grad_sim: str = "cos"
    detach_features: bool = False

    def __post_init__(self):
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(
                f"gradient weight must be in [0, 1], got {self.weight}")
        self.last_parts: dict[str, float] = {}

    def loss(self, u: Tensor, v: Tensor) -> Tensor:
        parts: dict[str, float] = {}
        total = None
        if self.weight < 1.0:
            loss_f = self.base.loss(u, v)
            parts["loss_f"] = loss_f.item()
            total = loss_f * (1.0 - self.weight)
        if self.weight > 0.0:
            loss_g = self.gradient_loss(u, v)
            parts["loss_g"] = loss_g.item()
            term = loss_g * self.weight
            total = term if total is None else total + term
        self.last_parts = parts
        return total

    def gradient_loss(self, u: Tensor, v: Tensor) -> Tensor:
        """The gradient contrastive term ``l_g`` (paper Eq. 19)."""
        g_u, g_v = self.base.gradient_features(u, v)
        if self.detach_features:
            g_u, g_v = g_u.detach(), g_v.detach()
        return info_nce(g_u, g_v, tau=self.grad_tau, sim=self.grad_sim)

    def gradient_features(self, u: Tensor, v: Tensor) -> tuple[Tensor, Tensor]:
        return self.base.gradient_features(u, v)


@dataclass
class AlignmentAugmentedObjective(ContrastiveObjective):
    """Ablation baseline for Fig. 12(b): base loss + alignment regularizer.

    Instead of GradGCL's gradient channel, this adds Wang & Isola's alignment
    loss with the same mixing weight, letting the benchmarks compare "extra
    alignment pressure" against "extra gradient information".
    """

    base: ContrastiveObjective = field(default_factory=InfoNCEObjective)
    weight: float = 0.5

    def loss(self, u: Tensor, v: Tensor) -> Tensor:
        from ..losses import alignment_loss

        base = self.base.loss(u, v)
        align = alignment_loss(u, v)
        return base * (1.0 - self.weight) + align * self.weight


def gradgcl(method, weight: float = 0.5, *, grad_tau: float | None = None,
            grad_sim: str = "cos", detach_features: bool = False):
    """Wrap a method's objective with GradGCL and return the method.

    This is the public plug-in entry point::

        model = GraphCL(...)           # XXX
        model = gradgcl(model, 0.5)    # XXX(f+g)
        model = gradgcl(model, 1.0)    # XXX(g)
    """
    base = method.objective
    if isinstance(base, GradGCLObjective):
        base = base.base  # re-wrapping replaces the old weight
    tau = grad_tau
    if tau is None:
        tau = getattr(base, "tau", 0.5)
    method.objective = GradGCLObjective(
        base=base, weight=weight, grad_tau=tau, grad_sim=grad_sim,
        detach_features=detach_features)
    return method
