"""Hard-negative diagnostics (paper Sec. III-A.2).

The paper argues existing GCL "may not be able to distinguish samples that
are similar in terms of features but do not belong to the same class, i.e.,
failing to handle hard negative samples", and that the gradient channel
carries the missing instance-level structure.  These metrics quantify that:

* :func:`hard_negative_rate` — fraction of anchors whose nearest other
  sample (cosine) belongs to a different class ("hard" confusable
  neighbours in the embedding space);
* :func:`hard_negative_margin` — mean similarity gap between each anchor's
  most-similar same-class and most-similar different-class samples
  (negative values = hard negatives dominate).
"""

from __future__ import annotations

import numpy as np

from ..eval.similarity import cosine_similarity

__all__ = ["hard_negative_rate", "hard_negative_margin"]


def _masked_sims(embeddings: np.ndarray, labels: np.ndarray):
    labels = np.asarray(labels)
    sims = cosine_similarity(embeddings)
    np.fill_diagonal(sims, -np.inf)
    same = labels[:, None] == labels[None, :]
    return sims, same


def hard_negative_rate(embeddings: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of samples whose nearest neighbour has a different label."""
    sims, same = _masked_sims(embeddings, labels)
    nearest = sims.argmax(axis=1)
    return float((~same[np.arange(len(sims)), nearest]).mean())


def hard_negative_margin(embeddings: np.ndarray,
                         labels: np.ndarray) -> float:
    """Mean (best same-class sim) - (best other-class sim) per anchor.

    Positive margins mean intra-class neighbours dominate; anchors with no
    same-class or no other-class candidates are skipped.
    """
    sims, same = _masked_sims(embeddings, labels)
    margins = []
    for i in range(len(sims)):
        intra = sims[i][same[i]]
        inter = sims[i][~same[i]]
        intra = intra[np.isfinite(intra)]
        inter = inter[np.isfinite(inter)]
        if intra.size == 0 or inter.size == 0:
            continue
        margins.append(intra.max() - inter.max())
    if not margins:
        raise ValueError("need both intra- and inter-class candidates")
    return float(np.mean(margins))
