"""GradGCL core: gradient features, combined objective, collapse analysis."""

from .gradient_features import (
    aggregate_gradient_features,
    bipartite_jsd_gradient_features,
    bootstrap_gradient_features,
    infonce_gradient_features,
    jsd_gradient_features,
)
from .objectives import (
    AlignmentAugmentedObjective,
    ContrastiveObjective,
    GradGCLObjective,
    InfoNCEObjective,
    JSDObjective,
    gradgcl,
)
from .collapse import (
    covariance_matrix,
    effective_rank,
    log_spectrum,
    matrix_effective_rank,
    num_collapsed_dimensions,
    singular_spectrum,
)
from .hard_negatives import hard_negative_margin, hard_negative_rate
from .theory import (
    GradientFlowResult,
    euclid_infonce_linear,
    simulate_gradient_flow,
    weight_velocity,
)

__all__ = [
    "infonce_gradient_features", "jsd_gradient_features",
    "bipartite_jsd_gradient_features", "bootstrap_gradient_features",
    "aggregate_gradient_features",
    "ContrastiveObjective", "InfoNCEObjective", "JSDObjective",
    "GradGCLObjective", "AlignmentAugmentedObjective", "gradgcl",
    "covariance_matrix", "singular_spectrum", "log_spectrum",
    "num_collapsed_dimensions", "effective_rank", "matrix_effective_rank",
    "euclid_infonce_linear", "weight_velocity", "simulate_gradient_flow",
    "GradientFlowResult",
    "hard_negative_rate", "hard_negative_margin",
]
