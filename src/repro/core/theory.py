"""Executable version of the paper's linear-encoder analysis (Sec. III-B.2).

The paper studies dimensional collapse in the tractable setting of Jing et
al.: a *linear* encoder ``u = W x`` trained with the euclidean InfoNCE loss
(Eq. 20) under gradient flow.  Lemma 2 gives the closed-form weight
velocity

    dW/dt = -G,   G = sum_i (g_{u_i} x_i^T + g_{u'_i} x'_i^T),

with ``g`` the per-sample loss gradients, and Lemma 3 argues that enforcing
GradGCL's gradient-similarity structure keeps ``G`` (hence ``W``) high
rank, preventing the covariance collapse.

This module makes those statements executable:

* :func:`euclid_infonce_linear` — Eq. 20 for a linear encoder;
* :func:`weight_velocity` — Lemma 2's closed-form ``G`` (tested against
  autograd in ``tests/core/test_theory.py``);
* :func:`simulate_gradient_flow` — discretized gradient flow with an
  optional GradGCL term, tracking the effective rank of ``W`` and of the
  embedding covariance over time (Lemma 3's consequence).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..losses import info_nce
from ..tensor import Tensor
from ..utils.seed import seeded_rng
from .collapse import effective_rank, matrix_effective_rank
from .gradient_features import infonce_gradient_features

__all__ = ["euclid_infonce_linear", "weight_velocity",
           "simulate_gradient_flow", "GradientFlowResult"]


def euclid_infonce_linear(weight: Tensor, x: np.ndarray,
                          x_pos: np.ndarray) -> Tensor:
    """Paper Eq. 20 for the linear encoder ``u = W x``.

    ``x``/``x_pos`` are (n, d_in) data and positive-pair arrays; returns the
    euclidean InfoNCE loss of the embeddings (mean over anchors).
    """
    u = Tensor(x) @ weight.T
    v = Tensor(x_pos) @ weight.T
    return info_nce(u, v, tau=1.0, sim="euclid", symmetric=False)


def weight_velocity(weight: np.ndarray, x: np.ndarray,
                    x_pos: np.ndarray) -> np.ndarray:
    """Lemma 2's closed form: ``dW/dt = -(g_u^T x + g_v^T x_pos) / n``.

    ``g_u``/``g_v`` are the euclidean-InfoNCE gradients of the mean loss
    with respect to the embeddings of each view (anchoring on ``x`` only,
    matching Eq. 20's asymmetric sum); the ``1/n`` matches the mean loss
    used by :func:`euclid_infonce_linear`.
    """
    n = len(x)
    u = Tensor(x @ weight.T)
    v = Tensor(x_pos @ weight.T)
    # Anchor direction: gradients of the anchor loss w.r.t. u_i; plus the
    # candidate-side gradients w.r.t. each v_j (they appear as positives
    # and negatives of every anchor).
    g_u = _anchor_grad_euclid(u, v)
    g_v = _candidate_grad_euclid(u, v)
    return -(g_u.T @ x + g_v.T @ x_pos) / n


def _anchor_grad_euclid(u: Tensor, v: Tensor) -> np.ndarray:
    g, _ = infonce_gradient_features(u, v, tau=1.0, sim="euclid")
    return g.data


def _candidate_grad_euclid(u: Tensor, v: Tensor) -> np.ndarray:
    """d(sum_i loss_i)/d v_j for the euclidean InfoNCE (candidate side)."""
    u_np, v_np = u.data, v.data
    sq = ((u_np[:, None, :] - v_np[None, :, :]) ** 2).sum(axis=2)
    logits = -0.5 * sq
    logits -= logits.max(axis=1, keepdims=True)
    p = np.exp(logits)
    p /= p.sum(axis=1, keepdims=True)
    n = len(u_np)
    eye = np.eye(n)
    # loss_i = 0.5|u_i - v_i|^2 + logsumexp_j(-0.5|u_i - v_j|^2)
    # d/dv_j = -(u_i - v_i) [j == i] + p_ij (u_i - v_j)
    coeff = p - eye                                 # (n_anchor, n_candidate)
    grad_v = coeff.T @ u_np
    grad_v -= (coeff.sum(axis=0)[:, None]) * v_np
    return grad_v


@dataclass
class GradientFlowResult:
    """Trajectory of the linear-encoder gradient flow."""

    weight_ranks: list[float] = field(default_factory=list)
    embedding_ranks: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)

    @property
    def final_weight_rank(self) -> float:
        return self.weight_ranks[-1]

    @property
    def final_embedding_rank(self) -> float:
        return self.embedding_ranks[-1]


def simulate_gradient_flow(x: np.ndarray, x_pos: np.ndarray,
                           dim_out: int, *, steps: int = 200,
                           step_size: float = 0.05,
                           gradient_weight: float = 0.0,
                           grad_tau: float = 0.5,
                           seed: int = 0) -> GradientFlowResult:
    """Discretized gradient flow of the linear encoder.

    With ``gradient_weight = 0`` this is the setting of Lemma 2 (pure
    Eq. 20 flow, which collapses the embedding spectrum); with
    ``gradient_weight > 0`` the GradGCL term (InfoNCE over the euclidean
    gradient features) is mixed in per Eq. 18.
    """
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
    rng = seeded_rng(seed)
    d_in = x.shape[1]
    weight = Tensor(0.1 * rng.normal(size=(dim_out, d_in)),
                    requires_grad=True)
    result = GradientFlowResult()
    for _ in range(steps):
        weight.grad = None
        u = Tensor(x) @ weight.T
        v = Tensor(x_pos) @ weight.T
        loss = info_nce(u, v, tau=1.0, sim="euclid", symmetric=False)
        if gradient_weight > 0.0:
            g_u, g_v = infonce_gradient_features(u, v, tau=1.0,
                                                 sim="euclid")
            grad_loss = info_nce(g_u, g_v, tau=grad_tau, sim="cos")
            loss = loss * (1.0 - gradient_weight) \
                + grad_loss * gradient_weight
        loss.backward()
        weight.data -= step_size * weight.grad
        result.losses.append(loss.item())
        result.weight_ranks.append(matrix_effective_rank(weight.data))
        result.embedding_ranks.append(effective_rank(x @ weight.data.T))
    return result
