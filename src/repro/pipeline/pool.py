"""Generic fork-pool fan-out for deterministic task units.

:class:`~repro.pipeline.workers.ViewGenerator` owns the augmentation
pool; this module exposes the same execution discipline as a reusable
primitive for other subsystems (the evaluation engine parallelizes
cross-validation repeats with it):

* ``workers=0`` runs the exact serial in-process path;
* ``workers=N`` fans items across a fork-based ``multiprocessing.Pool``
  with ``chunksize=1`` so task units load-balance;
* platforms without ``fork`` degrade to the serial path.

Determinism contract: the caller's task function must depend only on its
item (plus the immutable shared context), never on execution order or
process identity — then results are bit-identical at every worker count
because ``fork_map`` preserves item order in its output.

Large shared state (an embedding matrix, say) should ride in ``context``
rather than inside every item: it is published to a module global
*before* the pool forks, so children inherit it through copy-on-write
memory instead of per-task pickling.

Crash recovery mirrors :class:`~repro.pipeline.workers.ViewGenerator`:
each item has its own async handle with a bounded wait
(``REPRO_POOL_RECOVER_S``); an item whose worker died is recomputed in
the parent — bit-identical by the purity contract above — and counted
into ``faults.respawns``.  A dead worker costs latency, never results.
"""

from __future__ import annotations

import multiprocessing

from ..faults import default_pool_recover_s
from ..faults import record as _record_fault
from .workers import resolve_workers

__all__ = ["fork_map", "map_context"]

#: Shared read-only context for the duration of one ``fork_map`` call.
#: Set in the parent before the pool is created so forked children see it.
_CONTEXT = None


def map_context():
    """The ``context`` object of the enclosing :func:`fork_map` call.

    Valid inside task functions only (parent process on the serial path,
    forked children on the pool path); ``None`` outside a call.
    """
    return _CONTEXT


def fork_map(fn, items, *, workers: int | None = None, context=None,
             recover_s: float | None = None) -> list:
    """Apply ``fn`` to every item, optionally across a fork pool.

    Returns results in item order.  ``workers=None`` defers to
    ``REPRO_WORKERS`` (see :func:`repro.pipeline.workers.resolve_workers`);
    ``0``, a single item, or a fork-less platform all take the serial
    path, which calls ``fn`` directly in-process.  An item whose worker
    crashes (its result misses ``recover_s``, default
    ``REPRO_POOL_RECOVER_S``) is recomputed in the parent.
    """
    global _CONTEXT
    items = list(items)
    workers = resolve_workers(workers)
    if recover_s is None:
        recover_s = default_pool_recover_s()
    _CONTEXT = context
    try:
        if workers > 0 and len(items) > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                ctx = None
            if ctx is not None:
                with ctx.Pool(min(workers, len(items))) as pool:
                    handles = [pool.apply_async(fn, (item,))
                               for item in items]
                    results = []
                    for handle, item in zip(handles, items):
                        try:
                            results.append(handle.get(timeout=recover_s))
                        except multiprocessing.TimeoutError:
                            # Worker died holding this item; replay it
                            # in-process (pure fn -> identical result).
                            _record_fault("respawns")
                            results.append(fn(item))
                    return results
        return [fn(item) for item in items]
    finally:
        _CONTEXT = None
