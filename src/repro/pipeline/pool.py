"""Generic fork-pool fan-out for deterministic task units.

:class:`~repro.pipeline.workers.ViewGenerator` owns the augmentation
pool; this module exposes the same execution discipline as a reusable
primitive for other subsystems (the evaluation engine parallelizes
cross-validation repeats with it):

* ``workers=0`` runs the exact serial in-process path;
* ``workers=N`` fans items across a fork-based ``multiprocessing.Pool``
  with ``chunksize=1`` so task units load-balance;
* platforms without ``fork`` degrade to the serial path.

Determinism contract: the caller's task function must depend only on its
item (plus the immutable shared context), never on execution order or
process identity — then results are bit-identical at every worker count
because ``fork_map`` preserves item order in its output.

Large shared state (an embedding matrix, say) should ride in ``context``
rather than inside every item: it is published to a module global
*before* the pool forks, so children inherit it through copy-on-write
memory instead of per-task pickling.
"""

from __future__ import annotations

import multiprocessing

from .workers import resolve_workers

__all__ = ["fork_map", "map_context"]

#: Shared read-only context for the duration of one ``fork_map`` call.
#: Set in the parent before the pool is created so forked children see it.
_CONTEXT = None


def map_context():
    """The ``context`` object of the enclosing :func:`fork_map` call.

    Valid inside task functions only (parent process on the serial path,
    forked children on the pool path); ``None`` outside a call.
    """
    return _CONTEXT


def fork_map(fn, items, *, workers: int | None = None, context=None) -> list:
    """Apply ``fn`` to every item, optionally across a fork pool.

    Returns results in item order.  ``workers=None`` defers to
    ``REPRO_WORKERS`` (see :func:`repro.pipeline.workers.resolve_workers`);
    ``0``, a single item, or a fork-less platform all take the serial
    path, which calls ``fn`` directly in-process.
    """
    global _CONTEXT
    items = list(items)
    workers = resolve_workers(workers)
    _CONTEXT = context
    try:
        if workers > 0 and len(items) > 1:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                ctx = None
            if ctx is not None:
                with ctx.Pool(min(workers, len(items))) as pool:
                    return pool.map(fn, items, chunksize=1)
        return [fn(item) for item in items]
    finally:
        _CONTEXT = None
