"""Persistent structure caches keyed on a cheap graph fingerprint.

CSR adjacency, GCN-normalized adjacency, and PPR/heat diffusion matrices
are pure functions of a graph's immutable structure (node count + edge
list), yet the seed-era code rebuilt them per forward / per epoch — for
MVGRL that meant a dense linear solve per graph per batch per epoch.  A
:class:`StructureCache` memoizes them across epochs under a bounded LRU,
with hit/miss/eviction/byte counters in a :class:`repro.obs.MetricRegistry`
so runs can journal cache effectiveness.

Keys are ``(kind, fingerprint, *params)`` where the fingerprint hashes
``(num_nodes, edges)`` and is memoized on the graph instance.  Augmented
views are new objects with new structure, so they fingerprint differently
and can never alias their source graph.  Code that mutates a graph's
``edges`` *in place* must call :meth:`StructureCache.invalidate` (or
:func:`invalidate_structure`) — that is the explicit invalidation hook the
structural augmentations use.

``use_structure_cache`` installs a cache as the process-local default so
deep call sites (e.g. ``SubgraphSample``'s neighbour-list build) can reuse
structures without threading a cache argument through every signature.
Caching never changes results — entries hold exactly what the uncached
code would recompute — so cache on/off is numerically invisible.
"""

from __future__ import annotations

import contextlib
import hashlib
import os
from collections import OrderedDict
from typing import Callable

import numpy as np
import scipy.sparse as sp

from ..obs import MetricRegistry

__all__ = ["StructureCache", "structure_fingerprint", "invalidate_structure",
           "use_structure_cache", "active_structure_cache"]

_FINGERPRINT_ATTR = "_structure_key"

#: Default LRU bound; override per-cache or via ``REPRO_CACHE_ENTRIES``.
DEFAULT_MAX_ENTRIES = 1024


def structure_fingerprint(graph) -> str:
    """Cheap content hash of a graph's structure, memoized on the instance.

    Only ``num_nodes`` and ``edges`` participate — features and labels do
    not affect adjacency or diffusion operators.
    """
    key = getattr(graph, _FINGERPRINT_ATTR, None)
    if key is None:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(int(graph.num_nodes).to_bytes(8, "little"))
        digest.update(np.ascontiguousarray(graph.edges).tobytes())
        key = digest.hexdigest()
        setattr(graph, _FINGERPRINT_ATTR, key)
    return key


def invalidate_structure(graph) -> None:
    """Drop a graph's memoized fingerprint after an in-place edge mutation."""
    if hasattr(graph, _FINGERPRINT_ATTR):
        delattr(graph, _FINGERPRINT_ATTR)


def _entry_nbytes(value) -> int:
    if sp.issparse(value):
        csr = value
        return int(csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes)
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, tuple):
        return sum(_entry_nbytes(part) for part in value)
    return 0


class StructureCache:
    """Bounded LRU over per-graph structural operators.

    Parameters
    ----------
    max_entries:
        LRU bound; the least-recently-used entry is evicted beyond it.
    metrics:
        Optional shared :class:`MetricRegistry`; a private one is created
        otherwise.  Counters: ``cache.hits`` / ``cache.misses`` /
        ``cache.evictions``; gauges: ``cache.entries`` / ``cache.bytes``.
    """

    def __init__(self, max_entries: int | None = None,
                 metrics: MetricRegistry | None = None):
        if max_entries is None:
            max_entries = int(os.environ.get("REPRO_CACHE_ENTRIES",
                                             DEFAULT_MAX_ENTRIES))
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._bytes = 0

    # ------------------------------------------------------------------
    # Core get-or-build
    # ------------------------------------------------------------------
    def get(self, graph, kind: str, params: tuple,
            build: Callable[[], object]):
        """Return the cached value for ``(kind, graph, params)`` or build it.

        ``build`` must be a pure function of the graph's structure; the
        cached object is returned by reference, so treat it as immutable.
        """
        key = (kind, structure_fingerprint(graph), *params)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.metrics.counter("cache.hits").inc()
            return entry
        self.metrics.counter("cache.misses").inc()
        entry = build()
        self._entries[key] = entry
        self._bytes += _entry_nbytes(entry)
        while len(self._entries) > self.max_entries:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= _entry_nbytes(evicted)
            self.metrics.counter("cache.evictions").inc()
        self.metrics.gauge("cache.entries").set(len(self._entries))
        self.metrics.gauge("cache.bytes").set(self._bytes)
        return entry

    # ------------------------------------------------------------------
    # Structural operators
    # ------------------------------------------------------------------
    @staticmethod
    def _dtype_tag() -> str:
        from ..tensor.dtype import get_default_dtype

        return np.dtype(get_default_dtype()).name

    def adjacency(self, graph, normalization: str = "none") -> sp.csr_matrix:
        """Cached ``adjacency_matrix`` under the given normalization."""
        from ..graph.adjacency import normalized_adjacency

        return self.get(graph, "adjacency",
                        (normalization, self._dtype_tag()),
                        lambda: normalized_adjacency(graph, normalization))

    def ppr(self, graph, alpha: float = 0.2,
            k: int | None = None) -> sp.csr_matrix:
        """Cached personalized-PageRank diffusion as CSR.

        ``k`` keeps only the top-``k`` entries per row (MVGRL's sparsified
        variant); ``None`` keeps the dense result in CSR form.
        """
        from ..graph.diffusion import ppr_diffusion, sparsify_top_k

        def build() -> sp.csr_matrix:
            dense = ppr_diffusion(graph, alpha=alpha)
            if k is not None:
                return sparsify_top_k(dense, k)
            return sp.csr_matrix(dense)

        return self.get(graph, "ppr", (float(alpha), k, self._dtype_tag()),
                        build)

    def heat(self, graph, t: float = 5.0, terms: int = 12,
             k: int | None = None) -> sp.csr_matrix:
        """Cached heat-kernel diffusion as CSR (optionally top-``k``)."""
        from ..graph.diffusion import heat_diffusion, sparsify_top_k

        def build() -> sp.csr_matrix:
            dense = heat_diffusion(graph, t=t, terms=terms)
            if k is not None:
                return sparsify_top_k(dense, k)
            return sp.csr_matrix(dense)

        return self.get(graph, "heat",
                        (float(t), int(terms), k, self._dtype_tag()), build)

    # ------------------------------------------------------------------
    # Invalidation / introspection
    # ------------------------------------------------------------------
    def invalidate(self, graph) -> int:
        """Invalidation hook for in-place structural mutation.

        Drops the graph's memoized fingerprint *and* every entry stored
        under it; returns the number of entries removed.
        """
        stale = getattr(graph, _FINGERPRINT_ATTR, None)
        invalidate_structure(graph)
        if stale is None:
            return 0
        doomed = [key for key in self._entries if key[1] == stale]
        for key in doomed:
            self._bytes -= _entry_nbytes(self._entries.pop(key))
        if doomed:
            self.metrics.gauge("cache.entries").set(len(self._entries))
            self.metrics.gauge("cache.bytes").set(self._bytes)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0
        self.metrics.gauge("cache.entries").set(0)
        self.metrics.gauge("cache.bytes").set(0)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def stats(self) -> dict:
        """JSON-ready summary (journaled as part of a ``metrics`` event)."""
        def count(name: str) -> int:
            return (self.metrics.counter(name).value
                    if name in self.metrics else 0)

        return {"entries": len(self._entries), "bytes": self._bytes,
                "hits": count("cache.hits"), "misses": count("cache.misses"),
                "evictions": count("cache.evictions")}


# ----------------------------------------------------------------------
# Process-local default cache
# ----------------------------------------------------------------------

_ACTIVE: StructureCache | None = None


def active_structure_cache() -> StructureCache | None:
    """The cache installed by :func:`use_structure_cache`, if any."""
    return _ACTIVE


@contextlib.contextmanager
def use_structure_cache(cache: StructureCache | None):
    """Install ``cache`` as the process-local default for the block.

    Deep call sites (augmentation neighbour lists, batch adjacency
    assembly) consult :func:`active_structure_cache` so they can benefit
    without signature changes; ``None`` disables caching for the block.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = cache
    try:
        yield cache
    finally:
        _ACTIVE = previous
