"""Deterministic per-graph RNG streams for the augmentation pipeline.

The worker pool must produce views that are **bit-identical to the serial
path at every worker count**.  That rules out sharing one sequential
generator across graphs (its draw order would depend on scheduling), so
every (batch, view, graph) triple gets its own independent PCG64 stream
derived through :class:`numpy.random.SeedSequence`:

* one ``SeedSequence((root, batch_counter, view))`` per view per batch
  yields 128 bits of entropy per graph via ``generate_state`` — a single
  cheap call instead of one ``SeedSequence`` object per graph;
* each graph's 128-bit key seeds a fresh ``PCG64`` generator.

Because a stream depends only on ``(root, counter, view, index)`` — never
on which process executes the augmentation or in what order — serial,
prefetched, and multi-worker runs all consume randomness identically.

This module (together with :mod:`repro.utils.seed`) is one of the two
sanctioned homes for ``np.random.*`` constructor calls in the library;
``scripts/lint_repro.py`` flags bare global-RNG use anywhere else under
``src/`` because it silently breaks the worker determinism contract.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_root", "view_stream_keys", "stream_from_key"]

#: Root seeds are drawn below 2**63 so they stay exact int64 values.
_ROOT_SPAN = 2 ** 63


def spawn_root(rng: np.random.Generator) -> int:
    """Draw a pipeline root seed from an existing generator.

    Consuming exactly one draw keeps any initialization that happened
    before the pipeline was attached (encoder weights, projector weights)
    byte-identical to the pre-pipeline era.
    """
    return int(rng.integers(0, _ROOT_SPAN))


def view_stream_keys(root: int, counter: int, view: int,
                     count: int) -> np.ndarray:
    """128-bit stream keys for every graph of one view of one batch.

    Returns a ``(count, 2)`` uint64 array; row ``i`` is graph ``i``'s key.
    """
    seq = np.random.SeedSequence((root, counter, view))
    return seq.generate_state(2 * max(count, 1),
                              dtype=np.uint64).reshape(-1, 2)[:count]


def stream_from_key(key: np.ndarray) -> np.random.Generator:
    """Fresh PCG64 generator for one 128-bit key row of ``view_stream_keys``."""
    seed = (int(key[0]) << 64) | int(key[1])
    return np.random.Generator(np.random.PCG64(seed))
