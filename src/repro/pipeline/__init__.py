"""Input pipeline: parallel augmentation workers + structure caches.

Three cooperating pieces speed up the data side of training without
changing a single number:

* :mod:`~repro.pipeline.seeding` — per-graph ``SeedSequence``-derived
  PCG64 streams, the determinism backbone;
* :mod:`~repro.pipeline.workers` — :class:`ViewGenerator`, serial or
  fork-pool view generation that is bit-identical at every worker count;
* :mod:`~repro.pipeline.prefetch` — :class:`PrefetchLoader`,
  double-buffering the next batch's views during the optimizer step;
* :mod:`~repro.pipeline.cache` — :class:`StructureCache`, a bounded LRU
  over adjacency / diffusion structure reused across epochs.

See ``docs/performance.md`` for the knobs and the determinism contract.
"""

from .cache import (
    StructureCache,
    active_structure_cache,
    invalidate_structure,
    structure_fingerprint,
    use_structure_cache,
)
from .prefetch import PrefetchLoader
from .seeding import spawn_root, stream_from_key, view_stream_keys
from .workers import ViewGenerator, ViewPair, resolve_workers

__all__ = [
    "StructureCache",
    "active_structure_cache",
    "invalidate_structure",
    "structure_fingerprint",
    "use_structure_cache",
    "PrefetchLoader",
    "spawn_root",
    "stream_from_key",
    "view_stream_keys",
    "ViewGenerator",
    "ViewPair",
    "resolve_workers",
]
