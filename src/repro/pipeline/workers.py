"""Multiprocessing augmentation workers with deterministic view streams.

:class:`ViewGenerator` owns view generation for GraphCL-family methods.
Each ``(batch, view, graph)`` gets its own PCG64 stream (see
:mod:`repro.pipeline.seeding`), so the augmented views are **bit-identical
at every worker count**: ``workers=0`` runs the exact serial in-process
path, ``workers=N`` fans per-graph work across a fork-based
``multiprocessing.Pool`` in chunks, and both consume the same streams.

The augmentation objects are pickled into every task, so parent-side
mutation (JOAO re-weighting its ``RandomChoice`` distribution between
epochs) is always visible to workers — there is no stale forked copy.
``RandomChoice.last_choice`` cannot be observed across a process boundary,
so each task also reports the last choice it made; :class:`ViewPair`
carries the per-view choices and re-applies them on the parent's
augmentation objects at *consumption* time (``apply_choices``), which keeps
JOAO's post-loss read of ``last_choice`` identical to the serial order even
when prefetching has already generated the next batch's views.

**Crash recovery** (see ``docs/robustness.md``): a pool worker that dies
mid-chunk (OOM-killed, segfaulted, or chaos-injected via the
``pipeline.chunk`` fault point) loses its in-flight results — the pool
auto-respawns the process, but the lost chunks would block ``result()``
forever.  Every chunk therefore rides its own ``apply_async`` handle with
a bounded wait (``REPRO_POOL_RECOVER_S``); a chunk that misses it is
recomputed in the parent from the same SeedSequence-derived keys, which by
the determinism contract yields bit-identical views.  Crashes cost
latency, never correctness, and each replay counts into
``faults.respawns``.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np

from ..faults import default_pool_recover_s
from ..faults import inject as _inject
from ..faults import record as _record_fault
from ..graph.batch import GraphBatch
from .seeding import stream_from_key, view_stream_keys

__all__ = ["ViewGenerator", "ViewPair", "resolve_workers"]

#: Fault-injection point for augmentation chunks (raise in any process,
#: kill only inside forked pool workers).
CHUNK_POINT = "pipeline.chunk"


def resolve_workers(workers: int | None = None) -> int:
    """Worker count: explicit value, else ``REPRO_WORKERS``, else 0 (serial)."""
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "0"))
    workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _apply_chunk(augmentation, graphs, keys):
    """Augment one chunk of graphs, each under its own stream.

    Runs identically in the parent (serial path) and in pool workers.
    Returns the views plus the last ``RandomChoice.last_choice`` observed,
    which for the final chunk of a view is the batch's last choice — the
    value the serial loop would have left behind.
    """
    _inject(CHUNK_POINT)
    views = [augmentation(graph, stream_from_key(key))
             for graph, key in zip(graphs, keys)]
    return views, getattr(augmentation, "last_choice", None)


def _worker_init(cache_entries: int | None) -> None:
    """Install a per-process structure cache inside each pool worker.

    Worker-side caching only accelerates structure reuse (e.g. subgraph
    neighbour lists); it never changes what the augmentations produce.
    """
    if cache_entries is None:
        return
    from . import cache as cache_mod

    cache_mod._ACTIVE = cache_mod.StructureCache(max_entries=cache_entries)


class ViewPair:
    """Two augmented views of one batch plus their ``RandomChoice`` picks."""

    __slots__ = ("view1", "view2", "choice1", "choice2")

    def __init__(self, view1: GraphBatch, view2: GraphBatch,
                 choice1: int | None, choice2: int | None):
        self.view1 = view1
        self.view2 = view2
        self.choice1 = choice1
        self.choice2 = choice2

    def apply_choices(self, augmentation, augmentation2) -> None:
        """Replay the recorded picks onto the parent augmentation objects.

        Applied view1-then-view2 so that when both views share one pool
        object (GraphCL's default) the surviving ``last_choice`` is view2's
        — exactly what the serial generation order left behind.
        """
        if self.choice1 is not None:
            augmentation.last_choice = self.choice1
        if self.choice2 is not None:
            augmentation2.last_choice = self.choice2


class _ReadyViews:
    """Already-materialized result (serial path / degraded pool)."""

    __slots__ = ("_pair",)

    def __init__(self, pair: ViewPair):
        self._pair = pair

    def result(self) -> ViewPair:
        return self._pair


class _PendingViews:
    """In-flight pool computation; ``result()`` blocks and assembles.

    Each chunk has its own async handle so a crashed worker costs exactly
    the chunks it held: a handle that misses the recovery timeout is
    recomputed in the parent from the same ``(augmentation, graphs,
    keys)`` task — a pure function of its arguments — so the assembled
    views are bit-identical to the crash-free run.
    """

    __slots__ = ("_handles", "_tasks", "_view1_chunks", "_recover_s")

    def __init__(self, handles, tasks, view1_chunks: int,
                 recover_s: float):
        self._handles = handles
        self._tasks = tasks
        self._view1_chunks = view1_chunks
        self._recover_s = recover_s

    def _collect(self, index: int):
        try:
            return self._handles[index].get(timeout=self._recover_s)
        except multiprocessing.TimeoutError:
            # The worker holding this chunk died (its result will never
            # arrive; the pool has already respawned the process).
            # Deterministic replay in the parent restores the output.
            _record_fault("respawns")
            return _apply_chunk(*self._tasks[index])

    def result(self) -> ViewPair:
        outs = [self._collect(i) for i in range(len(self._handles))]
        split = self._view1_chunks
        views1 = [v for chunk, _ in outs[:split] for v in chunk]
        views2 = [v for chunk, _ in outs[split:] for v in chunk]
        return ViewPair(GraphBatch(views1), GraphBatch(views2),
                        outs[split - 1][1], outs[-1][1])


class ViewGenerator:
    """Deterministic (optionally parallel) two-view generator for a batch.

    Parameters
    ----------
    augmentation / augmentation2:
        The per-view augmentation pools; ``augmentation2=None`` shares the
        first (GraphCL's default).
    root:
        Pipeline root seed, normally ``seeding.spawn_root(method_rng)``.
    workers:
        ``0`` = serial in-process generation (the default path);
        ``N > 0`` = fork-based pool of ``N`` processes.  ``None`` defers to
        ``REPRO_WORKERS``.
    chunk_size:
        Graphs per pool task; large enough to amortize pickling, small
        enough to load-balance a 64-graph batch across workers.
    recover_s:
        How long ``result()`` waits on one chunk before declaring its
        worker dead and replaying the chunk in the parent (default:
        ``REPRO_POOL_RECOVER_S`` or 60).
    """

    def __init__(self, augmentation, augmentation2=None, *, root: int,
                 workers: int | None = None, chunk_size: int = 8,
                 recover_s: float | None = None):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if recover_s is not None and recover_s <= 0:
            raise ValueError(f"recover_s must be > 0, got {recover_s}")
        self.augmentation = augmentation
        self.augmentation2 = (augmentation2 if augmentation2 is not None
                              else augmentation)
        self.root = int(root)
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.recover_s = recover_s
        self.counter = 0
        self._pool = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def configure(self, workers: int | None = None) -> None:
        """Change the worker count, recycling the pool if it changes."""
        workers = resolve_workers(workers)
        if workers != self.workers:
            self.shutdown()
            self.workers = workers

    def _ensure_pool(self):
        if self._pool is None and self.workers > 0:
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:
                # No fork on this platform: degrade to the serial path,
                # which produces identical views anyway.
                self.workers = 0
                return None
            from .cache import active_structure_cache

            cache = active_structure_cache()
            entries = cache.max_entries if cache is not None else None
            self._pool = ctx.Pool(self.workers, initializer=_worker_init,
                                  initargs=(entries,))
        return self._pool

    def shutdown(self) -> None:
        """Tear the pool down; a later submit lazily recreates it."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __getstate__(self):
        # Pools cannot be pickled; Module.clone()/deepcopy and worker-task
        # pickling of methods that own a generator must survive.
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def __del__(self):
        try:
            self.shutdown()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def submit(self, batch: GraphBatch):
        """Start generating both views; returns a handle with ``result()``.

        The batch counter advances on submission, so submission order —
        not completion or consumption order — defines the streams.  The
        serial path computes eagerly and returns a ready handle.
        """
        counter = self.counter
        self.counter += 1
        graphs = list(batch.graphs)
        keys1 = view_stream_keys(self.root, counter, 1, len(graphs))
        keys2 = view_stream_keys(self.root, counter, 2, len(graphs))
        pool = self._ensure_pool()
        if pool is None:
            views1, choice1 = _apply_chunk(self.augmentation, graphs, keys1)
            views2, choice2 = _apply_chunk(self.augmentation2, graphs, keys2)
            return _ReadyViews(ViewPair(GraphBatch(views1),
                                        GraphBatch(views2), choice1, choice2))
        tasks = []
        for aug, keys in ((self.augmentation, keys1),
                          (self.augmentation2, keys2)):
            for start in range(0, len(graphs), self.chunk_size):
                stop = start + self.chunk_size
                tasks.append((aug, graphs[start:stop], keys[start:stop]))
        view1_chunks = len(tasks) // 2
        handles = [pool.apply_async(_apply_chunk, task) for task in tasks]
        recover_s = (self.recover_s if self.recover_s is not None
                     else default_pool_recover_s())
        return _PendingViews(handles, tasks, view1_chunks, recover_s)

    def generate(self, batch: GraphBatch) -> ViewPair:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(batch).result()
