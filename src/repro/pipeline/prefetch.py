"""Double-buffered view prefetching over a :class:`GraphLoader`.

While the optimizer steps on batch ``i``, batch ``i+1``'s augmented views
are already being generated (in pool workers when ``workers > 0``).  The
wrapper submits one batch ahead, attaches the finished
:class:`~repro.pipeline.workers.ViewPair` to the batch as
``_precomputed_views``, and yields batches in loader order — so the
training loop is unchanged and determinism is untouched (stream counters
advance in submission order, which equals loader order).

Batches below ``min_graphs`` are skipped *without* submitting, mirroring
the trainer's own skip of sub-contrastive batches; this keeps the batch
counter sequence identical between prefetched and plain iteration.

Teardown: if the consumer abandons iteration mid-epoch (an exception in
the training loop), the generator's ``finally`` block drains the in-flight
submission so no orphaned pool task outlives the epoch.
"""

from __future__ import annotations

from typing import Iterator

from ..graph.batch import GraphBatch
from .workers import ViewGenerator

__all__ = ["PrefetchLoader"]


class PrefetchLoader:
    """Iterate a loader one submitted batch ahead of consumption."""

    def __init__(self, loader, generator: ViewGenerator,
                 min_graphs: int = 2):
        self.loader = loader
        self.generator = generator
        self.min_graphs = min_graphs

    def __len__(self) -> int:
        """Batches that will actually be *yielded* — iteration skips
        batches below ``min_graphs``, so the raw loader length would
        overcount whenever a small tail batch exists (wrong progress
        totals and per-epoch averages)."""
        loader = self.loader
        graphs = getattr(loader, "graphs", None)
        batch_size = getattr(loader, "batch_size", None)
        if graphs is None or batch_size is None:
            return len(loader)
        full, tail = divmod(len(graphs), batch_size)
        count = full if batch_size >= self.min_graphs else 0
        if tail and not getattr(loader, "drop_last", False):
            count += 1 if tail >= self.min_graphs else 0
        return count

    def __iter__(self) -> Iterator[GraphBatch]:
        pending = None
        try:
            for batch in self.loader:
                if batch.num_graphs < self.min_graphs:
                    continue
                handle = self.generator.submit(batch)
                held = pending
                # Record the in-flight pair *before* yielding: if the
                # consumer raises at the yield point, the finally block
                # below still sees (and drains) the newest submission.
                pending = (batch, handle)
                if held is not None:
                    held_batch, held_handle = held
                    held_batch._precomputed_views = held_handle.result()
                    yield held_batch
            if pending is not None:
                held_batch, held_handle = pending
                held_batch._precomputed_views = held_handle.result()
                pending = None
                yield held_batch
        finally:
            if pending is not None:
                try:
                    pending[1].result()
                except Exception:
                    pass
