"""Neural-network building blocks (modules, layers, optimizers)."""

from .module import Module, ModuleList, Parameter
from .layers import (
    MLP,
    BatchNorm1d,
    Dropout,
    Identity,
    LeakyReLU,
    Linear,
    PReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .optim import SGD, Adam, CosineAnnealingLR, Optimizer, StepLR
from .serialization import load_module, save_module

__all__ = [
    "Module", "ModuleList", "Parameter",
    "Linear", "BatchNorm1d", "Dropout", "Identity", "Sequential",
    "ReLU", "Tanh", "Sigmoid", "LeakyReLU", "PReLU", "MLP",
    "Optimizer", "SGD", "Adam", "StepLR", "CosineAnnealingLR",
    "save_module", "load_module",
]
