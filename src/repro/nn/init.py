"""Weight initialization schemes (Glorot/Kaiming) with explicit RNGs."""

from __future__ import annotations

import numpy as np

from ..tensor.dtype import get_default_dtype

__all__ = ["glorot_uniform", "kaiming_uniform", "zeros", "normal"]


def glorot_uniform(fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform init, the default for GCN-style layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def kaiming_uniform(fan_in: int, fan_out: int,
                    rng: np.random.Generator) -> np.ndarray:
    """Kaiming/He uniform init, suited to ReLU networks (GIN MLPs)."""
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def zeros(*shape: int) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def normal(shape: tuple[int, ...], std: float,
           rng: np.random.Generator) -> np.ndarray:
    return rng.normal(0.0, std, size=shape)
