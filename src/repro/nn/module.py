"""Module/Parameter abstractions mirroring the torch.nn API surface we need.

A :class:`Module` owns :class:`Parameter` tensors (discovered recursively
through attributes), supports train/eval mode, parameter iteration for
optimizers, and state-dict save/load.  SimGRACE's encoder perturbation and
BGRL's EMA target network are built on :meth:`Module.state_dict` /
:meth:`Module.load_state_dict` and :meth:`Module.clone`.
"""

from __future__ import annotations

import copy
from typing import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A tensor registered as a trainable parameter of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Subclasses implement :meth:`forward`; parameters and child modules are
    found by walking instance attributes, so plain attribute assignment is
    all that is needed to register them.

    Non-parameter state that training mutates (BatchNorm running
    statistics) is declared via the ``_buffer_attrs`` class attribute so
    checkpointing (:class:`repro.run.TrainState`) can capture it alongside
    the parameters.
    """

    #: Names of instance attributes holding non-parameter ndarray state
    #: that must survive a checkpoint/resume cycle.
    _buffer_attrs: tuple[str, ...] = ()

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    # Forward dispatch
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    # Parameter / module traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs recursively."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffer_slots(self, prefix: str = "") -> Iterator[tuple[str, "Module", str]]:
        """Yield ``(dotted_name, owner_module, attr)`` for every buffer.

        Buffers are the attributes each module class lists in
        ``_buffer_attrs`` (e.g. BatchNorm1d's running statistics); the
        owner/attr pair lets callers reassign them in place.
        """
        for attr in self._buffer_attrs:
            if getattr(self, attr, None) is not None:
                yield f"{prefix}{attr}", self, attr
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value.named_buffer_slots(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_buffer_slots(
                            prefix=f"{full}.{i}.")

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, array)`` for all registered buffers."""
        for name, owner, attr in self.named_buffer_slots(prefix):
            yield name, getattr(owner, attr)

    def buffers_dict(self) -> dict[str, np.ndarray]:
        """Name -> array-copy mapping of all buffers (like state_dict)."""
        return {name: np.copy(value) for name, value in self.named_buffers()}

    def load_buffers_dict(self, state: dict[str, np.ndarray]) -> None:
        """Reinstall buffers captured by :meth:`buffers_dict` (strict)."""
        slots = {name: (owner, attr)
                 for name, owner, attr in self.named_buffer_slots()}
        missing = set(slots) - set(state)
        unexpected = set(state) - set(slots)
        if missing or unexpected:
            raise KeyError(
                f"buffer dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, (owner, attr) in slots.items():
            current = getattr(owner, attr)
            setattr(owner, attr,
                    np.asarray(state[name], dtype=current.dtype).copy())

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes and gradient management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a name -> array-copy mapping of all parameters."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Copy arrays from ``state`` into matching parameters in place."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs "
                    f"{state[name].shape}")
            p.data[...] = state[name]

    def clone(self) -> "Module":
        """Deep-copy this module (fresh parameters, same values)."""
        return copy.deepcopy(self)


class ModuleList(Module):
    """Container holding an ordered list of sub-modules."""

    def __init__(self, modules=()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, index: int) -> Module:
        return self.items[index]

    def forward(self, *args, **kwargs):
        raise RuntimeError("ModuleList is a container and is not callable")
