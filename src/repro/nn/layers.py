"""Core neural-network layers: Linear, BatchNorm1d, Dropout, Sequential, MLP.

These mirror their torch.nn counterparts closely enough that the GCL method
implementations read like the originals.  All randomness (init, dropout)
flows through explicit ``numpy.random.Generator`` objects for repeatability.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..tensor import Tensor, call, dropout_mask
from . import init as init_schemes
from .module import Module, ModuleList, Parameter

__all__ = ["Linear", "BatchNorm1d", "Dropout", "Identity", "Sequential",
           "ReLU", "Tanh", "Sigmoid", "LeakyReLU", "PReLU", "MLP"]


class Linear(Module):
    """Affine map ``y = x W + b`` with Glorot-uniform initialization.

    2-D inputs dispatch through the op registry (``"linear"``), which picks
    the single-node fused kernel or the primitive reference composition per
    the active policy; other ranks always use the primitive composition.
    """

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, *, rng: np.random.Generator):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init_schemes.glorot_uniform(in_features, out_features, rng))
        self.bias = Parameter(init_schemes.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            return call("linear", x, self.weight, self.bias)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class BatchNorm1d(Module):
    """Batch normalization over the feature axis with running statistics."""

    _buffer_attrs = ("running_mean", "running_var")

    def __init__(self, num_features: int, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        from ..tensor import get_default_dtype

        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        # Running stats follow the dtype policy so eval-mode forwards do not
        # promote a float32 graph back to float64.
        dtype = get_default_dtype()
        self.running_mean = np.zeros(num_features, dtype=dtype)
        self.running_var = np.ones(num_features, dtype=dtype)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            # In place (not reassignment): captured eval-mode plans hold
            # views of these buffers, and serving/probe replays must see
            # the stats move without re-capturing.
            self.running_mean *= 1 - self.momentum
            self.running_mean += self.momentum * mean.data.ravel()
            self.running_var *= 1 - self.momentum
            self.running_var += self.momentum * var.data.ravel()
        else:
            mean = Tensor(self.running_mean.reshape(1, -1))
            var = Tensor(self.running_var.reshape(1, -1))
        normalized = (x - mean) / (var + self.eps).sqrt()
        return normalized * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, rate: float, *, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.rate == 0.0:
            return x
        return x * Tensor(dropout_mask(x.shape, self.rate, self._rng))


class Identity(Module):
    """Pass-through module (useful as a configurable no-op)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class ReLU(Module):
    """Rectified linear unit activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid activation."""

    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class PReLU(Module):
    """Parametric ReLU with a single learned slope (used by DGI/MVGRL)."""

    def __init__(self, init_slope: float = 0.25):
        super().__init__()
        self.slope = Parameter(np.array([init_slope]))

    def forward(self, x: Tensor) -> Tensor:
        positive = x.relu()
        negative = (x * -1.0).relu() * -1.0
        return positive + negative * self.slope


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.steps = ModuleList(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.steps:
            x = module(x)
        return x


class MLP(Module):
    """Multi-layer perceptron with ReLU activations.

    Used both as GIN's per-layer update network and as the projection head
    every contrastive method attaches after the encoder.
    """

    def __init__(self, dims: Sequence[int], *, rng: np.random.Generator,
                 batch_norm: bool = False, dropout: float = 0.0,
                 final_activation: bool = False):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        layers: list[Module] = []
        for i in range(len(dims) - 1):
            layers.append(Linear(dims[i], dims[i + 1], rng=rng))
            is_last = i == len(dims) - 2
            if not is_last or final_activation:
                if batch_norm:
                    layers.append(BatchNorm1d(dims[i + 1]))
                layers.append(ReLU())
                if dropout > 0:
                    layers.append(Dropout(dropout, rng=rng))
        self.body = Sequential(*layers)
        self.dims = tuple(dims)

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)
