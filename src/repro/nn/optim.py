"""First-order optimizers (SGD with momentum, Adam) and LR schedulers."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "CosineAnnealingLR"]


class Optimizer:
    """Base optimizer over an explicit parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with decoupled-style optional weight decay."""

    def __init__(self, params, lr: float = 1e-3, betas=(0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        decays = self._epoch // self.step_size
        self.optimizer.lr = self._base_lr * (self.gamma ** decays)


class CosineAnnealingLR:
    """Cosine-anneal the LR from its initial value to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int,
                 eta_min: float = 0.0):
        self.optimizer = optimizer
        self.total_epochs = max(total_epochs, 1)
        self.eta_min = eta_min
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        self.optimizer.lr = (
            self.eta_min + 0.5 * (self._base_lr - self.eta_min)
            * (1.0 + np.cos(np.pi * progress)))
