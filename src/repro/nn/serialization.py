"""Checkpointing: save/load module parameters as ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .module import Module

__all__ = ["save_module", "load_module"]

# npz keys cannot contain "/" reliably across numpy versions; parameters use
# dotted names already, which are safe.
_VERSION_KEY = "__repro_checkpoint_version__"
_VERSION = 1.0


def save_module(module: Module, path: str | Path) -> Path:
    """Write all parameters of ``module`` to ``path`` (.npz appended)."""
    path = Path(path)
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    np.savez(path, **state, **{_VERSION_KEY: np.array(_VERSION)})
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz")


def load_module(module: Module, path: str | Path) -> Module:
    """Load parameters from ``path`` into ``module`` (strict matching).

    Values are cast into each parameter's existing buffer, so the module's
    dtype wins: a float64 checkpoint loads cleanly into a model built under
    ``autocast("float32")`` and vice versa.
    """
    with np.load(Path(path)) as archive:
        state = {name: archive[name] for name in archive.files
                 if name != _VERSION_KEY}
    module.load_state_dict(state)
    return module
