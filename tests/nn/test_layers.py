"""Layer behaviour: Linear, BatchNorm, Dropout, activations, MLP."""

import numpy as np
import pytest

from repro.nn import (
    MLP,
    BatchNorm1d,
    Dropout,
    Identity,
    LeakyReLU,
    Linear,
    PReLU,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.tensor import Tensor

from ..gradcheck import assert_gradients_match


@pytest.fixture
def rng():
    return np.random.default_rng(13)


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.normal(size=(4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, bias=False, rng=rng)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 3)))).data.sum() == 0.0

    def test_gradients(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(4, 3)))
        assert_gradients_match(lambda: (layer(x) ** 2).sum(),
                               layer.weight, layer.bias)

    def test_init_scale(self, rng):
        layer = Linear(100, 100, rng=rng)
        limit = np.sqrt(6.0 / 200)
        assert np.abs(layer.weight.data).max() <= limit + 1e-12


class TestBatchNorm:
    def test_normalizes_in_training(self, rng):
        bn = BatchNorm1d(4)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(200, 4)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.data.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_used_in_eval(self, rng):
        bn = BatchNorm1d(2, momentum=1.0)  # running stats = last batch
        x = rng.normal(loc=2.0, size=(100, 2))
        bn(Tensor(x))
        bn.eval()
        out = bn(Tensor(x))
        np.testing.assert_allclose(out.data.mean(axis=0), 0.0, atol=1e-6)

    def test_gradients(self, rng):
        bn = BatchNorm1d(3)
        x = Tensor(rng.normal(size=(8, 3)), requires_grad=True)
        assert_gradients_match(lambda: (bn(x) ** 2).sum(), x, bn.gamma,
                               bn.beta, atol=1e-4, rtol=1e-3)


class TestDropout:
    def test_eval_is_identity(self, rng):
        drop = Dropout(0.5, rng=rng)
        drop.eval()
        x = Tensor(rng.normal(size=(10, 3)))
        np.testing.assert_array_equal(drop(x).data, x.data)

    def test_training_zeroes_and_rescales(self, rng):
        drop = Dropout(0.5, rng=rng)
        x = Tensor(np.ones((2000, 1)))
        out = drop(x).data
        zeros = (out == 0).mean()
        assert 0.4 < zeros < 0.6
        nonzero = out[out != 0]
        np.testing.assert_allclose(nonzero, 2.0)

    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng=rng)


class TestActivations:
    def test_shapes_preserved(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        for act in [ReLU(), Tanh(), Sigmoid(), LeakyReLU(), PReLU(),
                    Identity()]:
            assert act(x).shape == x.shape

    def test_prelu_learns_slope(self, rng):
        act = PReLU(init_slope=0.5)
        x = Tensor(np.array([[-2.0, 3.0]]))
        out = act(x)
        np.testing.assert_allclose(out.data, [[-1.0, 3.0]])
        out.sum().backward()
        assert act.slope.grad is not None
        np.testing.assert_allclose(act.slope.grad, [-2.0])


class TestMLP:
    def test_shapes(self, rng):
        mlp = MLP([5, 8, 3], rng=rng)
        assert mlp(Tensor(np.zeros((7, 5)))).shape == (7, 3)

    def test_overfits_tiny_regression(self, rng):
        # A 2-layer MLP should fit 8 random points near-perfectly.
        from repro.nn import Adam

        x = Tensor(rng.normal(size=(8, 3)))
        y = Tensor(rng.normal(size=(8, 1)))
        mlp = MLP([3, 32, 1], rng=rng)
        optimizer = Adam(mlp.parameters(), lr=1e-2)
        for _ in range(300):
            optimizer.zero_grad()
            loss = ((mlp(x) - y) ** 2).mean()
            loss.backward()
            optimizer.step()
        assert loss.item() < 1e-2

    def test_batch_norm_and_dropout_options(self, rng):
        mlp = MLP([4, 8, 2], rng=rng, batch_norm=True, dropout=0.2)
        out = mlp(Tensor(rng.normal(size=(6, 4))))
        assert out.shape == (6, 2)
