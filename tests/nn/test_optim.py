"""Optimizer and scheduler behaviour."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, CosineAnnealingLR, Linear, Parameter, StepLR
from repro.tensor import Tensor


def quadratic_step(optimizer, param, target):
    optimizer.zero_grad()
    loss = ((param - Tensor(target)) ** 2).sum()
    loss.backward()
    optimizer.step()
    return loss.item()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.1)
        target = np.array([1.0, 2.0])
        for _ in range(100):
            loss = quadratic_step(opt, p, target)
        np.testing.assert_allclose(p.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                quadratic_step(opt, p, np.array([0.0]))
            return abs(p.data[0])

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        p.grad = np.array([0.0])
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad -> no change, no crash
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = Adam([p], lr=0.1)
        target = np.array([1.0, 2.0])
        for _ in range(200):
            quadratic_step(opt, p, target)
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # Adam's bias correction makes the first step ~lr in each coord.
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.05)
        p.grad = np.array([3.7])
        opt.step()
        np.testing.assert_allclose(1.0 - p.data[0], 0.05, rtol=1e-6)

    def test_validation(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            Adam([p], lr=0.0)
        with pytest.raises(ValueError):
            Adam([], lr=0.1)


class TestSchedulers:
    def test_step_lr(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01])

    def test_cosine_endpoints(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=2.0)
        sched = CosineAnnealingLR(opt, total_epochs=10, eta_min=0.0)
        for _ in range(10):
            sched.step()
        np.testing.assert_allclose(opt.lr, 0.0, atol=1e-12)

    def test_cosine_monotone_decreasing(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=1.0)
        sched = CosineAnnealingLR(opt, total_epochs=5)
        previous = opt.lr
        for _ in range(5):
            sched.step()
            assert opt.lr <= previous + 1e-12
            previous = opt.lr
