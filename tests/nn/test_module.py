"""Module/Parameter traversal, modes, and state management."""

import numpy as np
import pytest

from repro.nn import Linear, MLP, Module, ModuleList, Parameter, Sequential
from repro.tensor import Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(2)


class Nested(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Linear(3, 4, rng=rng)
        self.tower = ModuleList([Linear(4, 4, rng=rng) for _ in range(2)])
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        x = self.first(x)
        for layer in self.tower:
            x = layer(x)
        return x * self.scale


class TestTraversal:
    def test_named_parameters_are_unique_and_complete(self, rng):
        model = Nested(rng)
        names = [n for n, _ in model.named_parameters()]
        assert len(names) == len(set(names))
        # first (W+b), two tower layers (W+b each), scale.
        assert len(names) == 7
        assert "first.weight" in names
        assert "tower.items.0.weight" in names
        assert "scale" in names

    def test_num_parameters(self, rng):
        model = Linear(3, 4, rng=rng)
        assert model.num_parameters() == 3 * 4 + 4

    def test_modules_recursion(self, rng):
        model = Nested(rng)
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Linear") == 3


class TestModes:
    def test_train_eval_propagates(self, rng):
        model = Nested(rng)
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self, rng):
        model = Linear(2, 2, rng=rng)
        out = model(Tensor(np.ones((3, 2)))).sum()
        out.backward()
        assert model.weight.grad is not None
        model.zero_grad()
        assert model.weight.grad is None


class TestState:
    def test_state_dict_roundtrip(self, rng):
        a = Nested(rng)
        b = Nested(np.random.default_rng(99))
        state = a.state_dict()
        b.load_state_dict(state)
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_copies(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"][0, 0] = 123.0
        assert model.weight.data[0, 0] != 123.0

    def test_load_rejects_mismatched_keys(self, rng):
        model = Linear(2, 2, rng=rng)
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((2, 2))})

    def test_load_rejects_wrong_shape(self, rng):
        model = Linear(2, 2, rng=rng)
        state = model.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_clone_is_independent(self, rng):
        model = Linear(2, 2, rng=rng)
        twin = model.clone()
        twin.weight.data[0, 0] += 5.0
        assert model.weight.data[0, 0] != twin.weight.data[0, 0]


class TestSequential:
    def test_runs_in_order(self, rng):
        model = Sequential(Linear(2, 3, rng=rng), Linear(3, 1, rng=rng))
        out = model(Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)

    def test_mlp_dims_validation(self, rng):
        with pytest.raises(ValueError):
            MLP([4], rng=rng)
