"""Weight-initialization schemes."""

import numpy as np
import pytest

from repro.nn import init as init_schemes


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestGlorot:
    def test_bounds(self, rng):
        w = init_schemes.glorot_uniform(64, 32, rng)
        limit = np.sqrt(6.0 / 96)
        assert w.shape == (64, 32)
        assert np.abs(w).max() <= limit

    def test_variance_matches_formula(self, rng):
        w = init_schemes.glorot_uniform(300, 300, rng)
        # Uniform(-l, l) has variance l^2/3 = 2/(fan_in+fan_out).
        expected = 2.0 / 600
        assert abs(w.var() - expected) / expected < 0.1


class TestKaiming:
    def test_bounds(self, rng):
        w = init_schemes.kaiming_uniform(50, 20, rng)
        limit = np.sqrt(6.0 / 50)
        assert np.abs(w).max() <= limit
        assert w.shape == (50, 20)

    def test_depends_only_on_fan_in(self, rng):
        w1 = init_schemes.kaiming_uniform(100, 10, np.random.default_rng(1))
        w2 = init_schemes.kaiming_uniform(100, 500, np.random.default_rng(1))
        assert abs(np.abs(w1).max() - np.abs(w2).max()) < 0.05


class TestOthers:
    def test_zeros(self):
        z = init_schemes.zeros(3, 4)
        assert z.shape == (3, 4)
        assert (z == 0).all()

    def test_normal(self, rng):
        w = init_schemes.normal((2000,), std=0.5, rng=rng)
        assert abs(w.std() - 0.5) < 0.05
        assert abs(w.mean()) < 0.05
