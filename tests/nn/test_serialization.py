"""Checkpoint save/load round trips."""

import numpy as np
import pytest

from repro.gnn import GINEncoder
from repro.nn import Linear, load_module, save_module


class TestSerialization:
    def test_roundtrip_linear(self, tmp_path):
        rng = np.random.default_rng(0)
        original = Linear(4, 3, rng=rng)
        path = tmp_path / "ckpt.npz"
        save_module(original, path)
        fresh = Linear(4, 3, rng=np.random.default_rng(9))
        load_module(fresh, path)
        np.testing.assert_array_equal(fresh.weight.data,
                                      original.weight.data)
        np.testing.assert_array_equal(fresh.bias.data, original.bias.data)

    def test_roundtrip_nested_encoder(self, tmp_path):
        rng = np.random.default_rng(0)
        original = GINEncoder(5, 8, 2, rng=rng)
        path = tmp_path / "encoder.npz"
        save_module(original, path)
        fresh = GINEncoder(5, 8, 2, rng=np.random.default_rng(7))
        load_module(fresh, path)
        for (na, pa), (nb, pb) in zip(original.named_parameters(),
                                      fresh.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_mismatched_architecture_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        path = tmp_path / "ckpt.npz"
        save_module(Linear(4, 3, rng=rng), path)
        wrong = Linear(4, 5, rng=rng)
        with pytest.raises((KeyError, ValueError)):
            load_module(wrong, path)

    def test_empty_module_rejected(self, tmp_path):
        from repro.nn import Identity

        with pytest.raises(ValueError):
            save_module(Identity(), tmp_path / "x.npz")
