"""HTTP front end: real sockets, JSON round-trips, error mapping."""

import json
import threading
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import numpy as np
import pytest

from repro.methods import GraphCL
from repro.serve import (
    EmbeddingService,
    FrozenEncoder,
    graph_from_payload,
    make_server,
    payload_from_graph,
)
from repro.tensor import autocast

from .test_batcher import make_graphs


@pytest.fixture(scope="module")
def stack():
    """A live server on an OS-assigned port, torn down after the module."""
    with autocast("float32"):
        method = GraphCL(4, hidden_dim=8, num_layers=2,
                         rng=np.random.default_rng(0))
    encoder = FrozenEncoder(method, num_features=4)
    service = EmbeddingService(encoder, max_wait_ms=5.0)
    server = make_server(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    yield encoder, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


def post_embed(base, graphs):
    body = json.dumps(
        {"graphs": [payload_from_graph(g) for g in graphs]}).encode()
    request = Request(f"{base}/embed", data=body,
                      headers={"Content-Type": "application/json"})
    with urlopen(request, timeout=30) as response:
        return json.loads(response.read())


class TestPayloadCodec:
    def test_round_trip(self):
        graph = make_graphs(1, seed=5)[0]
        back = graph_from_payload(payload_from_graph(graph))
        assert back.num_nodes == graph.num_nodes
        assert np.array_equal(back.edges, graph.edges)
        assert np.array_equal(back.x, graph.x)

    def test_missing_fields_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            graph_from_payload({"num_nodes": 2})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            graph_from_payload([1, 2])

    def test_ragged_features_rejected(self):
        with pytest.raises(ValueError):
            graph_from_payload({"num_nodes": 2, "edges": [],
                                "x": [[1.0], [1.0, 2.0]]})


class TestEndpoints:
    def test_healthz(self, stack):
        _, base = stack
        with urlopen(f"{base}/healthz", timeout=30) as response:
            health = json.loads(response.read())
        assert health["status"] == "ok"
        assert health["num_features"] == 4

    def test_embed_bit_identical_to_offline(self, stack):
        """JSON floats round-trip exactly: served bytes == offline bytes."""
        encoder, base = stack
        graphs = make_graphs(5, seed=11)
        offline = encoder.embed(graphs)
        payload = post_embed(base, graphs)
        served = np.asarray(payload["embeddings"], dtype=offline.dtype)
        assert np.array_equal(served, offline)
        assert payload["count"] == 5
        assert payload["dim"] == offline.shape[1]

    def test_metrics_endpoint(self, stack):
        _, base = stack
        post_embed(base, make_graphs(2, seed=13))
        with urlopen(f"{base}/metrics", timeout=30) as response:
            metrics = json.loads(response.read())
        assert metrics["serve.requests"] >= 1
        assert "serve.batch_coalesce_rate" in metrics

    def test_malformed_body_is_400(self, stack):
        _, base = stack
        request = Request(f"{base}/embed", data=b"not json",
                          headers={"Content-Type": "application/json"})
        with pytest.raises(HTTPError) as excinfo:
            urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())

    def test_empty_graph_list_is_400(self, stack):
        _, base = stack
        request = Request(f"{base}/embed",
                          data=json.dumps({"graphs": []}).encode(),
                          headers={"Content-Type": "application/json"})
        with pytest.raises(HTTPError) as excinfo:
            urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_wrong_feature_width_is_400(self, stack):
        _, base = stack
        wrong = {"num_nodes": 1, "edges": [], "x": [[1.0, 2.0]]}
        request = Request(f"{base}/embed",
                          data=json.dumps({"graphs": [wrong]}).encode(),
                          headers={"Content-Type": "application/json"})
        with pytest.raises(HTTPError) as excinfo:
            urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "node features" in json.loads(excinfo.value.read())["error"]

    def test_negative_edge_endpoint_is_400(self, stack):
        """Regression: a negative endpoint used to wrap around via numpy
        fancy indexing and embed garbage with a 200; it must be rejected
        at graph construction and surface as a 400."""
        _, base = stack
        bad = {"num_nodes": 2, "edges": [[-1, 1]],
               "x": [[1.0] * 4, [2.0] * 4]}
        request = Request(f"{base}/embed",
                          data=json.dumps({"graphs": [bad]}).encode(),
                          headers={"Content-Type": "application/json"})
        with pytest.raises(HTTPError) as excinfo:
            urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "out of range" in json.loads(excinfo.value.read())["error"]

    @pytest.mark.parametrize("deadline_ms", ["soon", {"ms": 5}, 0, -10])
    def test_invalid_deadline_ms_is_400(self, stack, deadline_ms):
        _, base = stack
        body = {"graphs": [payload_from_graph(g)
                           for g in make_graphs(1, seed=17)],
                "deadline_ms": deadline_ms}
        request = Request(f"{base}/embed", data=json.dumps(body).encode(),
                          headers={"Content-Type": "application/json"})
        with pytest.raises(HTTPError) as excinfo:
            urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        assert "deadline_ms" in json.loads(excinfo.value.read())["error"]

    def test_valid_deadline_ms_is_honored(self, stack):
        _, base = stack
        body = {"graphs": [payload_from_graph(g)
                           for g in make_graphs(2, seed=19)],
                "deadline_ms": 10_000}
        request = Request(f"{base}/embed", data=json.dumps(body).encode(),
                          headers={"Content-Type": "application/json"})
        with urlopen(request, timeout=30) as response:
            assert json.loads(response.read())["count"] == 2

    def test_unknown_path_is_404(self, stack):
        _, base = stack
        with pytest.raises(HTTPError) as excinfo:
            urlopen(f"{base}/nope", timeout=30)
        assert excinfo.value.code == 404


class TestDeadlineTimeout:
    def test_missed_deadline_is_504_with_retry_after(self):
        """A forward slowed past the request deadline maps to 504 and
        advertises ``Retry-After`` so clients back off instead of piling
        on.  Dedicated stack: the slow fault would perturb the shared
        module fixture's latency metrics."""
        from repro.faults import FaultPlan, use_fault_plan

        with autocast("float32"):
            method = GraphCL(4, hidden_dim=8, num_layers=2,
                             rng=np.random.default_rng(0))
        encoder = FrozenEncoder(method, num_features=4)
        service = EmbeddingService(encoder, max_wait_ms=1.0,
                                   deadline_ms=100.0,
                                   forward_timeout_ms=5_000.0)
        server = make_server(service, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        plan = FaultPlan([{"point": "serve.forward", "kind": "slow",
                           "at": 1, "every": 1, "times": None,
                           "delay_s": 0.4}])
        try:
            with use_fault_plan(plan):
                with pytest.raises(HTTPError) as excinfo:
                    post_embed(f"http://{host}:{port}",
                               make_graphs(1, seed=23))
            assert excinfo.value.code == 504
            assert excinfo.value.headers["Retry-After"] is not None
            assert "error" in json.loads(excinfo.value.read())
        finally:
            server.shutdown()
            server.server_close()
            service.close()
