"""EmbeddingCache and the structure+feature content fingerprint."""

import numpy as np
import pytest

from repro.graph import Graph
from repro.obs import MetricRegistry
from repro.serve import EmbeddingCache, content_fingerprint


def graph_with(x, edges=None, num_nodes=None):
    x = np.asarray(x, dtype=np.float64)
    edges = (np.empty((0, 2), dtype=np.int64) if edges is None
             else np.asarray(edges, dtype=np.int64))
    return Graph(num_nodes or len(x), edges, x)


class TestContentFingerprint:
    def test_identical_graphs_share_a_key(self):
        a = graph_with([[1.0, 2.0], [3.0, 4.0]], edges=[[0, 1]])
        b = graph_with([[1.0, 2.0], [3.0, 4.0]], edges=[[0, 1]])
        assert content_fingerprint(a) == content_fingerprint(b)

    def test_feature_change_changes_key(self):
        a = graph_with([[1.0, 2.0], [3.0, 4.0]])
        b = graph_with([[1.0, 2.0], [3.0, 5.0]])
        assert content_fingerprint(a) != content_fingerprint(b)

    def test_structure_change_changes_key(self):
        x = [[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]
        a = graph_with(x, edges=[[0, 1]])
        b = graph_with(x, edges=[[0, 2]])
        assert content_fingerprint(a) != content_fingerprint(b)

    def test_memoized_on_instance(self):
        graph = graph_with([[1.0]])
        assert content_fingerprint(graph) is content_fingerprint(graph)
        assert graph._content_key == content_fingerprint(graph)


class TestEmbeddingCache:
    def test_round_trip_exact(self):
        cache = EmbeddingCache()
        graph = graph_with([[1.0, 2.0]])
        row = np.array([0.1, 0.2, 0.3], dtype=np.float32)
        cache.put(graph, row)
        assert np.array_equal(cache.get(graph), row)

    def test_miss_returns_none(self):
        cache = EmbeddingCache()
        assert cache.get(graph_with([[9.0]])) is None

    def test_lru_eviction_order(self):
        cache = EmbeddingCache(max_entries=2)
        graphs = [graph_with([[float(i)]]) for i in range(3)]
        cache.put(graphs[0], np.zeros(2))
        cache.put(graphs[1], np.ones(2))
        cache.get(graphs[0])          # refresh 0; 1 is now oldest
        cache.put(graphs[2], np.full(2, 2.0))
        assert cache.get(graphs[0]) is not None
        assert cache.get(graphs[1]) is None
        assert cache.get(graphs[2]) is not None
        assert len(cache) == 2

    def test_metrics_flow(self):
        metrics = MetricRegistry()
        cache = EmbeddingCache(max_entries=1, metrics=metrics)
        graphs = [graph_with([[float(i)]]) for i in range(2)]
        cache.get(graphs[0])                      # miss
        cache.put(graphs[0], np.zeros(2))
        cache.get(graphs[0])                      # hit
        cache.put(graphs[1], np.ones(2))          # evicts graphs[0]
        snapshot = metrics.snapshot()
        assert snapshot["serve.cache.hits"] == 1
        assert snapshot["serve.cache.misses"] == 1
        assert snapshot["serve.cache.evictions"] == 1
        assert snapshot["serve.cache.entries"] == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_EMBED_CACHE", "3")
        assert EmbeddingCache().max_entries == 3

    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            EmbeddingCache(max_entries=0)

    def test_clear(self):
        cache = EmbeddingCache()
        graph = graph_with([[1.0]])
        cache.put(graph, np.zeros(2))
        cache.clear()
        assert len(cache) == 0
        assert cache.get(graph) is None

    def test_cached_rows_are_immutable_copies(self):
        """Caller-side mutation must not poison the cache, either way."""
        cache = EmbeddingCache()
        graph = graph_with([[1.0]])
        row = np.array([1.0, 2.0])
        cache.put(graph, row)
        row[:] = -1                      # mutate the original after put
        first = cache.get(graph)
        assert np.array_equal(first, [1.0, 2.0])
        with pytest.raises(ValueError):  # returned rows are read-only
            first[:] = -2
        assert np.array_equal(cache.get(graph), [1.0, 2.0])
