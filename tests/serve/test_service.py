"""EmbeddingService: cache + batcher composition, metrics, bit-identity."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.methods import GraphCL
from repro.obs import MetricRegistry, RunJournal, events_of, read_journal
from repro.serve import EmbeddingService, FrozenEncoder
from repro.tensor import autocast

from .test_batcher import make_graphs


@pytest.fixture(scope="module")
def encoder():
    with autocast("float32"):
        method = GraphCL(4, hidden_dim=8, num_layers=2,
                         rng=np.random.default_rng(0))
    return FrozenEncoder(method, num_features=4)


@pytest.fixture(scope="module")
def graphs():
    return make_graphs(16, num_features=4, seed=3)


class TestBitIdentity:
    def test_concurrent_requests_match_offline(self, encoder, graphs):
        """The tentpole contract, in-process: served rows == offline rows
        at every concurrency level."""
        offline = np.concatenate([encoder.embed([g]) for g in graphs])
        with EmbeddingService(encoder, max_wait_ms=10.0) as service:
            with ThreadPoolExecutor(max_workers=6) as pool:
                rows = list(pool.map(
                    lambda g: service.embed_graphs([g])[0], graphs))
        assert np.array_equal(np.stack(rows), offline)

    def test_cache_hits_are_bit_identical(self, encoder, graphs):
        with EmbeddingService(encoder, max_wait_ms=0.0) as service:
            first = service.embed_graphs(graphs)
            second = service.embed_graphs(graphs)   # all cache hits
            snapshot = service.metrics_snapshot()
        assert np.array_equal(first, second)
        assert snapshot["serve.cache.hits"] == len(graphs)

    def test_mixed_hit_miss_request_order(self, encoder, graphs):
        offline = np.concatenate([encoder.embed([g]) for g in graphs[:4]])
        with EmbeddingService(encoder, max_wait_ms=0.0) as service:
            service.embed_graphs([graphs[1], graphs[3]])
            # 0 and 2 are misses, 1 and 3 hits — order must still hold.
            out = service.embed_graphs(graphs[:4])
        assert np.array_equal(out, offline)


class TestKnobs:
    def test_cache_can_be_disabled(self, encoder, graphs):
        with EmbeddingService(encoder, cache_entries=0,
                              max_wait_ms=0.0) as service:
            assert service.cache is None
            service.embed_graphs(graphs[:2])
            service.embed_graphs(graphs[:2])
            snapshot = service.metrics_snapshot()
        assert "serve.cache.hits" not in snapshot
        assert snapshot["serve.batches"] == 2

    def test_empty_request_rejected(self, encoder):
        with EmbeddingService(encoder) as service:
            with pytest.raises(ValueError, match="no graphs"):
                service.embed_graphs([])

    def test_health_payload(self, encoder):
        with EmbeddingService(encoder, max_batch_size=7,
                              max_wait_ms=3.0) as service:
            health = service.health()
        assert health["status"] == "ok"
        assert health["max_batch_size"] == 7
        assert health["max_wait_ms"] == 3.0
        assert health["num_features"] == 4


class TestMetrics:
    def test_snapshot_has_derived_rates(self, encoder, graphs):
        with EmbeddingService(encoder, max_wait_ms=0.0) as service:
            service.embed_graphs(graphs[:3])
            snapshot = service.metrics_snapshot()
        assert snapshot["serve.requests"] == 1
        assert snapshot["serve.graphs"] == 3
        assert snapshot["serve.requests_per_batch"] == 1.0
        assert snapshot["serve.batch_coalesce_rate"] == 0.0
        assert snapshot["serve.latency_seconds"]["count"] == 1
        assert snapshot["serve.uptime_seconds"] >= 0

    def test_log_metrics_journals_snapshot(self, encoder, graphs,
                                           tmp_path):
        with EmbeddingService(encoder, max_wait_ms=0.0) as service:
            service.embed_graphs(graphs[:2])
            with RunJournal(tmp_path) as journal:
                service.log_metrics(journal)
        (event,) = events_of(read_journal(tmp_path), "metrics")
        assert event["serve.requests"] == 1

    def test_shared_registry(self, encoder, graphs):
        metrics = MetricRegistry()
        with EmbeddingService(encoder, metrics=metrics,
                              max_wait_ms=0.0) as service:
            service.embed_graphs(graphs[:1])
        assert metrics.snapshot()["serve.requests"] == 1

    def test_snapshot_carries_plan_counters(self, encoder, graphs):
        """The /metrics payload includes the encoder's plan.* journal."""
        with EmbeddingService(encoder, cache_entries=0,
                              max_wait_ms=0.0) as service:
            rows = [service.embed_graphs([graphs[0]])[0] for _ in range(3)]
            snapshot = service.metrics_snapshot()
        assert all(np.array_equal(rows[0], row) for row in rows[1:])
        assert snapshot["plan.captures"] >= 1
        assert snapshot["plan.replays"] >= 1
        assert snapshot["plan.verify_failures"] == 0
        assert snapshot["plan.capacity"] > 0
