"""ServingClient retry ladder, exercised through a scripted transport."""

import json
import urllib.error

import numpy as np
import pytest

from repro.faults import RetryPolicy
from repro.serve import ServiceOverloaded, ServiceTimeout
from repro.serve.client import RetriesExhausted, ServingClient, _Response

from .test_batcher import make_graphs


class FakeTransport:
    """Replays a scripted list of responses/exceptions, recording calls."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = []

    def __call__(self, method, url, body, timeout):
        self.calls.append((method, url, body, timeout))
        step = self.script.pop(0)
        if isinstance(step, BaseException):
            raise step
        return step


def make_client(script, **kwargs):
    transport = FakeTransport(script)
    sleeps = []
    kwargs.setdefault("policy", RetryPolicy(retries=3, base_delay=0.1,
                                            multiplier=2.0, max_delay=5.0,
                                            jitter=0.0))
    client = ServingClient("http://example:8000/", transport=transport,
                           sleep=sleeps.append, **kwargs)
    return client, transport, sleeps


def ok(body=None):
    return _Response(200, body if body is not None else {"status": "ok"})


class TestRetryLadder:
    def test_success_needs_no_retry(self):
        client, transport, sleeps = make_client([ok()])
        assert client.health() == {"status": "ok"}
        assert client.attempts == 1 and client.retries == 0
        assert sleeps == []
        method, url, body, timeout = transport.calls[0]
        assert (method, url) == ("GET", "http://example:8000/healthz")

    def test_429_retried_until_success(self):
        client, transport, sleeps = make_client([
            _Response(429, {"error": "shed"}),
            _Response(429, {"error": "shed"}),
            ok(),
        ])
        assert client.health() == {"status": "ok"}
        assert client.attempts == 3 and client.retries == 2
        assert sleeps == [0.1, 0.2]

    def test_retry_after_floors_the_backoff(self):
        client, _, sleeps = make_client([
            _Response(429, {"error": "shed"}, retry_after=1.5),
            ok(),
        ])
        client.health()
        # Policy would sleep 0.1 s; the server's hint wins.
        assert sleeps == [1.5]

    def test_504_exhaustion_surfaces_service_timeout(self):
        client, _, _ = make_client(
            [_Response(504, {"error": "deadline"})] * 4)
        with pytest.raises(RetriesExhausted, match="4 attempt") as excinfo:
            client.health()
        assert isinstance(excinfo.value.last_error, ServiceTimeout)
        assert client.attempts == 4 and client.retries == 3

    def test_429_exhaustion_surfaces_service_overloaded(self):
        client, _, _ = make_client(
            [_Response(429, {"error": "shed"})] * 4)
        with pytest.raises(RetriesExhausted) as excinfo:
            client.health()
        assert isinstance(excinfo.value.last_error, ServiceOverloaded)

    def test_connection_errors_retried(self):
        client, _, sleeps = make_client([
            urllib.error.URLError("connection refused"),
            OSError("reset"),
            ok(),
        ])
        assert client.health() == {"status": "ok"}
        assert client.attempts == 3 and len(sleeps) == 2

    def test_400_fails_fast(self):
        client, _, sleeps = make_client(
            [_Response(400, {"error": "bad payload"})])
        with pytest.raises(RuntimeError, match="HTTP 400: bad payload"):
            client.health()
        assert client.attempts == 1 and sleeps == []

    def test_seeded_policies_replay_the_same_schedule(self):
        def schedule(seed):
            client, _, sleeps = make_client(
                [_Response(429, {"error": "shed"})] * 3 + [ok()],
                policy=RetryPolicy(retries=3, base_delay=0.1, jitter=0.5,
                                   seed=seed))
            client.health()
            return sleeps

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)


class TestEmbedGraphs:
    def test_rows_decoded_and_deadline_forwarded(self):
        graphs = make_graphs(2, seed=29)
        rows = [[1.0, 2.0], [3.0, 4.0]]
        client, transport, _ = make_client(
            [ok({"embeddings": rows, "count": 2, "dim": 2})],
            deadline_ms=250.0)
        out = client.embed_graphs(graphs)
        assert np.array_equal(out, np.asarray(rows))
        method, url, body, _ = transport.calls[0]
        assert (method, url) == ("POST", "http://example:8000/embed")
        payload = json.loads(body)
        assert payload["deadline_ms"] == 250.0
        assert len(payload["graphs"]) == 2

    def test_no_deadline_field_when_unset(self):
        client, transport, _ = make_client(
            [ok({"embeddings": [[0.0]], "count": 1, "dim": 1})])
        client.embed_graphs(make_graphs(1, seed=31))
        assert "deadline_ms" not in json.loads(transport.calls[0][2])
