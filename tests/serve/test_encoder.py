"""FrozenEncoder: checkpoint loading, freezing, and batch invariance."""

import json
import shutil

import numpy as np
import pytest

from repro.datasets import load_tu_dataset
from repro.run import CONFIG_FILENAME, RunConfig, execute_run
from repro.serve import CheckpointMismatch, FrozenEncoder


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    """One checkpointed 2-epoch GraphCL run shared by the module."""
    path = tmp_path_factory.mktemp("serve-run") / "run"
    execute_run(RunConfig(method="GraphCL", dataset="MUTAG", scale="tiny",
                          weight=0.5, epochs=2, seed=0, hidden_dim=8,
                          checkpoint_every=2, run_dir=str(path)))
    return path


@pytest.fixture(scope="module")
def graphs():
    return load_tu_dataset("MUTAG", scale="tiny", seed=0).graphs


class TestFromCheckpoint:
    def test_loads_and_freezes(self, run_dir):
        encoder = FrozenEncoder.from_checkpoint(run_dir)
        assert encoder.method.training is False
        assert all(not p.requires_grad
                   for p in encoder.method.parameters())
        assert encoder.dtype == "float32"
        assert encoder.config_hash

    def test_describe_identity(self, run_dir):
        info = FrozenEncoder.from_checkpoint(run_dir).describe()
        assert info["method"] == "GraphCL"
        assert info["dataset"] == "MUTAG"
        assert info["gradgcl_weight"] == 0.5
        assert info["embedding_dim"] > 0
        assert info["num_features"] > 0

    def test_refuses_config_hash_mismatch(self, run_dir, tmp_path):
        """Regression: an edited config must not load stale weights."""
        edited = tmp_path / "edited"
        shutil.copytree(run_dir, edited)
        config_path = edited / CONFIG_FILENAME
        fields = json.loads(config_path.read_text())
        fields["weight"] = 0.25
        config_path.write_text(json.dumps(fields))
        with pytest.raises(CheckpointMismatch) as excinfo:
            FrozenEncoder.from_checkpoint(edited)
        message = str(excinfo.value)
        # The error must be actionable: name both hashes and the way out.
        assert "config hash" in message
        assert "re-train" in message or "restore" in message

    def test_missing_config_is_actionable(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="config.json"):
            FrozenEncoder.from_checkpoint(tmp_path)

    def test_missing_checkpoint_is_actionable(self, run_dir, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        shutil.copy(run_dir / CONFIG_FILENAME, bare / CONFIG_FILENAME)
        with pytest.raises(FileNotFoundError, match="checkpoint_every"):
            FrozenEncoder.from_checkpoint(bare)

    def test_legacy_checkpoint_without_num_features(self, run_dir,
                                                    tmp_path, graphs):
        """Pre-serving snapshots lack num_features meta; loading still
        works by recovering the width from the training dataset."""
        legacy = tmp_path / "legacy"
        shutil.copytree(run_dir, legacy)
        meta_path = legacy / "checkpoint.json"
        meta = json.loads(meta_path.read_text())
        del meta["num_features"]
        meta_path.write_text(json.dumps(meta))
        encoder = FrozenEncoder.from_checkpoint(legacy)
        assert encoder.num_features == graphs[0].num_features

    def test_dtype_override(self, run_dir, graphs):
        encoder = FrozenEncoder.from_checkpoint(run_dir, dtype="float64")
        out = encoder.embed(graphs[:3])
        assert out.dtype == np.float64


class TestEmbed:
    def test_batch_composition_is_invisible(self, run_dir, graphs):
        """The serving contract: same bytes alone or batched."""
        encoder = FrozenEncoder.from_checkpoint(run_dir)
        subset = graphs[:8]
        together = encoder.embed(subset)
        singles = np.concatenate([encoder.embed([g]) for g in subset])
        assert np.array_equal(together, singles)

    def test_chunked_equals_single_forward(self, run_dir, graphs):
        encoder = FrozenEncoder.from_checkpoint(run_dir)
        subset = graphs[:10]
        assert np.array_equal(encoder.embed(subset),
                              encoder.embed(subset, batch_size=3))

    def test_round_trip_matches_training_method(self, run_dir, graphs):
        """Two independent loads of the same checkpoint agree exactly."""
        first = FrozenEncoder.from_checkpoint(run_dir).embed(graphs)
        second = FrozenEncoder.from_checkpoint(run_dir).embed(graphs)
        assert np.array_equal(first, second)

    def test_validate_rejects_wrong_feature_width(self, run_dir, graphs):
        from repro.graph import Graph

        encoder = FrozenEncoder.from_checkpoint(run_dir)
        wrong = Graph(2, np.empty((0, 2), dtype=np.int64),
                      np.zeros((2, encoder.num_features + 1)))
        with pytest.raises(ValueError, match="node features"):
            encoder.validate([wrong])

    def test_empty_request_rejected(self, run_dir):
        encoder = FrozenEncoder.from_checkpoint(run_dir)
        with pytest.raises(ValueError, match="empty"):
            encoder.embed([])


class TestPlanReplay:
    def test_replay_matches_plan_disabled_encoder(self, run_dir, graphs):
        """Steady-state requests replay the captured plan and must stay
        bit-identical to a plan_cache=0 (always-eager) encoder."""
        planned = FrozenEncoder.from_checkpoint(run_dir)
        eager = FrozenEncoder.from_checkpoint(run_dir, plan_cache=0)
        for _ in range(3):   # capture, verify-first replay, replay
            assert np.array_equal(planned.embed([graphs[0]]),
                                  eager.embed([graphs[0]]))
        assert planned.plan_metrics()["plan.replays"] >= 1
        assert planned.plan_metrics()["plan.verify_failures"] == 0
        assert eager.plan_metrics()["plan.capacity"] == 0
        assert eager.plan_metrics()["plan.captures"] == 0
