"""MicroBatcher: coalescing, equivalence, backpressure, teardown."""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.faults import FaultPlan, use_fault_plan
from repro.graph import Graph
from repro.obs import MetricRegistry
from repro.serve import MicroBatcher, ServiceOverloaded, ServiceTimeout


def make_graphs(count, num_features=4, seed=0):
    rng = np.random.default_rng(seed)
    graphs = []
    for _ in range(count):
        n = int(rng.integers(2, 9))
        iu = np.triu_indices(n, k=1)
        mask = rng.random(len(iu[0])) < 0.5
        edges = np.stack([iu[0][mask], iu[1][mask]], axis=1)
        graphs.append(Graph(n, edges, rng.normal(size=(n, num_features))))
    return graphs


def row_sum_forward(graphs):
    """A cheap stand-in forward with the same per-graph-determinism
    property as FrozenEncoder.embed: row i depends only on graph i."""
    return np.stack([np.asarray(g.x).sum(axis=0) for g in graphs])


class TestCoalescing:
    def test_results_match_per_request_forwards(self):
        graphs = make_graphs(12)
        expected = row_sum_forward(graphs)
        with MicroBatcher(row_sum_forward, max_batch_size=8,
                          max_wait_ms=20.0) as batcher:
            with ThreadPoolExecutor(max_workers=4) as pool:
                rows = list(pool.map(
                    lambda g: batcher.submit([g])[0], graphs))
        assert np.array_equal(np.stack(rows), expected)

    def test_concurrent_requests_share_forwards(self):
        graphs = make_graphs(16)
        metrics = MetricRegistry()
        release = threading.Event()

        def gated_forward(batch):
            release.wait(timeout=10)
            return row_sum_forward(batch)

        with MicroBatcher(gated_forward, max_batch_size=16,
                          max_wait_ms=50.0, metrics=metrics) as batcher:
            with ThreadPoolExecutor(max_workers=8) as pool:
                futures = [pool.submit(batcher.submit, [g])
                           for g in graphs]
                release.set()
                for future in futures:
                    future.result(timeout=30)
        snapshot = metrics.snapshot()
        assert snapshot["serve.coalesced_requests"] > 0
        assert snapshot["serve.batches"] < len(graphs)

    def test_multi_graph_requests_never_split(self):
        graphs = make_graphs(6)
        with MicroBatcher(row_sum_forward, max_batch_size=2,
                          max_wait_ms=0.0) as batcher:
            # 6 graphs > max_batch_size: the request still rides whole.
            out = batcher.submit(graphs)
        assert np.array_equal(out, row_sum_forward(graphs))

    def test_zero_wait_still_answers(self):
        graphs = make_graphs(3)
        with MicroBatcher(row_sum_forward, max_wait_ms=0.0) as batcher:
            for graph in graphs:
                assert np.array_equal(batcher.submit([graph]),
                                      row_sum_forward([graph]))


class TestBackpressure:
    def test_full_queue_sheds(self):
        metrics = MetricRegistry()
        entered = threading.Event()
        release = threading.Event()

        def blocking_forward(batch):
            entered.set()
            release.wait(timeout=10)
            return row_sum_forward(batch)

        graphs = make_graphs(4)
        batcher = MicroBatcher(blocking_forward, max_batch_size=1,
                               max_wait_ms=0.0, queue_size=1,
                               metrics=metrics)
        try:
            with ThreadPoolExecutor(max_workers=2) as pool:
                # First request occupies the worker inside the forward...
                first = pool.submit(batcher.submit, [graphs[0]])
                assert entered.wait(timeout=10)
                # ...second fills the queue (the worker is busy)...
                second = pool.submit(batcher.submit, [graphs[1]])
                deadline = threading.Event()
                while batcher._queue.empty() and not second.done():
                    if deadline.wait(timeout=0.01):  # pragma: no cover
                        break
                # ...third finds it full and must shed immediately.
                with pytest.raises(ServiceOverloaded, match="queue-size"):
                    batcher.submit([graphs[2]])
                release.set()
                first.result(timeout=30)
                second.result(timeout=30)
        finally:
            release.set()
            batcher.close()
        assert metrics.snapshot()["serve.shed"] == 1

    def test_forward_errors_propagate_to_callers(self):
        calls = []

        def flaky_forward(batch):
            calls.append(len(batch))
            if len(calls) == 1:
                raise RuntimeError("engine on fire")
            return row_sum_forward(batch)

        graphs = make_graphs(2)
        with MicroBatcher(flaky_forward, max_wait_ms=0.0) as batcher:
            with pytest.raises(RuntimeError, match="engine on fire"):
                batcher.submit([graphs[0]])
            # The worker survives an erroring forward.
            assert np.array_equal(batcher.submit([graphs[1]]),
                                  row_sum_forward([graphs[1]]))

    def test_closed_batcher_rejects(self):
        batcher = MicroBatcher(row_sum_forward)
        batcher.close()
        with pytest.raises(RuntimeError, match="closed"):
            batcher.submit(make_graphs(1))

    def test_close_drains_in_flight(self):
        """Requests enqueued before close() are answered, not dropped."""
        graphs = make_graphs(5)
        entered = threading.Event()
        release = threading.Event()

        def gated_forward(batch):
            entered.set()
            release.wait(timeout=10)
            return row_sum_forward(batch)

        batcher = MicroBatcher(gated_forward, max_batch_size=1,
                               max_wait_ms=0.0)
        with ThreadPoolExecutor(max_workers=len(graphs) + 1) as pool:
            head = pool.submit(batcher.submit, [graphs[0]])
            assert entered.wait(timeout=10)   # worker is inside a forward
            tail = [pool.submit(batcher.submit, [g]) for g in graphs[1:]]
            while batcher._queue.qsize() < len(tail):
                pass                          # all followers enqueued
            closer = pool.submit(batcher.close)
            release.set()
            closer.result(timeout=30)
            for graph, future in zip(graphs, [head, *tail]):
                assert np.array_equal(future.result(timeout=30),
                                      row_sum_forward([graph]))

    def test_empty_request_rejected(self):
        with MicroBatcher(row_sum_forward) as batcher:
            with pytest.raises(ValueError, match="empty"):
                batcher.submit([])


class TestDeadlines:
    def test_invalid_deadline_rejected(self):
        with MicroBatcher(row_sum_forward) as batcher:
            with pytest.raises(ValueError, match="deadline_ms"):
                batcher.submit(make_graphs(1), deadline_ms=0)
        with pytest.raises(ValueError, match="deadline_ms"):
            MicroBatcher(row_sum_forward, deadline_ms=-5.0)

    def test_request_expiring_in_queue_times_out(self):
        metrics = MetricRegistry()
        entered = threading.Event()
        release = threading.Event()

        def gated_forward(batch):
            entered.set()
            release.wait(timeout=10)
            return row_sum_forward(batch)

        graphs = make_graphs(2)
        batcher = MicroBatcher(gated_forward, max_batch_size=1,
                               max_wait_ms=0.0, metrics=metrics)
        try:
            with ThreadPoolExecutor(max_workers=1) as pool:
                head = pool.submit(batcher.submit, [graphs[0]])
                assert entered.wait(timeout=10)
                # The worker is stuck inside the forward; a follower with
                # a tiny deadline must fail in bounded time, not block.
                with pytest.raises(ServiceTimeout, match="deadline"):
                    batcher.submit([graphs[1]], deadline_ms=80.0)
                release.set()
                head.result(timeout=30)
        finally:
            release.set()
            batcher.close()
        assert metrics.snapshot()["serve.timeouts"] >= 1

    def test_watchdog_tombstones_hung_forward(self):
        metrics = MetricRegistry()
        hang = threading.Event()
        calls = []

        def hanging_once(batch):
            calls.append(len(batch))
            if len(calls) == 1:
                hang.wait(timeout=30)     # simulated wedged forward
            return row_sum_forward(batch)

        graphs = make_graphs(2)
        batcher = MicroBatcher(hanging_once, max_wait_ms=0.0,
                               deadline_ms=5_000.0,
                               forward_timeout_ms=100.0, metrics=metrics)
        try:
            with pytest.raises(ServiceTimeout, match="tombstone"):
                batcher.submit([graphs[0]])
            # The replacement worker serves the next request normally.
            assert np.array_equal(batcher.submit([graphs[1]]),
                                  row_sum_forward([graphs[1]]))
        finally:
            hang.set()
            batcher.close()
        snapshot = metrics.snapshot()
        assert snapshot["serve.tombstones"] == 1
        assert snapshot["serve.timeouts"] >= 1

    def test_dropped_batch_rescued_by_deadline(self):
        metrics = MetricRegistry()
        plan = FaultPlan([{"point": "serve.forward", "kind": "drop",
                           "at": 1}])
        graphs = make_graphs(2)
        with MicroBatcher(row_sum_forward, max_wait_ms=0.0,
                          deadline_ms=150.0, metrics=metrics) as batcher:
            with use_fault_plan(plan):
                with pytest.raises(ServiceTimeout):
                    batcher.submit([graphs[0]])
                # The drop rule is exhausted; service recovers.
                assert np.array_equal(batcher.submit([graphs[1]]),
                                      row_sum_forward([graphs[1]]))
        assert metrics.snapshot()["serve.dropped_batches"] == 1


class TestCloseSubmitRace:
    def test_close_vs_submit_stress(self):
        """Regression for the close/submit deadlock: a submit racing
        close() could land its request *behind* the shutdown sentinel and
        wait on it forever.  Race 4 submitters against close repeatedly;
        every submit must resolve in bounded time — a correct row, a
        clean 'closed' rejection, or a timeout — never a hang."""
        graph = make_graphs(1)[0]
        expected = row_sum_forward([graph])

        for trial in range(30):
            batcher = MicroBatcher(row_sum_forward, max_batch_size=4,
                                   max_wait_ms=0.0, queue_size=16,
                                   deadline_ms=2_000.0)
            barrier = threading.Barrier(5)

            def submit_one():
                barrier.wait(timeout=10)
                return batcher.submit([graph])

            def close_it():
                barrier.wait(timeout=10)
                batcher.close()

            with ThreadPoolExecutor(max_workers=5) as pool:
                futures = [pool.submit(submit_one) for _ in range(4)]
                closer = pool.submit(close_it)
                closer.result(timeout=10)
                for future in futures:
                    try:
                        rows = future.result(timeout=10)
                    except RuntimeError as exc:
                        assert ("closed" in str(exc)
                                or isinstance(exc, (ServiceTimeout,
                                                    ServiceOverloaded)))
                        continue
                    assert np.array_equal(rows, expected)
            batcher.close()


@pytest.mark.slow
class TestBatchInvarianceProperty:
    """Hypothesis: block-diagonal coalesced forwards == per-graph forwards
    through a real frozen encoder, for arbitrary request shapes, arrival
    orders, and batcher settings."""

    @classmethod
    def setup_class(cls):
        from repro.methods import GraphCL
        from repro.serve import FrozenEncoder
        from repro.tensor import autocast

        cls.graphs = make_graphs(24, num_features=4, seed=7)
        with autocast("float32"):
            method = GraphCL(4, hidden_dim=8, num_layers=2,
                             rng=np.random.default_rng(0))
        cls.encoder = FrozenEncoder(method, num_features=4)
        cls.singles = np.concatenate(
            [cls.encoder.embed([g]) for g in cls.graphs])

    def test_arbitrary_arrivals_match_per_graph_forwards(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        graphs, singles, encoder = self.graphs, self.singles, self.encoder

        @settings(max_examples=25, deadline=None)
        @given(
            order=st.permutations(range(len(graphs))),
            cuts=st.sets(st.integers(1, len(graphs) - 1), max_size=6),
            max_batch_size=st.integers(1, 32),
            max_wait_ms=st.sampled_from([0.0, 0.5, 5.0]),
            workers=st.integers(1, 6),
        )
        def check(order, cuts, max_batch_size, max_wait_ms, workers):
            # Partition the shuffled indices into contiguous requests.
            bounds = [0, *sorted(cuts), len(order)]
            requests = [order[a:b] for a, b in zip(bounds, bounds[1:])
                        if b > a]
            with MicroBatcher(encoder.embed,
                              max_batch_size=max_batch_size,
                              max_wait_ms=max_wait_ms,
                              queue_size=len(requests) + 1) as batcher:
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    results = list(pool.map(
                        lambda idxs: batcher.submit(
                            [graphs[i] for i in idxs]),
                        requests))
            for idxs, block in zip(requests, results):
                assert np.array_equal(block, singles[list(idxs)])

        check()
