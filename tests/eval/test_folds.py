"""Streaming fold statistics vs the reference standardization."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.eval import kfold_indices, plan_folds, streaming_train_stats
from repro.utils.seed import seeded_rng


def reference_stats(x, train_idx):
    """The per-fold mean/std the reference ``standardize`` would fit."""
    train = x[train_idx]
    mean = train.mean(axis=0)
    std = train.std(axis=0)
    std[std < 1e-12] = 1.0
    return mean, std


def make_plan(x, labels, folds, seed=0):
    classes, class_ids = np.unique(labels, return_inverse=True)
    fold_list = kfold_indices(len(labels), folds, seeded_rng(seed))
    return plan_folds(x, class_ids, fold_list, len(classes)), fold_list


class TestPlanFolds:
    def test_stats_match_reference_per_fold(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(37, 5)) * 3.0 + 1.0
        labels = rng.integers(0, 3, size=37)
        plan, fold_list = make_plan(x, labels, folds=4)
        assert plan.valid == list(range(4))
        for j, position in enumerate(plan.valid):
            train_idx = np.concatenate(
                [f for i, f in enumerate(fold_list) if i != position])
            mean, std = reference_stats(x, train_idx)
            np.testing.assert_allclose(plan.mean[j], mean, atol=1e-10)
            np.testing.assert_allclose(plan.std[j], std, rtol=1e-9)
            assert plan.train_sizes[j] == len(train_idx)

    def test_train_indices_match_reference_order(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 3))
        labels = rng.integers(0, 2, size=20)
        plan, fold_list = make_plan(x, labels, folds=5)
        for position in plan.valid:
            expected = np.concatenate(
                [f for i, f in enumerate(fold_list) if i != position])
            np.testing.assert_array_equal(plan.train_indices(position),
                                          expected)

    def test_test_mask_marks_held_out_rows(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(16, 2))
        labels = rng.integers(0, 2, size=16)
        plan, _ = make_plan(x, labels, folds=4)
        for j, position in enumerate(plan.valid):
            held_out = np.flatnonzero(plan.test_mask[:, j])
            np.testing.assert_array_equal(np.sort(held_out),
                                          np.sort(plan.folds[position]))

    def test_degenerate_fold_matches_reference_skip_rule(self):
        # One lone sample of class 1: the fold holding it leaves a
        # single-class training split — exactly what the reference's
        # ``len(np.unique(labels[train_idx])) < 2`` check drops.
        rng = np.random.default_rng(3)
        x = rng.normal(size=(12, 3))
        labels = np.zeros(12, dtype=int)
        labels[4] = 1
        plan, fold_list = make_plan(x, labels, folds=6)
        expected_valid = [
            i for i, fold in enumerate(fold_list)
            if len(np.unique(labels[np.concatenate(
                [f for j, f in enumerate(fold_list) if j != i])])) >= 2]
        assert plan.valid == expected_valid
        assert plan.skipped == 6 - len(expected_valid) == 1

    def test_covered_false_when_class_fully_held_out(self):
        # Class 2 lives entirely in fold 0: its training complement still
        # has two classes (valid) but misses a global class (uncovered).
        x = np.arange(24, dtype=float).reshape(12, 2)
        class_ids = np.array([2, 2, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1])
        fold_list = [np.array([0, 1, 2, 3]), np.array([4, 5, 6, 7]),
                     np.array([8, 9, 10, 11])]
        plan = plan_folds(x, class_ids, fold_list, num_classes=3)
        assert plan.valid == [0, 1, 2]
        assert plan.covered.tolist() == [False, True, True]

    def test_constant_column_floors_to_one(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10.0)
        labels = np.array([0, 1] * 5)
        plan, _ = make_plan(x, labels, folds=2)
        assert np.all(plan.std[:, 0] == 1.0)

    def test_streaming_rejects_total_holdout(self):
        x = np.ones((4, 2))
        with pytest.raises(ValueError, match="nothing to fit"):
            streaming_train_stats(x, np.arange(4), x.sum(axis=0),
                                  (x * x).sum(axis=0))


finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                   allow_infinity=False, width=64)


@pytest.mark.slow
@settings(max_examples=60, deadline=None)
@given(st.data())
def test_streaming_matches_naive_standardization(data):
    """Property: global-sums-minus-fold stats equal the naive complement
    stats to roundoff, for any matrix and any proper held-out subset.

    Near-zero variances are excluded (``assume``): there the streaming
    subtraction can land on the other side of the 1e-12 deviation floor
    than the naive reduce (a constant column whose sums round to a
    variance of 1e-16 instead of exactly 0) — the margin guard in the
    engine, not this tolerance, covers that regime, and the
    constant-column test above pins the exactly-representable case.
    """
    n = data.draw(st.integers(min_value=4, max_value=20))
    d = data.draw(st.integers(min_value=1, max_value=6))
    x = data.draw(arrays(np.float64, (n, d), elements=finite))
    fold = np.asarray(sorted(data.draw(
        st.sets(st.integers(0, n - 1), min_size=1, max_size=n - 1))))
    train_idx = np.setdiff1d(np.arange(n), fold)
    naive_var = x[train_idx].var(axis=0)
    assume(bool(np.all(naive_var > 1e-10)))
    mean, std = streaming_train_stats(x, fold, x.sum(axis=0),
                                      (x * x).sum(axis=0))
    ref_mean, ref_std = reference_stats(x, train_idx)
    np.testing.assert_allclose(mean, ref_mean, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(std, ref_std, rtol=1e-7, atol=1e-9)
