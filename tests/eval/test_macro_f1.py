"""Macro-F1 metric."""

import numpy as np
import pytest

from repro.eval import macro_f1


class TestMacroF1:
    def test_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert macro_f1(y, y) == 1.0

    def test_known_value(self):
        # Class 0: tp=1 fp=1 fn=0 -> F1 = 2/3; class 1: tp=1 fp=0 fn=1
        # -> F1 = 2/3; macro = 2/3.
        predictions = np.array([0, 0, 1])
        labels = np.array([0, 1, 1])
        assert macro_f1(predictions, labels) == pytest.approx(2 / 3)

    def test_penalizes_ignored_minority(self):
        # Majority-only predictor: accuracy is high, macro-F1 is low.
        labels = np.array([0] * 9 + [1])
        predictions = np.zeros(10, dtype=int)
        acc = (predictions == labels).mean()
        f1 = macro_f1(predictions, labels)
        assert acc == 0.9
        assert f1 < 0.5

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            macro_f1(np.ones(3), np.ones(4))

    def test_handles_predicted_only_class(self):
        predictions = np.array([0, 3])
        labels = np.array([0, 0])
        # Class 3 has no true members but was predicted: F1 = 0 for it.
        assert macro_f1(predictions, labels) < 1.0
