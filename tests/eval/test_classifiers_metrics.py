"""Classifier correctness on separable data; metric correctness."""

import numpy as np
import pytest

from repro.eval import (
    LinearSVMClassifier,
    LogisticRegressionClassifier,
    SGDClassifier,
    accuracy,
    kfold_indices,
    make_classifier,
    mean_std,
    roc_auc,
    standardize,
)


@pytest.fixture
def separable(request):
    rng = np.random.default_rng(0)
    n = 60
    x0 = rng.normal(loc=-2.0, size=(n, 4))
    x1 = rng.normal(loc=2.0, size=(n, 4))
    x = np.concatenate([x0, x1])
    y = np.concatenate([np.zeros(n, dtype=int), np.ones(n, dtype=int)])
    return x, y


@pytest.fixture
def three_class():
    rng = np.random.default_rng(1)
    centers = np.array([[4, 0], [-4, 0], [0, 4]], dtype=float)
    x = np.concatenate([rng.normal(loc=c, size=(40, 2)) for c in centers])
    y = np.repeat([0, 1, 2], 40)
    return x, y


class TestClassifiers:
    @pytest.mark.parametrize("kind", ["logreg", "svm", "sgd"])
    def test_separable_binary(self, separable, kind):
        x, y = separable
        model = make_classifier(kind)
        model.fit(x, y)
        assert model.score(x, y) > 0.95

    @pytest.mark.parametrize("kind", ["logreg", "svm", "sgd"])
    def test_three_class(self, three_class, kind):
        x, y = three_class
        model = make_classifier(kind)
        model.fit(x, y)
        assert model.score(x, y) > 0.9

    def test_logreg_probabilities(self, separable):
        x, y = separable
        model = LogisticRegressionClassifier().fit(x, y)
        probs = model.predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
        assert (probs >= 0).all()

    def test_nonconsecutive_labels(self):
        rng = np.random.default_rng(2)
        x = np.concatenate([rng.normal(-3, size=(30, 2)),
                            rng.normal(3, size=(30, 2))])
        y = np.array([7] * 30 + [42] * 30)
        model = LinearSVMClassifier().fit(x, y)
        assert set(model.predict(x)) <= {7, 42}
        assert model.score(x, y) > 0.95

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegressionClassifier().fit(np.ones((5, 2)), np.ones(5))

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            LogisticRegressionClassifier().predict(np.ones((2, 2)))

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_classifier("forest")

    def test_regularization_shrinks_weights(self, separable):
        x, y = separable
        weak = LogisticRegressionClassifier(l2=1e-4).fit(x, y)
        strong = LogisticRegressionClassifier(l2=10.0).fit(x, y)
        assert np.abs(strong.weight).sum() < np.abs(weak.weight).sum()


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_shape_check(self):
        with pytest.raises(ValueError):
            accuracy(np.ones(3), np.ones(4))

    def test_roc_auc_perfect(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 1.0

    def test_roc_auc_inverted(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([0, 0, 1, 1])
        assert roc_auc(scores, labels) == 0.0

    def test_roc_auc_chance(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=2000)
        labels = rng.integers(0, 2, size=2000)
        assert abs(roc_auc(scores, labels) - 0.5) < 0.05

    def test_roc_auc_ties_midrank(self):
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        labels = np.array([0, 1, 0, 1])
        assert roc_auc(scores, labels) == 0.5

    def test_roc_auc_validation(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(3), np.array([0, 0, 0]))
        with pytest.raises(ValueError):
            roc_auc(np.ones(3), np.array([0, 1, 2]))

    def test_mean_std(self):
        mean, std = mean_std([1.0, 3.0])
        assert mean == 2.0 and std == 1.0
        with pytest.raises(ValueError):
            mean_std([])


class TestProtocolHelpers:
    def test_standardize(self):
        rng = np.random.default_rng(0)
        train = rng.normal(loc=5, scale=3, size=(100, 4))
        test = rng.normal(size=(10, 4))
        strain, stest = standardize(train, test)
        np.testing.assert_allclose(strain.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(strain.std(axis=0), 1.0, atol=1e-10)
        assert stest.shape == (10, 4)

    def test_standardize_constant_column_safe(self):
        train = np.ones((10, 2))
        (out,) = standardize(train)
        assert np.isfinite(out).all()

    def test_kfold_partition(self):
        rng = np.random.default_rng(0)
        folds = kfold_indices(23, 5, rng)
        together = np.concatenate(folds)
        assert sorted(together) == list(range(23))
        sizes = [len(f) for f in folds]
        assert max(sizes) - min(sizes) <= 1

    def test_kfold_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            kfold_indices(10, 1, rng)
        with pytest.raises(ValueError):
            kfold_indices(3, 5, rng)
