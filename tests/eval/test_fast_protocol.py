"""Fast evaluation engine: bit-exact equivalence with the reference path.

The contract under test is the tentpole guarantee: for every classifier,
fold/repeat shape, and worker count, ``engine="fast"`` returns the exact
``(mean, std)`` floats of the seed reference protocol.  Plain ``==`` on
the tuples, never ``approx`` — the engine's margin guard exists precisely
so that equality holds bitwise.
"""

import numpy as np
import pytest

import repro.eval.engine as engine_mod
from repro.eval import (
    evaluate_graph_embeddings,
    evaluate_node_embeddings,
    fast_eval_enabled,
    last_eval_stats,
    lockstep_available,
    resolve_eval_workers,
)
from repro.eval.engine import guard_tau


@pytest.fixture(scope="module")
def data():
    """Three moderately separated clusters with non-dense label values."""
    rng = np.random.default_rng(0)
    centers = rng.normal(size=(3, 6)) * 3.0
    x = np.concatenate([rng.normal(loc=c, size=(30, 6)) for c in centers])
    y = np.repeat(np.array([2, 5, 9]), 30)
    perm = rng.permutation(len(y))
    return x[perm], y[perm]


def both(x, y, **kwargs):
    ref = evaluate_graph_embeddings(x, y, engine="reference", **kwargs)
    fast = evaluate_graph_embeddings(x, y, engine="fast", **kwargs)
    return ref, fast


class TestGraphEquivalence:
    @pytest.mark.parametrize("classifier", ("svm", "logreg", "sgd"))
    @pytest.mark.parametrize("workers", (0, 2))
    def test_bit_identical_every_classifier_and_worker_count(
            self, data, classifier, workers):
        x, y = data
        ref = evaluate_graph_embeddings(x, y, classifier=classifier,
                                        folds=4, repeats=2,
                                        engine="reference")
        fast = evaluate_graph_embeddings(x, y, classifier=classifier,
                                         folds=4, repeats=2, engine="fast",
                                         eval_workers=workers)
        assert fast == ref

    @pytest.mark.parametrize("folds,repeats", ((3, 3), (5, 1), (10, 2)))
    def test_bit_identical_across_fold_repeat_shapes(self, data, folds,
                                                     repeats):
        x, y = data
        ref, fast = both(x, y, folds=folds, repeats=repeats)
        assert fast == ref

    def test_default_engine_is_fast(self, data, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_EVAL", raising=False)
        x, y = data
        assert fast_eval_enabled()
        result = evaluate_graph_embeddings(x, y, folds=4, repeats=1)
        assert last_eval_stats().solver == "lockstep"
        assert result == evaluate_graph_embeddings(x, y, folds=4,
                                                   repeats=1,
                                                   engine="reference")

    def test_degenerate_folds_skip_identically(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(12, 4))
        y = np.zeros(12, dtype=int)
        y[0] = 1
        with pytest.warns(RuntimeWarning, match="degenerate"):
            ref = evaluate_graph_embeddings(x, y, folds=6, repeats=2,
                                            engine="reference")
        ref_skipped = last_eval_stats().folds_skipped
        with pytest.warns(RuntimeWarning, match="degenerate"):
            fast = evaluate_graph_embeddings(x, y, folds=6, repeats=2,
                                             engine="fast")
        assert fast == ref
        assert last_eval_stats().folds_skipped == ref_skipped > 0

    def test_guard_fallback_stays_identical(self, data, monkeypatch):
        # An absurdly wide guard margin re-fits every fold on the
        # reference path — results must not move, only the stats.
        x, y = data
        ref = evaluate_graph_embeddings(x, y, folds=4, repeats=2,
                                        engine="reference")
        monkeypatch.setenv("REPRO_EVAL_GUARD", "1e9")
        fast = evaluate_graph_embeddings(x, y, folds=4, repeats=2,
                                         engine="fast")
        assert fast == ref
        stats = last_eval_stats()
        assert stats.folds_batched == 0
        assert stats.folds_fallback == stats.folds_total

    def test_without_lockstep_driver(self, data, monkeypatch):
        # Driver unavailable: SVM folds drop to reference cells, logreg
        # folds to the joint solve — equivalence must survive both.
        monkeypatch.setattr(engine_mod, "_lockstep_ok", False)
        x, y = data
        for classifier, solver in (("svm", "reference"),
                                   ("logreg", "batched")):
            ref = evaluate_graph_embeddings(x, y, classifier=classifier,
                                            folds=4, repeats=1,
                                            engine="reference")
            fast = evaluate_graph_embeddings(x, y, classifier=classifier,
                                             folds=4, repeats=1,
                                             engine="fast")
            assert fast == ref
            assert last_eval_stats().solver == solver

    def test_engine_switch_validation(self, data):
        x, y = data
        with pytest.raises(ValueError, match="engine"):
            evaluate_graph_embeddings(x, y, engine="bogus")

    def test_env_switch_disables_fast_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_EVAL", "0")
        assert not fast_eval_enabled()
        monkeypatch.setenv("REPRO_FAST_EVAL", "off")
        assert not fast_eval_enabled()
        monkeypatch.delenv("REPRO_FAST_EVAL")
        assert fast_eval_enabled()


class TestNodeEquivalence:
    @pytest.fixture(scope="class")
    def node_data(self):
        rng = np.random.default_rng(0)
        centers = rng.normal(size=(2, 8)) * 4.0
        x = np.concatenate([rng.normal(loc=c, size=(50, 8))
                            for c in centers])
        y = np.repeat(np.arange(2), 50)
        train = np.zeros(100, dtype=bool)
        train[rng.choice(100, 30, replace=False)] = True
        return x, y, train, ~train

    def test_bit_identical(self, node_data):
        x, y, train, test = node_data
        ref = evaluate_node_embeddings(x, y, train, test,
                                       engine="reference")
        fast = evaluate_node_embeddings(x, y, train, test, engine="fast")
        assert fast == ref
        assert last_eval_stats().solver == "batched"

    def test_bit_identical_more_repeats(self, node_data):
        x, y, train, test = node_data
        ref = evaluate_node_embeddings(x, y, train, test, repeats=5,
                                       engine="reference")
        fast = evaluate_node_embeddings(x, y, train, test, repeats=5,
                                        engine="fast")
        assert fast == ref


class TestEngineKnobs:
    def test_lockstep_driver_available_here(self):
        assert lockstep_available() is True

    def test_probe_caches_failure_without_driver(self, monkeypatch):
        monkeypatch.setattr(engine_mod, "_lockstep_ok", None)
        monkeypatch.setattr(engine_mod, "_lbfgsb_core", None)
        assert lockstep_available() is False
        assert engine_mod._lockstep_ok is False

    def test_resolve_eval_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVAL_WORKERS", raising=False)
        assert resolve_eval_workers(None) == 0
        assert resolve_eval_workers(3) == 3
        monkeypatch.setenv("REPRO_EVAL_WORKERS", "2")
        assert resolve_eval_workers(None) == 2
        assert resolve_eval_workers(0) == 0  # explicit beats env
        with pytest.raises(ValueError, match="workers"):
            resolve_eval_workers(-1)

    def test_guard_tau_per_solver_family(self, monkeypatch):
        monkeypatch.delenv("REPRO_EVAL_GUARD", raising=False)
        assert guard_tau("lockstep") == pytest.approx(1e-6)
        assert guard_tau("logreg") == pytest.approx(1e-2)
        assert guard_tau("unknown") == pytest.approx(1e-2)
        monkeypatch.setenv("REPRO_EVAL_GUARD", "0.5")
        assert guard_tau("lockstep") == 0.5
        assert guard_tau("logreg") == 0.5

    def test_stats_journal_fields(self, data):
        x, y = data
        evaluate_graph_embeddings(x, y, folds=4, repeats=2, engine="fast",
                                  eval_workers=0)
        stats = last_eval_stats()
        fields = stats.to_fields()
        assert fields["eval_solver"] == "lockstep"
        assert fields["eval_folds"] == 8
        assert (fields["eval_folds_batched"] + fields["eval_folds_fallback"]
                + fields["eval_folds_skipped"]) == 8
        assert fields["eval_fit_iterations"] > 0
        assert len(fields["eval_repeat_seconds"]) == 2
        assert fields["eval_workers"] == 0
