"""SGDClassifier specifics (the large-dataset path of Table IV)."""

import numpy as np
import pytest

from repro.eval import SGDClassifier


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    x = np.concatenate([rng.normal(-2, size=(80, 3)),
                        rng.normal(2, size=(80, 3))])
    y = np.repeat([0, 1], 80)
    return x, y


class TestSGDClassifier:
    def test_deterministic_given_seed(self, data):
        x, y = data
        a = SGDClassifier(seed=3).fit(x, y)
        b = SGDClassifier(seed=3).fit(x, y)
        np.testing.assert_array_equal(a.weight, b.weight)

    def test_seed_changes_result(self, data):
        x, y = data
        a = SGDClassifier(seed=3, epochs=1).fit(x, y)
        b = SGDClassifier(seed=4, epochs=1).fit(x, y)
        assert not np.array_equal(a.weight, b.weight)

    def test_more_epochs_do_not_hurt_much(self, data):
        x, y = data
        short = SGDClassifier(epochs=1).fit(x, y).score(x, y)
        long = SGDClassifier(epochs=30).fit(x, y).score(x, y)
        assert long >= short - 0.05

    def test_small_batches(self, data):
        x, y = data
        model = SGDClassifier(batch_size=4, epochs=5).fit(x, y)
        assert model.score(x, y) > 0.9

    def test_batch_larger_than_data(self, data):
        x, y = data
        model = SGDClassifier(batch_size=10_000, epochs=10).fit(x, y)
        assert model.score(x, y) > 0.9

    def test_regularization_bounds_weights(self, data):
        x, y = data
        weak = SGDClassifier(l2=0.0, epochs=20).fit(x, y)
        strong = SGDClassifier(l2=1.0, epochs=20).fit(x, y)
        assert np.abs(strong.weight).sum() < np.abs(weak.weight).sum()
