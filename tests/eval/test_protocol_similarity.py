"""Evaluation protocols, similarity analysis, and t-SNE."""

import numpy as np
import pytest

from repro.eval import (
    evaluate_graph_embeddings,
    evaluate_node_embeddings,
    intra_inter_class_similarity,
    similarity_diversity,
    sorted_similarity_matrix,
    tsne,
)


def clustered_embeddings(rng, per_class=30, classes=2, dim=8, sep=4.0):
    centers = rng.normal(size=(classes, dim)) * sep
    x = np.concatenate([rng.normal(loc=c, size=(per_class, dim))
                        for c in centers])
    y = np.repeat(np.arange(classes), per_class)
    return x, y


class TestGraphProtocol:
    def test_separable_high_accuracy(self):
        rng = np.random.default_rng(0)
        x, y = clustered_embeddings(rng)
        mean, std = evaluate_graph_embeddings(x, y, folds=5, repeats=2)
        assert mean > 90.0
        assert std >= 0.0

    def test_random_near_chance(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 8))
        y = rng.integers(0, 2, size=100)
        mean, _ = evaluate_graph_embeddings(x, y, folds=5, repeats=2)
        assert 25.0 < mean < 75.0

    def test_sgd_classifier_path(self):
        rng = np.random.default_rng(0)
        x, y = clustered_embeddings(rng)
        mean, _ = evaluate_graph_embeddings(x, y, classifier="sgd",
                                            folds=5, repeats=1)
        assert mean > 85.0

    def test_returns_percent_scale(self):
        rng = np.random.default_rng(0)
        x, y = clustered_embeddings(rng)
        mean, _ = evaluate_graph_embeddings(x, y, folds=5, repeats=1)
        assert 0.0 <= mean <= 100.0


class TestNodeProtocol:
    def test_separable(self):
        rng = np.random.default_rng(0)
        x, y = clustered_embeddings(rng, per_class=50)
        train = np.zeros(100, dtype=bool)
        train[rng.choice(100, 30, replace=False)] = True
        test = ~train
        mean, std = evaluate_node_embeddings(x, y, train, test)
        assert mean > 90.0


class TestSimilarity:
    def test_sorted_matrix_block_structure(self):
        rng = np.random.default_rng(0)
        x, y = clustered_embeddings(rng, per_class=10)
        shuffled = rng.permutation(20)
        sims = sorted_similarity_matrix(x[shuffled], y[shuffled])
        # Intra-class block mean should exceed inter-class block mean.
        intra = (sims[:10, :10].mean() + sims[10:, 10:].mean()) / 2
        inter = sims[:10, 10:].mean()
        assert intra > inter

    def test_intra_inter(self):
        rng = np.random.default_rng(0)
        x, y = clustered_embeddings(rng, per_class=15)
        intra, inter = intra_inter_class_similarity(x, y)
        assert intra > inter

    def test_intra_inter_validation(self):
        with pytest.raises(ValueError):
            intra_inter_class_similarity(np.ones((3, 2)),
                                         np.array([0, 0, 0]))

    def test_diversity_orders_saturated_vs_spread(self):
        rng = np.random.default_rng(0)
        # Saturated: two tight clusters -> similarities near +/-1.
        saturated, _ = clustered_embeddings(rng, per_class=20, sep=50.0)
        spread = rng.normal(size=(40, 8))
        assert similarity_diversity(saturated) > 0  # sanity
        # Random spread has mid-range similarities with smaller |values| but
        # the *saturated* case has extreme bimodal values -> higher std.
        assert (similarity_diversity(saturated)
                != similarity_diversity(spread))


class TestTSNE:
    def test_preserves_cluster_structure(self):
        rng = np.random.default_rng(0)
        x, y = clustered_embeddings(rng, per_class=15, sep=8.0)
        emb = tsne(x, iterations=150, seed=0)
        assert emb.shape == (30, 2)
        # Same-class points end up closer on average than cross-class.
        from repro.eval import intra_inter_class_similarity
        dists = ((emb[:, None] - emb[None, :]) ** 2).sum(axis=2)
        same = y[:, None] == y[None, :]
        off = ~np.eye(30, dtype=bool)
        assert dists[same & off].mean() < dists[~same].mean()

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            tsne(np.ones((3, 4)))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(12, 5))
        a = tsne(x, iterations=50, seed=1)
        b = tsne(x, iterations=50, seed=1)
        np.testing.assert_allclose(a, b)
