"""Captured-plan executor: capture, bit-identical replay, fallback, LRU.

The contract under test is the serving one: ``PlanCache.run`` must return
byte-for-byte what the eager forward would have, for every batch, whether
the call captured, replayed, or fell back.
"""

import numpy as np
import pytest

from repro.graph import Graph, GraphBatch
from repro.nn import Linear, Module
from repro.tensor import (
    PlanCache,
    PlanCaptureError,
    Tensor,
    call,
    capture,
    fused_kernels,
    plan_cache_for,
)
from repro.tensor.plan import DEFAULT_PLAN_CACHE_CAPACITY

NUM_FEATURES = 4


class TinyEncoder(Module):
    """Linear + mean readout: exercises fused-linear, segment_mean, inputs."""

    def __init__(self, rng):
        super().__init__()
        self.lin = Linear(NUM_FEATURES, 3, rng=rng)

    def graph_embeddings(self, batch):
        hidden = self.lin(Tensor(batch.x)).relu()
        return call("segment_mean", hidden, batch.node_to_graph,
                    batch.num_graphs)


def make_batch(sizes, seed=0):
    rng = np.random.default_rng(seed)
    graphs = []
    for n in sizes:
        edges = (np.stack([np.arange(n - 1), np.arange(1, n)], axis=1)
                 if n > 1 else np.empty((0, 2), dtype=np.int64))
        graphs.append(Graph(n, edges, rng.normal(size=(n, NUM_FEATURES))))
    return GraphBatch(graphs)


@pytest.fixture
def module():
    return TinyEncoder(np.random.default_rng(0))


class TestCaptureReplay:
    def test_replay_bit_identical_to_eager(self, module):
        cache = PlanCache(4)
        for seed in range(4):
            batch = make_batch([3, 5, 2], seed=seed)
            expected = module.graph_embeddings(batch).data
            got = cache.run(module, module.graph_embeddings, batch)
            assert got.shape == expected.shape
            assert got.dtype == expected.dtype
            assert got.tobytes() == expected.tobytes()
        # seed 0 captured, seed 1 verified-then-replayed, 2 and 3 replayed.
        assert cache.counters["captures"] == 1
        assert cache.counters["misses"] == 1
        assert cache.counters["hits"] == 3
        assert cache.counters["replays"] == 3
        assert cache.counters["verify_failures"] == 0

    def test_param_updates_visible_without_recapture(self, module):
        """In-place optimizer-style updates must flow into replays."""
        cache = PlanCache(4)
        for seed in range(2):   # capture + verify
            cache.run(module, module.graph_embeddings,
                      make_batch([3, 5, 2], seed=seed))
        module.lin.weight.data += 0.25
        module.lin.bias.data -= 0.5
        batch = make_batch([3, 5, 2], seed=7)
        expected = module.graph_embeddings(batch).data
        got = cache.run(module, module.graph_embeddings, batch)
        assert got.tobytes() == expected.tobytes()
        assert cache.counters["captures"] == 1   # no re-capture happened

    def test_fused_and_reference_bucket_separately(self, module):
        cache = PlanCache(4)
        batch = make_batch([3, 5, 2])
        with fused_kernels(True):
            cache.run(module, module.graph_embeddings, batch)
        with fused_kernels(False):
            cache.run(module, module.graph_embeddings, batch)
        assert cache.counters["misses"] == 2
        assert cache.counters["captures"] == 2

    def test_capture_output_and_plan(self, module):
        batch = make_batch([3, 5, 2])
        out, plan = capture(module, module.graph_embeddings, batch)
        assert len(plan) > 0
        replayed = plan.replay(make_batch([3, 5, 2], seed=1))
        expected = module.graph_embeddings(
            make_batch([3, 5, 2], seed=1)).data
        assert replayed.tobytes() == expected.tobytes()
        assert out.data.shape == replayed.shape


class TestFallback:
    def test_uncapturable_forward_falls_back_to_eager(self, module):
        # __getitem__ has no replay kernel, so this forward cannot be
        # captured; the cache must tombstone the bucket and serve eagerly.
        def head(batch):
            return module.graph_embeddings(batch)[0:1]

        cache = PlanCache(4)
        for seed in range(3):
            batch = make_batch([3, 5, 2], seed=seed)
            expected = head(batch).data
            got = cache.run(module, head, batch)
            assert got.tobytes() == expected.tobytes()
        assert cache.counters["capture_failures"] == 1
        assert cache.counters["fallbacks"] == 2
        assert cache.counters["replays"] == 0
        assert cache.metrics()["plan.size"] == 0   # tombstones are not plans

    def test_capture_raises_with_eager_output_attached(self, module):
        batch = make_batch([3, 5, 2])
        with pytest.raises(PlanCaptureError) as excinfo:
            capture(module, lambda b: module.graph_embeddings(b)[0:1], batch)
        assert "no replay kernel" in str(excinfo.value)
        out = excinfo.value.args[1]
        assert isinstance(out, Tensor)

    def test_request_dependent_constant_fails_capture(self, module):
        # A tensor materialized from the batch without identity linkage is
        # neither input, param, slot, nor scalar: capture must refuse to
        # bake it in rather than replay stale request data.
        def leaky(batch):
            stale = Tensor(np.array(batch.x.sum(axis=0)[:3], copy=True))
            return module.graph_embeddings(batch) + stale

        with pytest.raises(PlanCaptureError, match="neither"):
            capture(module, leaky, make_batch([3, 5, 2]))


class TestCachePolicy:
    def test_lru_eviction(self, module):
        cache = PlanCache(1)
        a, b = [3, 5, 2], [4, 4]
        for _ in range(2):
            cache.run(module, module.graph_embeddings, make_batch(a))
            cache.run(module, module.graph_embeddings, make_batch(b))
        assert cache.counters["evictions"] >= 2
        assert cache.counters["captures"] >= 3   # re-captured after evict
        assert cache.metrics()["plan.size"] <= 1

    def test_zero_capacity_disables(self, module):
        cache = PlanCache(0)
        assert not cache.enabled
        batch = make_batch([3, 5, 2])
        expected = module.graph_embeddings(batch).data
        got = cache.run(module, module.graph_embeddings, batch)
        assert got.tobytes() == expected.tobytes()
        assert all(v == 0 for v in cache.counters.values())

    def test_capacity_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE", "7")
        assert PlanCache().capacity == 7
        monkeypatch.setenv("REPRO_PLAN_CACHE", "0")
        assert not PlanCache().enabled
        monkeypatch.setenv("REPRO_PLAN_CACHE", "not-a-number")
        assert PlanCache().capacity == DEFAULT_PLAN_CACHE_CAPACITY
        monkeypatch.delenv("REPRO_PLAN_CACHE")
        assert PlanCache().capacity == DEFAULT_PLAN_CACHE_CAPACITY
        assert PlanCache(5).capacity == 5   # explicit beats environment

    def test_metrics_are_plan_prefixed(self, module):
        cache = PlanCache(4)
        cache.run(module, module.graph_embeddings, make_batch([3, 5, 2]))
        metrics = cache.metrics()
        assert metrics["plan.captures"] == 1
        assert metrics["plan.size"] == 1
        assert metrics["plan.capacity"] == 4
        assert all(key.startswith("plan.") for key in metrics)

    def test_plan_cache_for_is_per_module(self):
        first = TinyEncoder(np.random.default_rng(0))
        second = TinyEncoder(np.random.default_rng(0))
        assert plan_cache_for(first) is plan_cache_for(first)
        assert plan_cache_for(first) is not plan_cache_for(second)
