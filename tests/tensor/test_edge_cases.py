"""Tensor edge cases: axes, scalars, nesting, error paths."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import (
    Tensor,
    concat,
    log_softmax,
    logsumexp,
    no_grad,
    softmax,
    spmm,
)

from ..gradcheck import assert_gradients_match


@pytest.fixture
def rng():
    return np.random.default_rng(19)


class TestAxes:
    def test_softmax_axis0(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        out = softmax(x, axis=0)
        np.testing.assert_allclose(out.data.sum(axis=0), 1.0, atol=1e-10)

    def test_log_softmax_axis0_gradient(self, rng):
        x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        assert_gradients_match(lambda: log_softmax(x, axis=0)[0].sum(), x)

    def test_logsumexp_negative_axis(self, rng):
        x = Tensor(rng.normal(size=(2, 5)))
        np.testing.assert_allclose(logsumexp(x, axis=-1).data,
                                   logsumexp(x, axis=1).data)

    def test_transpose_3d_axes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = x.transpose((2, 0, 1))
        assert out.shape == (4, 2, 3)
        assert_gradients_match(lambda: (x.transpose((2, 0, 1)) ** 2).sum(),
                               x)

    def test_sum_multiple_axes(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = x.sum(axis=(0, 2))
        assert out.shape == (3,)
        assert_gradients_match(lambda: (x.sum(axis=(0, 2)) ** 2).sum(), x)


class TestScalarsAndShapes:
    def test_zero_dim_tensor(self):
        t = Tensor(3.5)
        assert t.shape == ()
        assert (t * 2.0).item() == 7.0

    def test_scalar_backward(self):
        t = Tensor(2.0, requires_grad=True)
        (t * t).backward()
        np.testing.assert_allclose(t.grad, 4.0)

    def test_flatten(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        assert x.flatten().shape == (6,)
        assert_gradients_match(lambda: (x.flatten() ** 2).sum(), x)

    def test_concat_single_tensor(self, rng):
        x = Tensor(rng.normal(size=(2, 3)))
        np.testing.assert_array_equal(concat([x]).data, x.data)

    def test_size_property(self):
        assert Tensor(np.zeros((2, 5))).size == 10


class TestNoGradNesting:
    def test_nested_no_grad(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            with no_grad():
                y = x * 2.0
            z = x * 3.0
        assert not y.requires_grad and not z.requires_grad
        w = x * 4.0
        assert w.requires_grad

    def test_graph_built_inside_is_dead(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = (x * 2.0) + (x * 3.0)
        assert y._parents == ()


class TestSparse:
    def test_spmm_chain_gradient(self, rng):
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        m1 = sp.random(4, 4, density=0.5, random_state=0, format="csr")
        m2 = sp.random(4, 4, density=0.5, random_state=1, format="csr")
        assert_gradients_match(
            lambda: (spmm(m2, spmm(m1, x)) ** 2).sum(), x)

    def test_spmm_preserves_columns(self, rng):
        x = Tensor(rng.normal(size=(5, 7)))
        m = sp.identity(5, format="csr")
        np.testing.assert_allclose(spmm(m, x).data, x.data)


class TestMixedGraph:
    def test_partial_requires_grad_paths(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)))  # constant
        out = (a * b + b * b).sum()
        out.backward()
        np.testing.assert_allclose(a.grad, b.data)
        assert b.grad is None

    def test_backward_twice_through_fresh_graphs(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a * 2.0).sum().backward()
        first = a.grad.copy()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * first)
