"""Behaviour of the autograd engine itself: graph topology, modes, errors."""

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad

from ..gradcheck import assert_gradients_match


class TestGraphTopology:
    def test_diamond_graph(self):
        # x feeds two branches that rejoin: gradient must accumulate once per
        # path (d/dx of (x*x + x*x) = 4x).
        x = Tensor([3.0], requires_grad=True)
        a = x * x
        b = x * x
        (a + b).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_tensor_used_many_times(self):
        x = Tensor([2.0], requires_grad=True)
        out = x * x * x  # d/dx x^3 = 3 x^2
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_deep_chain(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(100):
            y = y + x
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [101.0])

    def test_deep_chain_numerical(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)

        def fn():
            y = x
            for _ in range(5):
                y = (y * 0.9).tanh() + x * 0.1
            return y.sum()

        assert_gradients_match(fn, x)

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestModesAndLeaves:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._parents == ()

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x * 3.0).detach() * x
        y.sum().backward()
        # Only the non-detached path contributes: d/dx (6 * x) = 6.
        np.testing.assert_allclose(x.grad, [6.0])

    def test_constant_inputs_get_no_grad(self):
        x = Tensor([1.0])
        y = x * 2.0
        assert not y.requires_grad
        assert y._backward is None

    def test_requires_grad_propagates(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0])
        assert (a + b).requires_grad
        assert not (b + b).requires_grad


class TestErrors:
    def test_backward_on_non_scalar_needs_seed(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            (x * 2.0).backward()

    def test_backward_seed_shape_checked(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with pytest.raises(ValueError, match="shape"):
            y.backward(np.ones(4))

    def test_explicit_seed(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 0.0, 2.0]))
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 4.0])

    def test_pow_rejects_tensor_exponent(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(TypeError):
            _ = x ** Tensor([2.0])


class TestGraphFreeing:
    def test_second_backward_raises(self):
        x = Tensor([3.0], requires_grad=True)
        loss = (x * x).sum()
        loss.backward()
        with pytest.raises(RuntimeError, match="retain_graph"):
            loss.backward()

    def test_retain_graph_allows_repeat(self):
        x = Tensor([3.0], requires_grad=True)
        loss = (x * x).sum()
        loss.backward(retain_graph=True)
        loss.backward(retain_graph=True)
        # Two sweeps of the same graph accumulate into the leaf.
        np.testing.assert_allclose(x.grad, [12.0])

    def test_backward_frees_interior_nodes(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x
        y.sum().backward()
        assert y._backward is None
        assert y._parents == ()

    def test_retain_graph_keeps_interior_nodes(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * x
        y.sum().backward(retain_graph=True)
        assert y._backward is not None
        assert y._parents != ()

    def test_interior_nodes_get_no_grad(self):
        # Gradients flow through interior nodes via the per-sweep dict;
        # only leaves materialize .grad.
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0
        z = y * y
        z.sum().backward()
        assert y.grad is None and z.grad is None
        np.testing.assert_allclose(x.grad, [36.0])

    def test_leaf_grad_not_aliased_to_sibling(self):
        # __add__ pushes the same upstream buffer to both parents; leaf
        # .grads must still be independent arrays.
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        a.grad[0] = 99.0
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_fresh_graph_after_freeing_works(self):
        x = Tensor([2.0], requires_grad=True)
        (x * x).sum().backward()
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])


class TestGetitemBackward:
    def test_slice_gradcheck(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(6, 4)), requires_grad=True)
        weights = Tensor(rng.normal(size=(2, 4)))
        assert_gradients_match(lambda: (x[1:5:2] * weights).sum(), x)

    def test_strided_slice_grad(self):
        x = Tensor(np.arange(8, dtype=np.float64), requires_grad=True)
        x[::3].sum().backward()
        np.testing.assert_allclose(x.grad, [1, 0, 0, 1, 0, 0, 1, 0])

    def test_duplicate_integer_indices_accumulate(self):
        # The direct-assignment fast path must not apply to fancy indices
        # with repeats — contributions have to add up.
        x = Tensor(np.arange(5, dtype=np.float64), requires_grad=True)
        x[np.array([0, 0, 3, 0])].sum().backward()
        np.testing.assert_allclose(x.grad, [3, 0, 0, 1, 0])

    def test_boolean_mask_grad(self):
        x = Tensor(np.arange(5, dtype=np.float64), requires_grad=True)
        mask = np.array([True, False, True, False, True])
        x[mask].sum().backward()
        np.testing.assert_allclose(x.grad, [1, 0, 1, 0, 1])


class TestDtypeAndViews:
    def test_data_is_float64(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64

    def test_from_tensor_copy_semantics(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data  # wrapping is cheap ...
        c = a.copy()
        c.data[0] = 99.0
        assert a.data[0] == 1.0  # ... but copy() is a real copy

    def test_item_and_len(self):
        assert Tensor([[4.0]]).item() == 4.0
        assert len(Tensor(np.zeros((5, 2)))) == 5
