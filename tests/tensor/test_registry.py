"""Op registry: dispatch policy, per-op equivalence, context isolation.

The equivalence classes iterate :func:`repro.tensor.op_names` and each
entry's ``example`` factory, so registering a new op automatically puts it
under forward-equivalence and finite-difference gradcheck for *both*
implementations — no per-kernel test to write.
"""

import threading

import numpy as np
import pytest

from repro.obs.engine_hooks import engine_stats
from repro.tensor import (
    Tensor,
    call,
    fused_kernels,
    get_op,
    is_grad_enabled,
    no_grad,
    op_impl,
    op_names,
    use_fused,
)
from repro.tensor import registry as registry_mod

from ..gradcheck import assert_gradients_match


def _cases():
    """(op name, example index) pairs for every registered op."""
    params = []
    for name in op_names():
        entry = get_op(name)
        assert entry.example is not None, f"op {name!r} lacks examples"
        for index in range(len(entry.example(np.random.default_rng(0)))):
            params.append((name, index))
    return params


def _case(name, index):
    """Fresh leaves for one example case (same data every call)."""
    return get_op(name).example(np.random.default_rng(0))[index]


def _leaves(args):
    return [a for a in args if isinstance(a, Tensor) and a.requires_grad]


def _scalarize(name, out):
    """Reduce a (possibly non-scalar) op output to a scalar objective."""
    if out.data.ndim == 0:
        return out
    weights = Tensor(np.random.default_rng(99).normal(size=out.data.shape))
    return (out * weights).sum()


class TestRegistryContract:
    def test_every_op_registered_with_fused_impl(self):
        assert set(op_names()) == {"gradient_features", "info_nce", "linear",
                                   "l2_normalize", "segment_mean"}
        for name in op_names():
            assert get_op(name).fused is not None

    def test_unknown_op_is_actionable(self):
        with pytest.raises(KeyError, match="registered"):
            call("no_such_op")

    def test_unknown_impl_rejected(self):
        x = Tensor(np.ones((2, 2)))
        with pytest.raises(ValueError, match="unknown impl"):
            call("l2_normalize", x, impl="vectorized")
        with pytest.raises(ValueError, match="unknown impl"):
            with op_impl("l2_normalize", "vectorized"):
                pass


class TestEquivalence:
    """reference == fused (forward + backward) on every registered example."""

    @pytest.mark.parametrize("name,index", _cases())
    def test_forward_backward_match(self, name, index):
        results = {}
        for which in ("reference", "fused"):
            args, kwargs = _case(name, index)
            leaves = _leaves(args)
            out = call(name, *args, impl=which, **kwargs)
            _scalarize(name, out).backward()
            results[which] = (np.copy(out.data), [t.grad for t in leaves])
        out_f, grads_f = results["fused"]
        out_r, grads_r = results["reference"]
        np.testing.assert_allclose(out_f, out_r, rtol=1e-9, atol=1e-9)
        assert len(grads_f) > 0
        for gf, gr in zip(grads_f, grads_r):
            np.testing.assert_allclose(gf, gr, rtol=1e-9, atol=1e-9)

    @pytest.mark.parametrize("which", ["reference", "fused"])
    @pytest.mark.parametrize("name,index", _cases())
    def test_gradcheck(self, name, index, which):
        args, kwargs = _case(name, index)
        leaves = _leaves(args)
        assert_gradients_match(
            lambda: _scalarize(name, call(name, *args, impl=which, **kwargs)),
            *leaves)


class TestDispatchPolicy:
    def test_dispatch_counters_keyed_by_op_and_impl(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 3)))
        with engine_stats() as engine:
            with fused_kernels(True):
                call("l2_normalize", x)
            with fused_kernels(False):
                call("l2_normalize", x)
        dispatch = engine.snapshot()["dispatch"]
        assert dispatch["l2_normalize.fused"] == 1
        assert dispatch["l2_normalize.reference"] == 1

    def test_op_impl_overrides_global_switch(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 3)))
        with engine_stats() as engine:
            with fused_kernels(True), op_impl("l2_normalize", "reference"):
                call("l2_normalize", x)
        assert engine.dispatch == {"l2_normalize.reference": 1}

    def test_explicit_impl_beats_op_impl(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 3)))
        with engine_stats() as engine:
            with op_impl("l2_normalize", "reference"):
                call("l2_normalize", x, impl="fused")
        assert engine.dispatch == {"l2_normalize.fused": 1}

    def test_env_variable_read_lazily(self, monkeypatch):
        """REPRO_FUSED set *after* import must still steer dispatch."""
        monkeypatch.setattr(registry_mod, "_PROCESS_FUSED", None)
        monkeypatch.setenv("REPRO_FUSED", "0")
        assert use_fused() is False
        monkeypatch.setenv("REPRO_FUSED", "1")
        assert use_fused() is True

    def test_set_fused_shadows_environment(self, monkeypatch):
        monkeypatch.setattr(registry_mod, "_PROCESS_FUSED", None)
        monkeypatch.setenv("REPRO_FUSED", "0")
        previous = registry_mod.set_fused(True)
        try:
            assert previous is False
            assert use_fused() is True
        finally:
            monkeypatch.setattr(registry_mod, "_PROCESS_FUSED", None)


class TestContextIsolation:
    """The fused switch and no_grad are context-local, not process-global."""

    def test_concurrent_opposite_fused_scopes(self):
        barrier = threading.Barrier(2, timeout=10)
        seen = {}

        def worker(flag):
            with fused_kernels(flag):
                barrier.wait()
                seen[flag] = use_fused()
                barrier.wait()

        threads = [threading.Thread(target=worker, args=(flag,))
                   for flag in (True, False)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert seen == {True: True, False: False}

    def test_main_thread_scope_invisible_to_workers(self):
        default = use_fused()
        seen = {}
        started = threading.Event()
        release = threading.Event()

        def worker():
            started.set()
            release.wait(timeout=10)
            seen["fused"] = use_fused()
            seen["grad"] = is_grad_enabled()

        thread = threading.Thread(target=worker)
        with fused_kernels(not default), no_grad():
            thread.start()
            started.wait(timeout=10)
            release.set()
            thread.join(timeout=10)
        assert seen["fused"] is default
        assert seen["grad"] is True

    def test_worker_scope_does_not_leak_back(self):
        default = use_fused()

        def worker():
            with fused_kernels(not default):
                assert use_fused() is (not default)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join(timeout=10)
        assert use_fused() is default
        assert is_grad_enabled() is True
