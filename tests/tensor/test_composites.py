"""Composite op correctness: softmax family and similarity kernels."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    cosine_similarity_matrix,
    dot_rows,
    l2_normalize,
    log_softmax,
    logsumexp,
    pairwise_sqdist,
    softmax,
)

from ..gradcheck import assert_gradients_match


@pytest.fixture
def rng():
    return np.random.default_rng(5)


def leaf(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        x = leaf(rng, 4, 6)
        out = softmax(x, axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0)

    def test_softmax_stability(self):
        out = softmax(Tensor([[1000.0, 1000.0, 999.0]]))
        assert np.isfinite(out.data).all()

    def test_softmax_gradient(self, rng):
        x = leaf(rng, 3, 4)
        w = rng.normal(size=(3, 4))
        assert_gradients_match(
            lambda: (softmax(x, axis=1) * Tensor(w)).sum(), x)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = leaf(rng, 3, 5)
        np.testing.assert_allclose(log_softmax(x).data,
                                   np.log(softmax(x).data), atol=1e-10)

    def test_log_softmax_gradient(self, rng):
        x = leaf(rng, 2, 5)
        assert_gradients_match(lambda: log_softmax(x)[:, 0].sum(), x)

    def test_logsumexp_value(self, rng):
        x = rng.normal(size=(3, 4))
        expected = np.log(np.exp(x).sum(axis=1))
        np.testing.assert_allclose(logsumexp(Tensor(x), axis=1).data, expected)

    def test_logsumexp_stability(self):
        out = logsumexp(Tensor([[1000.0, 999.0]]), axis=1)
        np.testing.assert_allclose(out.data, [1000.0 + np.log1p(np.exp(-1.0))])

    def test_logsumexp_gradient(self, rng):
        x = leaf(rng, 3, 4)
        assert_gradients_match(lambda: logsumexp(x, axis=1).sum(), x)

    def test_logsumexp_keepdims(self, rng):
        x = leaf(rng, 3, 4)
        assert logsumexp(x, axis=1, keepdims=True).shape == (3, 1)
        assert logsumexp(x, axis=1).shape == (3,)


class TestSimilarity:
    def test_l2_normalize_unit_rows(self, rng):
        x = leaf(rng, 4, 3)
        norms = np.linalg.norm(l2_normalize(x).data, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-8)

    def test_l2_normalize_zero_row_safe(self):
        out = l2_normalize(Tensor(np.zeros((1, 3))))
        assert np.isfinite(out.data).all()

    def test_l2_normalize_gradient(self, rng):
        x = leaf(rng, 3, 4)
        w = rng.normal(size=(3, 4))
        assert_gradients_match(
            lambda: (l2_normalize(x) * Tensor(w)).sum(), x)

    def test_cosine_matrix_diagonal(self, rng):
        x = Tensor(rng.normal(size=(5, 3)))
        sims = cosine_similarity_matrix(x, x)
        np.testing.assert_allclose(np.diag(sims.data), 1.0, atol=1e-8)
        assert (np.abs(sims.data) <= 1.0 + 1e-8).all()

    def test_cosine_matrix_gradient(self, rng):
        a, b = leaf(rng, 3, 4), leaf(rng, 2, 4)
        assert_gradients_match(
            lambda: cosine_similarity_matrix(a, b).sum(), a, b)

    def test_dot_rows(self, rng):
        a, b = leaf(rng, 4, 3), leaf(rng, 4, 3)
        np.testing.assert_allclose(dot_rows(a, b).data,
                                   (a.data * b.data).sum(axis=1))
        assert_gradients_match(lambda: (dot_rows(a, b) ** 2).sum(), a, b)

    def test_pairwise_sqdist_value(self, rng):
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(5, 3))
        out = pairwise_sqdist(Tensor(a), Tensor(b))
        expected = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_pairwise_sqdist_gradient(self, rng):
        a, b = leaf(rng, 3, 2), leaf(rng, 4, 2)
        assert_gradients_match(lambda: pairwise_sqdist(a, b).sum(), a, b)

    def test_pairwise_sqdist_nonnegative(self, rng):
        a = Tensor(rng.normal(size=(6, 3)))
        out = pairwise_sqdist(a, a)
        assert (out.data >= 0).all()
