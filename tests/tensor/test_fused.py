"""Fused kernels: float64 gradcheck and fused == reference equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import infonce_gradient_features
from repro.losses import info_nce
from repro.tensor import (
    Tensor,
    fused_gradient_features,
    fused_info_nce,
    fused_kernels,
    fused_l2_normalize,
    fused_linear,
    fused_segment_mean,
    l2_normalize,
    segment_mean,
    set_fused,
    use_fused,
)

from ..gradcheck import assert_gradients_match

# Hypothesis-heavy / end-to-end suite: deselected by CI tier (b)
# via -m 'not slow'; `make test-all` runs it.
pytestmark = pytest.mark.slow

RNG = np.random.default_rng(0)


def _views(n=5, d=4):
    return (RNG.normal(size=(n, d)), RNG.normal(size=(n, d)))


class TestFusedSwitch:
    def test_context_manager_restores(self):
        initial = use_fused()
        with fused_kernels(not initial):
            assert use_fused() is (not initial)
        assert use_fused() is initial

    def test_set_fused_returns_previous(self):
        initial = use_fused()
        assert set_fused(not initial) is initial
        assert set_fused(initial) is (not initial)


# Gradcheck settings per dtype: float32 needs a coarser finite-difference
# step and correspondingly looser tolerances.
GRADCHECK_TOLS = {
    np.float64: dict(),
    np.float32: dict(eps=1e-2, atol=5e-3, rtol=5e-2),
}


class TestFusedGradcheck:
    """Finite-difference gradcheck (float64 tight, float32 loose) for every
    fused kernel."""

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("sim", ["cos", "dot", "euclid"])
    @pytest.mark.parametrize("symmetric", [True, False])
    def test_info_nce(self, sim, symmetric, dtype):
        u_np, v_np = _views()
        u = Tensor(u_np, requires_grad=True, dtype=dtype)
        v = Tensor(v_np, requires_grad=True, dtype=dtype)
        assert_gradients_match(
            lambda: fused_info_nce(u, v, tau=0.7, sim=sim,
                                   symmetric=symmetric), u, v,
            **GRADCHECK_TOLS[dtype])

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_gradient_features(self, dtype):
        u_np, v_np = _views()
        u = Tensor(u_np, requires_grad=True, dtype=dtype)
        v = Tensor(v_np, requires_grad=True, dtype=dtype)
        weights = Tensor(RNG.normal(size=u_np.shape), dtype=dtype)
        assert_gradients_match(
            lambda: (fused_gradient_features(u, v, tau=0.5) * weights).sum(),
            u, v, **GRADCHECK_TOLS[dtype])

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("bias", [True, False])
    @pytest.mark.parametrize("activation", [None, "relu"])
    def test_linear(self, bias, activation, dtype):
        x = Tensor(RNG.normal(size=(6, 4)), requires_grad=True, dtype=dtype)
        w = Tensor(RNG.normal(size=(4, 3)), requires_grad=True, dtype=dtype)
        b = (Tensor(RNG.normal(size=3), requires_grad=True, dtype=dtype)
             if bias else None)
        weights = Tensor(RNG.normal(size=(6, 3)), dtype=dtype)
        leaves = [x, w] + ([b] if bias else [])
        assert_gradients_match(
            lambda: (fused_linear(x, w, b, activation=activation)
                     * weights).sum(), *leaves, **GRADCHECK_TOLS[dtype])

    def test_l2_normalize(self):
        x = Tensor(RNG.normal(size=(5, 4)) + 0.5, requires_grad=True)
        weights = Tensor(RNG.normal(size=(5, 4)))
        assert_gradients_match(
            lambda: (fused_l2_normalize(x) * weights).sum(), x)

    @pytest.mark.parametrize("ids", [[0, 0, 1, 2, 2, 2],  # sorted
                                     [2, 0, 1, 0, 2, 3]])  # unsorted
    def test_segment_mean(self, ids):
        ids = np.asarray(ids)
        x = Tensor(RNG.normal(size=(6, 3)), requires_grad=True)
        weights = Tensor(RNG.normal(size=(5, 3)))
        assert_gradients_match(
            lambda: (fused_segment_mean(x, ids, 5) * weights).sum(), x)


def _float32_leaves(*arrays):
    # Leaf creation follows the dtype policy (default float64), so float32
    # has to be requested explicitly.
    return [Tensor(a, requires_grad=True, dtype=np.float32) for a in arrays]


class TestFusedMatchesReferenceFloat32:
    """Fused forward/backward == unfused composition within 1e-5 relative."""

    RTOL = 1e-5

    def _compare(self, build, *arrays):
        results = {}
        for flag in (True, False):
            leaves = _float32_leaves(*arrays)
            with fused_kernels(flag):
                out = build(*leaves)
            out.backward()
            results[flag] = (out.data.copy(), [t.grad for t in leaves])
        out_f, grads_f = results[True]
        out_r, grads_r = results[False]
        np.testing.assert_allclose(out_f, out_r, rtol=self.RTOL,
                                   atol=self.RTOL)
        for gf, gr in zip(grads_f, grads_r):
            assert gf.dtype == np.float32 and gr.dtype == np.float32
            scale = max(np.abs(gr).max(), 1e-6)
            np.testing.assert_allclose(gf / scale, gr / scale,
                                       atol=self.RTOL)

    @pytest.mark.parametrize("sim", ["cos", "dot", "euclid"])
    def test_info_nce(self, sim):
        u, v = _views(8, 6)
        self._compare(lambda a, b: info_nce(a, b, tau=0.5, sim=sim), u, v)

    @pytest.mark.parametrize("sim", ["cos", "dot"])
    def test_gradient_features(self, sim):
        u, v = _views(8, 6)

        def build(a, b):
            g, gp = infonce_gradient_features(a, b, tau=0.5, sim=sim)
            return (g * g).sum() + (gp * 1.5).sum()

        self._compare(build, u, v)

    def test_l2_normalize(self):
        x = RNG.normal(size=(8, 6)) + 0.3
        weights = Tensor(RNG.normal(size=(8, 6)), dtype=np.float32)

        def build(t):
            norm = fused_l2_normalize(t) if use_fused() else l2_normalize(t)
            return (norm * weights).sum()

        self._compare(build, x)

    def test_segment_mean(self):
        ids = np.array([0, 0, 1, 1, 1, 3, 3, 4])
        x = RNG.normal(size=(8, 6))

        def build(t):
            pooled = (fused_segment_mean(t, ids, 5) if use_fused()
                      else segment_mean(t, ids, 5))
            return (pooled * pooled).sum()

        self._compare(build, x)


finite = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                   allow_infinity=False, width=64)


def view_pairs(min_n=2, max_n=6, min_d=2, max_d=5):
    return st.tuples(st.integers(min_n, max_n),
                     st.integers(min_d, max_d)).flatmap(
        lambda shape: st.tuples(arrays(np.float64, shape, elements=finite),
                                arrays(np.float64, shape, elements=finite)))


class TestFusedProperties:
    """Hypothesis: fused == unfused over random shapes and values."""

    @settings(max_examples=25, deadline=None)
    @given(view_pairs())
    def test_info_nce_forward_backward(self, pair):
        u_np, v_np = pair
        outs, grads = [], []
        for flag in (True, False):
            u = Tensor(u_np, requires_grad=True)
            v = Tensor(v_np, requires_grad=True)
            with fused_kernels(flag):
                loss = info_nce(u, v, tau=0.7, sim="cos")
            loss.backward()
            outs.append(loss.item())
            grads.append((u.grad, v.grad))
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-9, atol=1e-9)
        for gf, gr in zip(grads[0], grads[1]):
            np.testing.assert_allclose(gf, gr, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(view_pairs())
    def test_gradient_features_forward(self, pair):
        u_np, v_np = pair
        results = []
        for flag in (True, False):
            with fused_kernels(flag):
                g, gp = infonce_gradient_features(Tensor(u_np), Tensor(v_np),
                                                  tau=0.5, sim="dot")
            results.append((g.data, gp.data))
        for a, b in zip(results[0], results[1]):
            np.testing.assert_allclose(a, b, atol=1e-9)
