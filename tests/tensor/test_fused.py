"""Fused kernels: switch semantics plus hypothesis fused == unfused.

Per-kernel gradcheck and float32 fused-vs-reference equivalence moved to
``tests/tensor/test_registry.py``, which iterates the op registry so every
registered op is covered automatically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import infonce_gradient_features
from repro.losses import info_nce
from repro.tensor import Tensor, fused_kernels, set_fused, use_fused

# Hypothesis-heavy / end-to-end suite: deselected by CI tier (b)
# via -m 'not slow'; `make test-all` runs it.
pytestmark = pytest.mark.slow


class TestFusedSwitch:
    def test_context_manager_restores(self):
        initial = use_fused()
        with fused_kernels(not initial):
            assert use_fused() is (not initial)
        assert use_fused() is initial

    def test_set_fused_returns_previous(self):
        initial = use_fused()
        assert set_fused(not initial) is initial
        assert set_fused(initial) is (not initial)

    def test_deprecated_fused_module_shims_delegate(self):
        """repro.tensor.fused re-exports must hit the registry policy."""
        from repro.tensor import fused as fused_mod

        initial = use_fused()
        with fused_mod.fused_kernels(not initial):
            assert use_fused() is (not initial)
            assert fused_mod.use_fused() is (not initial)
        assert fused_mod.use_fused() is initial


finite = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                   allow_infinity=False, width=64)


def view_pairs(min_n=2, max_n=6, min_d=2, max_d=5):
    return st.tuples(st.integers(min_n, max_n),
                     st.integers(min_d, max_d)).flatmap(
        lambda shape: st.tuples(arrays(np.float64, shape, elements=finite),
                                arrays(np.float64, shape, elements=finite)))


class TestFusedProperties:
    """Hypothesis: fused == unfused over random shapes and values."""

    @settings(max_examples=25, deadline=None)
    @given(view_pairs())
    def test_info_nce_forward_backward(self, pair):
        u_np, v_np = pair
        outs, grads = [], []
        for flag in (True, False):
            u = Tensor(u_np, requires_grad=True)
            v = Tensor(v_np, requires_grad=True)
            with fused_kernels(flag):
                loss = info_nce(u, v, tau=0.7, sim="cos")
            loss.backward()
            outs.append(loss.item())
            grads.append((u.grad, v.grad))
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-9, atol=1e-9)
        for gf, gr in zip(grads[0], grads[1]):
            np.testing.assert_allclose(gf, gr, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(view_pairs())
    def test_gradient_features_forward(self, pair):
        u_np, v_np = pair
        results = []
        for flag in (True, False):
            with fused_kernels(flag):
                g, gp = infonce_gradient_features(Tensor(u_np), Tensor(v_np),
                                                  tau=0.5, sim="dot")
            results.append((g.data, gp.data))
        for a, b in zip(results[0], results[1]):
            np.testing.assert_allclose(a, b, atol=1e-9)
