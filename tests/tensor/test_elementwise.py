"""Gradient correctness of elementwise nonlinearities and reductions."""

import numpy as np
import pytest

from repro.tensor import Tensor

from ..gradcheck import assert_gradients_match


@pytest.fixture
def rng():
    return np.random.default_rng(11)


def leaf(rng, *shape, low=None, high=None):
    if low is not None:
        data = rng.uniform(low, high, size=shape)
    else:
        data = rng.normal(size=shape)
    return Tensor(data, requires_grad=True)


class TestElementwise:
    def test_exp(self, rng):
        a = leaf(rng, 3, 2)
        assert_gradients_match(lambda: a.exp().sum(), a)

    def test_log(self, rng):
        a = leaf(rng, 4, low=0.5, high=3.0)
        assert_gradients_match(lambda: a.log().sum(), a)

    def test_sqrt(self, rng):
        a = leaf(rng, 4, low=0.5, high=3.0)
        assert_gradients_match(lambda: a.sqrt().sum(), a)

    def test_tanh(self, rng):
        a = leaf(rng, 5)
        assert_gradients_match(lambda: a.tanh().sum(), a)

    def test_sigmoid(self, rng):
        a = leaf(rng, 5)
        assert_gradients_match(lambda: a.sigmoid().sum(), a)

    def test_relu(self, rng):
        # Keep values away from the kink for a clean finite-difference check.
        a = Tensor(rng.choice([-1.5, -0.7, 0.8, 1.9], size=(4, 3)),
                   requires_grad=True)
        assert_gradients_match(lambda: a.relu().sum(), a)

    def test_leaky_relu(self, rng):
        a = Tensor(rng.choice([-2.0, -1.0, 1.0, 2.0], size=(6,)),
                   requires_grad=True)
        assert_gradients_match(lambda: a.leaky_relu(0.1).sum(), a)

    def test_softplus(self, rng):
        a = leaf(rng, 5)
        assert_gradients_match(lambda: a.softplus().sum(), a)

    def test_softplus_stability(self):
        out = Tensor([800.0, -800.0]).softplus()
        assert np.isfinite(out.data).all()
        np.testing.assert_allclose(out.data[0], 800.0)

    def test_abs(self, rng):
        a = Tensor(rng.choice([-2.0, -1.0, 1.0, 2.0], size=(5,)),
                   requires_grad=True)
        assert_gradients_match(lambda: a.abs().sum(), a)

    def test_clip(self, rng):
        a = Tensor(np.array([-2.0, -0.5, 0.5, 2.0]), requires_grad=True)
        weights = Tensor(np.array([1.0, -2.0, 3.0, 0.5]))
        assert_gradients_match(lambda: (a.clip(-1.0, 1.0) * weights).sum(), a)
        np.testing.assert_allclose(a.clip(-1.0, 1.0).data,
                                   [-1.0, -0.5, 0.5, 1.0])

    def test_sigmoid_extremes_finite(self):
        out = Tensor([500.0, -500.0]).sigmoid()
        assert np.isfinite(out.data).all()


class TestReductions:
    def test_sum_all(self, rng):
        a = leaf(rng, 3, 4)
        assert_gradients_match(lambda: a.sum(), a)

    def test_sum_axis(self, rng):
        a = leaf(rng, 3, 4)
        assert_gradients_match(lambda: (a.sum(axis=0) ** 2).sum(), a)
        assert_gradients_match(lambda: (a.sum(axis=1) ** 2).sum(), a)

    def test_sum_keepdims(self, rng):
        a = leaf(rng, 3, 4)
        assert_gradients_match(
            lambda: (a - a.sum(axis=1, keepdims=True)).sum(), a)

    def test_mean(self, rng):
        a = leaf(rng, 3, 4)
        assert_gradients_match(lambda: (a.mean(axis=0) ** 2).sum(), a)
        np.testing.assert_allclose(a.mean().item(), a.data.mean())

    def test_max(self, rng):
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(float),
                   requires_grad=True)
        assert_gradients_match(lambda: a.max(axis=1).sum(), a)
        assert_gradients_match(lambda: a.max() * 2.0, a)

    def test_max_tie_splitting(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_min(self, rng):
        a = Tensor(rng.permutation(8).reshape(2, 4).astype(float),
                   requires_grad=True)
        np.testing.assert_allclose(a.min(axis=1).data, a.data.min(axis=1))
        assert_gradients_match(lambda: a.min(axis=1).sum(), a)

    def test_var(self, rng):
        a = leaf(rng, 5, 3)
        np.testing.assert_allclose(a.var(axis=0).data, a.data.var(axis=0))
        assert_gradients_match(lambda: a.var(axis=0).sum(), a)
