"""Dtype policy: set_default_dtype / autocast and float32 training flows."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    autocast,
    get_default_dtype,
    set_default_dtype,
)


class TestDefaultDtype:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert Tensor([1, 2, 3]).data.dtype == np.float64

    def test_set_default_dtype_returns_previous(self):
        previous = set_default_dtype(np.float32)
        try:
            assert previous == np.float64
            assert get_default_dtype() == np.float32
            assert Tensor([1.0]).data.dtype == np.float32
        finally:
            set_default_dtype(previous)
        assert get_default_dtype() == np.float64

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)

    def test_explicit_dtype_overrides_default(self):
        assert Tensor([1.0], dtype=np.float32).data.dtype == np.float32


class TestAutocast:
    def test_restores_on_exit(self):
        with autocast("float32"):
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with autocast("float32"):
                raise RuntimeError("boom")
        assert get_default_dtype() == np.float64

    def test_float32_graph_stays_float32(self):
        rng = np.random.default_rng(0)
        with autocast("float32"):
            a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
            b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
            # Mixed tensor/scalar arithmetic must not promote to float64.
            loss = (((a @ b) + 1.0).relu() * 2.0 / 3.0 - 0.1).sum()
            assert loss.data.dtype == np.float32
            loss.backward()
        assert a.grad.dtype == np.float32
        assert b.grad.dtype == np.float32

    def test_float32_softmax_ops_stay_float32(self):
        from repro.tensor import log_softmax, softmax

        with autocast("float32"):
            x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
            assert softmax(x, axis=1).data.dtype == np.float32
            assert log_softmax(x, axis=1).data.dtype == np.float32

    def test_float64_tensors_unaffected_inside_autocast(self):
        x = Tensor([1.0, 2.0])
        with autocast("float32"):
            # Interior nodes keep the dtype of their inputs; autocast only
            # governs leaf creation.
            assert (x * 2.0).data.dtype == np.float64


class TestModelDtype:
    def test_parameters_and_grads_follow_autocast(self):
        from repro.nn import Linear

        with autocast("float32"):
            layer = Linear(4, 3, rng=np.random.default_rng(0))
            assert layer.weight.data.dtype == np.float32
            out = layer(Tensor(np.ones((2, 4))))
            assert out.data.dtype == np.float32
            out.sum().backward()
            assert layer.weight.grad.dtype == np.float32

    def test_training_step_float32(self):
        from repro.nn import Adam, Linear

        with autocast("float32"):
            rng = np.random.default_rng(0)
            layer = Linear(4, 2, rng=rng)
            optimizer = Adam(layer.parameters(), lr=1e-2)
            loss = (layer(Tensor(rng.normal(size=(5, 4)))) ** 2).sum()
            loss.backward()
            optimizer.step()
            assert layer.weight.data.dtype == np.float32
