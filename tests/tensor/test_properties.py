"""Property-based tests (hypothesis) for tensor algebra invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.tensor import Tensor, l2_normalize, logsumexp, softmax
import pytest

# Hypothesis-heavy / end-to-end suite: deselected by CI tier (b)
# via -m 'not slow'; `make test-all` runs it.
pytestmark = pytest.mark.slow

finite = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False,
                   allow_infinity=False, width=64)


def matrices(rows=st.integers(1, 5), cols=st.integers(1, 5)):
    return st.tuples(rows, cols).flatmap(
        lambda shape: arrays(np.float64, shape, elements=finite))


@settings(max_examples=40, deadline=None)
@given(matrices())
def test_add_commutative(a):
    x = Tensor(a)
    np.testing.assert_allclose((x + x * 2.0).data, (x * 2.0 + x).data)


@settings(max_examples=40, deadline=None)
@given(matrices())
def test_double_negation(a):
    x = Tensor(a)
    np.testing.assert_allclose((-(-x)).data, a)


@settings(max_examples=40, deadline=None)
@given(matrices())
def test_sum_axis_decomposition(a):
    x = Tensor(a)
    np.testing.assert_allclose(x.sum().item(),
                               x.sum(axis=0).sum().item(), atol=1e-8)


@settings(max_examples=40, deadline=None)
@given(matrices())
def test_softmax_is_distribution(a):
    out = softmax(Tensor(a), axis=1).data
    assert (out >= 0).all()
    np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(matrices())
def test_softmax_shift_invariance(a):
    base = softmax(Tensor(a), axis=1).data
    shifted = softmax(Tensor(a + 3.7), axis=1).data
    np.testing.assert_allclose(base, shifted, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(matrices())
def test_logsumexp_bounds(a):
    # max <= logsumexp <= max + log(n)
    out = logsumexp(Tensor(a), axis=1).data
    row_max = a.max(axis=1)
    assert (out >= row_max - 1e-9).all()
    assert (out <= row_max + np.log(a.shape[1]) + 1e-9).all()


@settings(max_examples=40, deadline=None)
@given(matrices())
def test_l2_normalize_idempotent(a):
    assume((np.linalg.norm(a, axis=1) > 1e-3).all())
    once = l2_normalize(Tensor(a)).data
    twice = l2_normalize(Tensor(once)).data
    np.testing.assert_allclose(once, twice, atol=1e-6)


@settings(max_examples=40, deadline=None)
@given(matrices(), finite)
def test_linearity_of_backward(a, scale):
    # grad of (c * sum(x)) is c everywhere.
    x = Tensor(a, requires_grad=True)
    (x.sum() * scale).backward()
    np.testing.assert_allclose(x.grad, np.full_like(a, scale), atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(matrices())
def test_matmul_transpose_identity(a):
    x = Tensor(a)
    gram = (x @ x.T).data
    np.testing.assert_allclose(gram, gram.T, atol=1e-8)
