"""Gradients and values for structured ops: spmm, segments, gather, shapes."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import (
    Tensor,
    concat,
    gather_rows,
    segment_max,
    segment_mean,
    segment_sum,
    spmm,
    stack,
    where,
)

from ..gradcheck import assert_gradients_match


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def leaf(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestSpmm:
    def test_forward(self, rng):
        dense = rng.normal(size=(5, 3))
        matrix = sp.random(4, 5, density=0.5, random_state=1, format="csr")
        out = spmm(matrix, Tensor(dense))
        np.testing.assert_allclose(out.data, matrix @ dense)

    def test_gradient(self, rng):
        x = leaf(rng, 5, 3)
        matrix = sp.random(4, 5, density=0.6, random_state=2, format="csr")
        assert_gradients_match(lambda: (spmm(matrix, x) ** 2).sum(), x)

    def test_empty_matrix(self, rng):
        x = leaf(rng, 3, 2)
        matrix = sp.csr_matrix((3, 3))
        out = spmm(matrix, x)
        np.testing.assert_allclose(out.data, 0.0)


class TestSegments:
    def test_segment_sum_forward(self):
        values = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        ids = np.array([0, 0, 1, 1])
        out = segment_sum(values, ids, 2)
        np.testing.assert_allclose(out.data, [[2.0, 4.0], [10.0, 12.0]])

    def test_segment_sum_gradient(self, rng):
        x = leaf(rng, 6, 3)
        ids = np.array([0, 1, 0, 2, 2, 1])
        assert_gradients_match(
            lambda: (segment_sum(x, ids, 3) ** 2).sum(), x)

    def test_segment_mean_forward(self):
        values = Tensor(np.array([[2.0], [4.0], [9.0]]))
        out = segment_mean(values, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0], [9.0]])

    def test_segment_mean_empty_segment(self):
        values = Tensor(np.array([[2.0], [4.0]]))
        out = segment_mean(values, np.array([0, 0]), 3)
        np.testing.assert_allclose(out.data, [[3.0], [0.0], [0.0]])

    def test_segment_mean_gradient(self, rng):
        x = leaf(rng, 5, 2)
        ids = np.array([0, 1, 1, 0, 1])
        assert_gradients_match(
            lambda: (segment_mean(x, ids, 2) ** 2).sum(), x)

    def test_segment_max_forward(self):
        values = Tensor(np.array([[1.0, 5.0], [3.0, 2.0], [0.0, 7.0]]))
        out = segment_max(values, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out.data, [[3.0, 5.0], [0.0, 7.0]])

    def test_segment_max_gradient(self, rng):
        x = Tensor(rng.permutation(10).reshape(5, 2).astype(float),
                   requires_grad=True)
        ids = np.array([0, 0, 1, 1, 1])
        assert_gradients_match(lambda: segment_max(x, ids, 2).sum(), x)

    def test_segment_sum_unordered_ids(self, rng):
        # Segment ids need not be sorted or contiguous in appearance order.
        x = leaf(rng, 4, 2)
        ids = np.array([2, 0, 2, 1])
        out = segment_sum(x, ids, 3)
        np.testing.assert_allclose(out.data[0], x.data[1])
        np.testing.assert_allclose(out.data[2], x.data[0] + x.data[2])


class TestGatherAndShape:
    def test_gather_rows(self, rng):
        x = leaf(rng, 4, 3)
        idx = np.array([0, 2, 2, 3])
        out = gather_rows(x, idx)
        np.testing.assert_allclose(out.data, x.data[idx])
        assert_gradients_match(lambda: (gather_rows(x, idx) ** 2).sum(), x)

    def test_getitem_slice(self, rng):
        x = leaf(rng, 5, 3)
        assert_gradients_match(lambda: (x[1:4] ** 2).sum(), x)

    def test_getitem_int_array(self, rng):
        x = leaf(rng, 5, 3)
        idx = np.array([0, 0, 4])
        assert_gradients_match(lambda: (x[idx] ** 2).sum(), x)

    def test_reshape(self, rng):
        x = leaf(rng, 6)
        assert_gradients_match(lambda: (x.reshape(2, 3) ** 2).sum(), x)

    def test_transpose(self, rng):
        x = leaf(rng, 2, 3)
        np.testing.assert_allclose(x.T.data, x.data.T)
        assert_gradients_match(lambda: (x.T @ x).sum(), x)

    def test_concat(self, rng):
        a, b = leaf(rng, 2, 3), leaf(rng, 4, 3)
        out = concat([a, b], axis=0)
        assert out.shape == (6, 3)
        assert_gradients_match(
            lambda: (concat([a, b], axis=0) ** 2).sum(), a, b)

    def test_concat_axis1(self, rng):
        a, b = leaf(rng, 2, 3), leaf(rng, 2, 1)
        assert_gradients_match(
            lambda: (concat([a, b], axis=1) ** 2).sum(), a, b)

    def test_stack(self, rng):
        a, b = leaf(rng, 3), leaf(rng, 3)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        assert_gradients_match(lambda: (stack([a, b]) ** 2).sum(), a, b)

    def test_where(self, rng):
        a, b = leaf(rng, 4), leaf(rng, 4)
        mask = np.array([True, False, True, False])
        out = where(mask, a, b)
        np.testing.assert_allclose(out.data, np.where(mask, a.data, b.data))
        assert_gradients_match(lambda: (where(mask, a, b) ** 2).sum(), a, b)
