"""Gradient correctness of broadcasting arithmetic primitives."""

import numpy as np
import pytest

from repro.tensor import Tensor

from ..gradcheck import assert_gradients_match


@pytest.fixture
def rng():
    return np.random.default_rng(7)


def leaf(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestForwardValues:
    def test_add(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_scalar_promotion(self):
        out = Tensor([1.0, 2.0]) + 1.5
        np.testing.assert_allclose(out.data, [2.5, 3.5])

    def test_reverse_ops(self):
        t = Tensor([2.0, 4.0])
        np.testing.assert_allclose((10.0 - t).data, [8.0, 6.0])
        np.testing.assert_allclose((8.0 / t).data, [4.0, 2.0])
        np.testing.assert_allclose((3.0 * t).data, [6.0, 12.0])
        np.testing.assert_allclose((1.0 + t).data, [3.0, 5.0])

    def test_pow(self):
        out = Tensor([2.0, 3.0]) ** 2
        np.testing.assert_allclose(out.data, [4.0, 9.0])

    def test_broadcast_shapes(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(4,)))
        assert (a + b).shape == (3, 4)
        assert (a * b).shape == (3, 4)
        c = Tensor(rng.normal(size=(3, 1)))
        assert (a - c).shape == (3, 4)


class TestGradients:
    def test_add_same_shape(self, rng):
        a, b = leaf(rng, 3, 2), leaf(rng, 3, 2)
        assert_gradients_match(lambda: (a + b).sum(), a, b)

    def test_add_broadcast_row(self, rng):
        a, b = leaf(rng, 3, 4), leaf(rng, 4)
        assert_gradients_match(lambda: ((a + b) * (a + b)).sum(), a, b)

    def test_add_broadcast_column(self, rng):
        a, b = leaf(rng, 3, 4), leaf(rng, 3, 1)
        assert_gradients_match(lambda: ((a + b) ** 2).sum(), a, b)

    def test_sub(self, rng):
        a, b = leaf(rng, 2, 5), leaf(rng, 5)
        assert_gradients_match(lambda: ((a - b) ** 2).sum(), a, b)

    def test_mul_broadcast(self, rng):
        a, b = leaf(rng, 4, 3), leaf(rng, 1, 3)
        assert_gradients_match(lambda: (a * b).sum(), a, b)

    def test_div(self, rng):
        a = leaf(rng, 3, 3)
        b = Tensor(rng.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        assert_gradients_match(lambda: (a / b).sum(), a, b)

    def test_neg(self, rng):
        a = leaf(rng, 4)
        assert_gradients_match(lambda: (-a * -a).sum(), a)

    def test_pow_gradient(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        assert_gradients_match(lambda: (a ** 3).sum(), a)

    def test_scalar_mix(self, rng):
        a = leaf(rng, 5)
        assert_gradients_match(lambda: (2.0 * a + 1.0).sum(), a)

    def test_rsub_rdiv(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        assert_gradients_match(lambda: (1.0 / a + (3.0 - a)).sum(), a)

    def test_chained_expression(self, rng):
        a, b = leaf(rng, 3, 3), leaf(rng, 3, 3)
        assert_gradients_match(
            lambda: ((a * b + a - b) / (b * b + 2.0)).sum(), a, b)


class TestMatmul:
    def test_matrix_matrix(self, rng):
        a, b = leaf(rng, 3, 4), leaf(rng, 4, 2)
        assert_gradients_match(lambda: (a @ b).sum(), a, b)

    def test_matrix_vector(self, rng):
        a, v = leaf(rng, 3, 4), leaf(rng, 4)
        assert_gradients_match(lambda: ((a @ v) ** 2).sum(), a, v)

    def test_vector_matrix(self, rng):
        v, a = leaf(rng, 3), leaf(rng, 3, 4)
        assert_gradients_match(lambda: ((v @ a) ** 2).sum(), v, a)

    def test_vector_vector(self, rng):
        u, v = leaf(rng, 5), leaf(rng, 5)
        assert_gradients_match(lambda: (u @ v) * (u @ v), u, v)

    def test_forward_value(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(3, 2))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)
