"""The benchmark harness itself: scaling config and report plumbing."""

import importlib

import pytest

import benchmarks.common as common


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    yield


class TestConfig:
    def test_default_is_bench(self):
        cfg = common.config()
        assert cfg.dataset_scale == "tiny"
        assert cfg.seeds == (0,)
        assert not common.full_grid()

    def test_small_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        cfg = common.config()
        assert cfg.dataset_scale == "small"
        assert len(cfg.seeds) == 3
        assert common.full_grid()

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(ValueError):
            common.config()


class TestReport:
    def test_writes_file_and_registers(self, tmp_path, monkeypatch):
        monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
        before = len(common.REPORTS)
        common.report("unit-test", "A title", ["H1", "H2"],
                      [["a", 1], ["b", 2]], note="note line")
        assert len(common.REPORTS) == before + 1
        text = (tmp_path / "unit-test.txt").read_text()
        assert "A title" in text
        assert "note line" in text
        assert "a" in text and "b" in text
        common.REPORTS.pop()


class TestBuilders:
    def test_graph_variant_wraps_when_weighted(self):
        from repro.core import GradGCLObjective
        from repro.datasets import load_tu_dataset
        from repro.methods import GraphCL

        ds = load_tu_dataset("MUTAG", scale="tiny", seed=0)
        base = common.build_graph_variant(GraphCL, ds, 0.0, seed=0)
        assert not isinstance(base.objective, GradGCLObjective)
        wrapped = common.build_graph_variant(GraphCL, ds, 0.5, seed=0)
        assert isinstance(wrapped.objective, GradGCLObjective)
        assert wrapped.objective.weight == 0.5

    def test_node_variant_handles_mvgrl(self):
        from repro.datasets import load_node_dataset
        from repro.methods import MVGRLNode

        ds = load_node_dataset("Cora", scale="tiny", seed=0)
        method = common.build_node_variant(MVGRLNode, ds, 0.5, seed=0)
        from repro.core import GradGCLObjective

        assert isinstance(method.objective, GradGCLObjective)
