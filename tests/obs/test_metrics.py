"""Unit tests for the metric registry instruments."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricRegistry


class TestCounter:
    def test_increments(self):
        c = Counter("batches")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.snapshot() == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("batches").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("loss")
        g.set(2.5)
        g.set(1.25)
        assert g.snapshot() == 1.25

    def test_unset_snapshot_is_none(self):
        assert Gauge("loss").snapshot() is None


class TestHistogram:
    def test_statistics_match_lap_statistics(self):
        h = Histogram("epoch_seconds")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        stats = h.statistics()
        assert stats.count == 4
        assert stats.total == 10.0
        assert stats.mean == 2.5
        assert stats.p50 == 2.5

    def test_reservoir_bounds_memory_but_keeps_aggregates(self):
        h = Histogram("steps", max_samples=16)
        for i in range(1000):
            h.observe(float(i))
        assert len(h._reservoir) == 16
        snap = h.snapshot()
        assert snap["count"] == 1000
        assert snap["total"] == sum(range(1000))
        # The reservoir is a sample of the stream, so percentiles stay in
        # range even though only 16 values are retained.
        assert 0.0 <= snap["p50"] <= 999.0

    def test_empty_statistics_raises(self):
        with pytest.raises(ValueError):
            Histogram("empty").statistics()

    def test_empty_snapshot_is_null(self):
        assert Histogram("empty").snapshot()["count"] == 0


class TestMetricRegistry:
    def test_instruments_are_reused_by_name(self):
        reg = MetricRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 2

    def test_kind_mismatch_is_an_error(self):
        reg = MetricRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a").set(0.5)
        reg.histogram("c").observe(1.0)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b", "c"]
        assert snap["a"] == 0.5
        assert snap["b"] == 2
        assert snap["c"]["count"] == 1

    def test_reset_clears(self):
        reg = MetricRegistry()
        reg.counter("x")
        reg.reset()
        assert "x" not in reg
