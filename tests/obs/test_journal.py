"""Journal schema round-trip and validation tests."""

import json

import numpy as np
import pytest

from repro.obs import (
    EVENT_TYPES,
    RunJournal,
    engine_stats,
    events_of,
    read_journal,
    validate_journal,
)


def _fixed_clock():
    return 0.0


class TestRoundTrip:
    def test_events_parse_back_in_order(self, tmp_path):
        with RunJournal(tmp_path, clock=_fixed_clock) as journal:
            journal.log("config", epochs=2, lr=1e-3)
            journal.log("epoch", epoch=0, loss=1.5)
            journal.log("run_end", final_loss=1.5, total_seconds=0.1)
        events = read_journal(tmp_path)
        assert [e["event"] for e in events] == ["config", "epoch", "run_end"]
        assert events[0]["epochs"] == 2
        assert events[1]["loss"] == 1.5

    def test_fixed_clock_makes_bytes_deterministic(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            run = tmp_path / name
            with RunJournal(run, clock=_fixed_clock) as journal:
                journal.log("config", seed=0)
                journal.log("epoch", epoch=0, loss=0.25)
            paths.append((run / "events.jsonl").read_bytes())
        assert paths[0] == paths[1]

    def test_numpy_values_serialize_to_plain_json(self, tmp_path):
        with RunJournal(tmp_path, clock=_fixed_clock) as journal:
            journal.log("spectrum", epoch=np.int64(3),
                        effective_rank=np.float32(4.5),
                        singular_values=np.array([2.0, 1.0]))
        (event,) = read_journal(tmp_path)
        assert event["epoch"] == 3
        assert event["effective_rank"] == 4.5
        assert event["singular_values"] == [2.0, 1.0]
        # The line must be plain JSON, no numpy repr leakage.
        raw = (tmp_path / "events.jsonl").read_text()
        json.loads(raw.splitlines()[0])

    def test_append_mode_accumulates(self, tmp_path):
        with RunJournal(tmp_path, clock=_fixed_clock) as journal:
            journal.log("note", msg="first")
        with RunJournal(tmp_path, append=True, clock=_fixed_clock) as journal:
            journal.log("note", msg="second")
        assert len(read_journal(tmp_path)) == 2

    def test_truncate_mode_starts_clean(self, tmp_path):
        with RunJournal(tmp_path, clock=_fixed_clock) as journal:
            journal.log("note", msg="first")
        with RunJournal(tmp_path, clock=_fixed_clock) as journal:
            journal.log("note", msg="second")
        (event,) = read_journal(tmp_path)
        assert event["msg"] == "second"


class TestValidation:
    def test_valid_journal_passes(self, tmp_path):
        with RunJournal(tmp_path, clock=_fixed_clock) as journal:
            for event in sorted(EVENT_TYPES):
                journal.log(event)
        assert len(validate_journal(tmp_path)) == len(EVENT_TYPES)

    def test_unknown_event_rejected_at_write(self, tmp_path):
        with RunJournal(tmp_path) as journal:
            with pytest.raises(ValueError, match="unknown event"):
                journal.log("nonsense")

    def test_unknown_event_rejected_at_read(self, tmp_path):
        (tmp_path / "events.jsonl").write_text(
            '{"event": "nonsense", "ts": 0.0}\n')
        with pytest.raises(ValueError, match="unknown event"):
            validate_journal(tmp_path)

    def test_garbage_line_rejected_with_line_number(self, tmp_path):
        (tmp_path / "events.jsonl").write_text(
            '{"event": "note", "ts": 0.0}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            validate_journal(tmp_path)

    def test_missing_ts_rejected(self, tmp_path):
        (tmp_path / "events.jsonl").write_text('{"event": "note"}\n')
        with pytest.raises(ValueError, match="ts"):
            validate_journal(tmp_path)

    def test_empty_journal_rejected(self, tmp_path):
        (tmp_path / "events.jsonl").write_text("")
        with pytest.raises(ValueError, match="empty"):
            validate_journal(tmp_path)

    def test_write_after_close_raises(self, tmp_path):
        journal = RunJournal(tmp_path)
        journal.close()
        with pytest.raises(RuntimeError):
            journal.log("note")


class TestHelpers:
    def test_events_of_filters_in_order(self):
        events = [{"event": "epoch", "epoch": 0},
                  {"event": "spectrum"},
                  {"event": "epoch", "epoch": 1}]
        assert [e["epoch"] for e in events_of(events, "epoch")] == [0, 1]

    def test_canonical_events_strip_eval_topology(self):
        # Eval timings/worker counts differ between reruns; the numbers
        # (accuracy, fold counts) must survive canonicalization so the
        # determinism drills still compare them.
        from repro.obs import canonical_events

        events = [{"event": "eval", "ts": 1.0, "accuracy": 87.5,
                   "eval_seconds": 0.3, "eval_repeat_seconds": [0.1],
                   "eval_workers": 2, "eval_solver": "lockstep",
                   "eval_folds": 50}]
        (canonical,) = canonical_events(events)
        assert canonical == {"event": "eval", "accuracy": 87.5,
                             "eval_folds": 50}


class TestEngineStats:
    def test_counters_track_ops_and_backward(self):
        from repro.tensor import Tensor

        with engine_stats() as engine:
            a = Tensor(np.ones((8, 8)), requires_grad=True)
            ((a * a).sum()).backward()
        snap = engine.snapshot()
        assert snap["ops"] == 2           # mul + sum
        assert snap["backward_sweeps"] == 1
        assert snap["backward_nodes"] == 3  # leaf, product, sum
        assert snap["peak_ndarray_bytes"] == 8 * 8 * 8
        assert snap["bytes_allocated"] > snap["peak_ndarray_bytes"]

    def test_disabled_region_records_nothing(self):
        from repro.obs import ENGINE
        from repro.tensor import Tensor

        before = ENGINE.snapshot()
        with engine_stats(enabled=False):
            a = Tensor(np.ones(4), requires_grad=True)
            (a.sum()).backward()
        assert ENGINE.snapshot() == before

    def test_enabled_flag_restored_after_region(self):
        from repro.obs import ENGINE

        assert ENGINE.enabled is False
        with engine_stats():
            assert ENGINE.enabled is True
        assert ENGINE.enabled is False
