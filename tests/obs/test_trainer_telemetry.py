"""Trainer-integration tests for the run-journal telemetry.

These assert the acceptance contract of the observability layer: a
GradGCL-wrapped training run journals config, per-epoch loss_f/loss_g and
grad-norm, the collapse spectrum, throughput, and engine counters — and
that all ``ts``-free fields are deterministic under a fixed seed, so the
journal doubles as a reproducibility artifact.
"""

import numpy as np

from repro.core import gradgcl
from repro.datasets import load_node_dataset, load_tu_dataset
from repro.methods import GRACE, GraphCL, train_graph_method, \
    train_node_method
from repro.obs import RunJournal, events_of, validate_journal

# Wall-clock-dependent fields, stripped before determinism comparisons.
NONDETERMINISTIC_KEYS = {"ts", "seconds", "total_seconds", "graphs_per_sec",
                         "nodes_per_sec"}


def _train_graph(tmp_path, name, epochs=2):
    dataset = load_tu_dataset("MUTAG", scale="tiny", seed=0)
    method = gradgcl(GraphCL(dataset.num_features, 8, 2,
                             rng=np.random.default_rng(0)), 0.5)
    run_dir = tmp_path / name
    with RunJournal(run_dir) as journal:
        history = train_graph_method(method, dataset.graphs, epochs=epochs,
                                     batch_size=16, seed=0, journal=journal)
    return history, validate_journal(run_dir)


class TestGraphTrainerJournal:
    def test_gradgcl_run_emits_full_schema(self, tmp_path):
        history, events = _train_graph(tmp_path, "run")
        (config,) = events_of(events, "config")
        assert config["method"] == "GraphCL"
        assert config["gradgcl_weight"] == 0.5
        assert config["dtype"] in ("float32", "float64")
        assert isinstance(config["fused_kernels"], bool)

        epochs = events_of(events, "epoch")
        assert len(epochs) == 2
        for record in epochs:
            assert record["loss_f"] > 0
            assert record["loss_g"] > 0
            assert record["grad_norm"] > 0
            assert record["graphs_per_sec"] > 0

        (spectrum,) = events_of(events, "spectrum")
        assert spectrum["effective_rank"] > 0
        assert len(spectrum["singular_values"]) == spectrum["embedding_dim"]

        (engine,) = events_of(events, "engine")
        assert engine["ops"] > 0
        assert engine["backward_sweeps"] > 0

        (trace,) = events_of(events, "trace")
        spans = trace["spans"]
        assert spans["epoch"]["count"] == 2
        assert spans["epoch/forward"]["count"] == spans["epoch/backward"]["count"]

        (end,) = events_of(events, "run_end")
        assert end["final_loss"] == history.final_loss
        assert end["epochs_run"] == 2

    def test_journal_fields_deterministic_under_fixed_seed(self, tmp_path):
        _, events_a = _train_graph(tmp_path, "a")
        _, events_b = _train_graph(tmp_path, "b")

        def strip(events):
            stripped = []
            for record in events:
                if record["event"] == "trace":
                    # Span timings are wall clock; keep only the shape.
                    stripped.append({
                        "event": "trace",
                        "paths": {p: s["count"]
                                  for p, s in record["spans"].items()}})
                    continue
                stripped.append({k: v for k, v in record.items()
                                 if k not in NONDETERMINISTIC_KEYS})
            return stripped

        assert strip(events_a) == strip(events_b)

    def test_telemetry_does_not_perturb_training(self, tmp_path):
        dataset = load_tu_dataset("MUTAG", scale="tiny", seed=0)

        def run(journal):
            method = gradgcl(GraphCL(dataset.num_features, 8, 2,
                                     rng=np.random.default_rng(0)), 0.5)
            return train_graph_method(method, dataset.graphs, epochs=2,
                                      batch_size=16, seed=0, journal=journal)

        silent = run(None)
        with RunJournal(tmp_path / "observed") as journal:
            observed = run(journal)
        assert silent.losses == observed.losses
        assert silent.parts == observed.parts

    def test_grad_clip_norm_is_pre_clip(self, tmp_path):
        dataset = load_tu_dataset("MUTAG", scale="tiny", seed=0)
        method = gradgcl(GraphCL(dataset.num_features, 8, 2,
                                 rng=np.random.default_rng(0)), 0.5)
        with RunJournal(tmp_path / "clip") as journal:
            train_graph_method(method, dataset.graphs, epochs=1,
                               batch_size=16, seed=0, grad_clip=1e-6,
                               journal=journal)
        (epoch,) = events_of(validate_journal(tmp_path / "clip"), "epoch")
        # Pre-clip norms are orders of magnitude above the tiny cap.
        assert epoch["grad_norm"] > 1e-3

    def test_spectrum_every_emits_intermediate_spectra(self, tmp_path):
        dataset = load_tu_dataset("MUTAG", scale="tiny", seed=0)
        method = GraphCL(dataset.num_features, 8, 2,
                         rng=np.random.default_rng(0))
        with RunJournal(tmp_path / "sp") as journal:
            train_graph_method(method, dataset.graphs, epochs=4,
                               batch_size=16, seed=0, journal=journal,
                               spectrum_every=2)
        spectra = events_of(validate_journal(tmp_path / "sp"), "spectrum")
        assert [s["epoch"] for s in spectra] == [1, 3]


class TestNodeTrainerJournal:
    def test_node_run_emits_full_schema(self, tmp_path):
        dataset = load_node_dataset("Cora", scale="tiny", seed=0)
        method = gradgcl(GRACE(dataset.num_features, 16, 8,
                               rng=np.random.default_rng(0)), 0.2)
        with RunJournal(tmp_path / "node") as journal:
            train_node_method(method, dataset.graph, epochs=2, lr=3e-3,
                              journal=journal)
        events = validate_journal(tmp_path / "node")
        (config,) = events_of(events, "config")
        assert config["kind"] == "node"
        assert config["num_nodes"] == dataset.graph.num_nodes
        epochs = events_of(events, "epoch")
        assert len(epochs) == 2
        for record in epochs:
            assert record["loss_f"] > 0
            assert record["loss_g"] > 0
            assert record["grad_norm"] > 0
            assert record["nodes_per_sec"] > 0
        assert events_of(events, "spectrum")
        assert events_of(events, "run_end")

    def test_history_untouched_without_journal(self):
        dataset = load_node_dataset("Cora", scale="tiny", seed=0)
        method = GRACE(dataset.num_features, 16, 8,
                       rng=np.random.default_rng(0))
        history = train_node_method(method, dataset.graph, epochs=2, lr=3e-3)
        assert len(history.losses) == 2
        assert history.grad_norms == []
