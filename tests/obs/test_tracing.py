"""Unit tests for nested tracing spans."""

import time

from repro.obs import Tracer, default_tracer, trace


class TestSpanNesting:
    def test_paths_join_with_slash(self):
        t = Tracer()
        with t.trace("epoch"):
            with t.trace("forward"):
                pass
            with t.trace("backward"):
                pass
        paths = [s.path for s in t.spans()]
        assert paths == ["epoch", "epoch/forward", "epoch/backward"]

    def test_repeated_spans_aggregate_by_path(self):
        t = Tracer()
        for _ in range(3):
            with t.trace("epoch"):
                with t.trace("forward"):
                    pass
        stats = t.statistics()
        assert stats["epoch"].count == 3
        assert stats["epoch/forward"].count == 3

    def test_elapsed_measures_wall_clock(self):
        t = Tracer()
        with t.trace("sleep"):
            time.sleep(0.01)
        (span,) = t.roots
        assert span.elapsed >= 0.009

    def test_children_nest_under_parent(self):
        t = Tracer()
        with t.trace("a"):
            with t.trace("b"):
                with t.trace("c"):
                    pass
        (a,) = t.roots
        assert a.children[0].name == "b"
        assert a.children[0].children[0].path == "a/b/c"

    def test_exception_still_closes_span(self):
        t = Tracer()
        try:
            with t.trace("epoch"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert t._stack == []
        assert t.roots[0].elapsed >= 0.0

    def test_snapshot_is_json_ready(self):
        t = Tracer()
        with t.trace("epoch"):
            pass
        snap = t.snapshot()
        assert set(snap["epoch"]) == {"count", "total", "mean", "p50", "p95"}

    def test_reset(self):
        t = Tracer()
        with t.trace("epoch"):
            pass
        t.reset()
        assert list(t.spans()) == []


class TestDisabledTracer:
    def test_records_nothing(self):
        t = Tracer(enabled=False)
        with t.trace("epoch"):
            pass
        assert list(t.spans()) == []

    def test_default_tracer_disabled_out_of_the_box(self):
        assert default_tracer().enabled is False
        with trace("embed"):
            pass
        assert list(default_tracer().spans()) == []

    def test_default_tracer_can_be_enabled(self):
        tracer = default_tracer()
        tracer.enabled = True
        try:
            with trace("embed"):
                pass
            assert [s.path for s in tracer.spans()] == ["embed"]
        finally:
            tracer.enabled = False
            tracer.reset()
