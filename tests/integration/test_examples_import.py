"""The example scripts must at least import and expose a main()."""

import importlib.util
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), \
        f"{path.name} must define a main() entry point"
    assert module.__doc__, f"{path.name} must have a module docstring"
