"""Command-line interface smoke tests."""

import json

import pytest

from repro.cli import build_parser, main

#: One representative invocation per subcommand, with the parsed
#: attribute values it must round-trip to.
SUBCOMMAND_ARGS = {
    "run": (["run", "--method", "SimGRACE", "--weight", "0.5",
             "--epochs", "3", "--checkpoint-every", "2",
             "--run-dir", "runs/x"],
            {"method": "SimGRACE", "weight": 0.5, "epochs": 3,
             "checkpoint_every": 2, "run_dir": "runs/x", "resume": None,
             "list_methods": False}),
    "datasets": (["datasets", "--family", "tu", "--scale", "tiny"],
                 {"family": "tu", "scale": "tiny"}),
    "train-graph": (["train-graph", "--method", "GraphCL",
                     "--weight", "0.25", "--hidden-dim", "8"],
                    {"method": "GraphCL", "weight": 0.25,
                     "hidden_dim": 8, "epochs": 20}),
    "train-node": (["train-node", "--method", "GRACE", "--out-dim", "8",
                    "--save", "enc.npz"],
                   {"method": "GRACE", "out_dim": 8, "save": "enc.npz",
                    "epochs": 40}),
    "spectrum": (["spectrum", "--dataset", "IMDB-B", "--weight", "0.5"],
                 {"dataset": "IMDB-B", "weight": 0.5, "epochs": 60}),
    "flow": (["flow", "--weight", "0.5", "--steps", "20"],
             {"weight": 0.5, "steps": 20, "samples": 32}),
    "sweep": (["sweep", "--method", "GraphCL", "--weights", "0.0", "0.5"],
              {"method": "GraphCL", "weights": [0.0, 0.5], "epochs": 15}),
    "report": (["report", "runs/x", "--spectrum-top", "4"],
               {"run_dir": "runs/x", "spectrum_top": 4}),
    "serve": (["serve", "--run-dir", "runs/x", "--port", "8123",
               "--max-batch-size", "32", "--max-wait-ms", "5"],
              {"run_dir": "runs/x", "port": 8123, "host": "127.0.0.1",
               "max_batch_size": 32, "max_wait_ms": 5.0,
               "queue_size": 128, "dtype": "float32"}),
    "embed": (["embed", "--run-dir", "runs/x", "--out", "emb.npz",
               "--batch-size", "64", "--dtype", "float64"],
              {"run_dir": "runs/x", "out": "emb.npz", "batch_size": 64,
               "dtype": "float64", "dataset": None, "scale": None}),
}


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train-graph"])
        assert args.method == "SimGRACE"
        assert args.weight == 0.0

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train-graph", "--method", "Nope"])

    @pytest.mark.parametrize("command", sorted(SUBCOMMAND_ARGS))
    def test_round_trip(self, command):
        argv, expected = SUBCOMMAND_ARGS[command]
        args = build_parser().parse_args(argv)
        assert args.command == command
        for attr, value in expected.items():
            assert getattr(args, attr) == value, attr

    def test_run_flags_default_to_none(self):
        # ``repro run`` must distinguish "flag not passed" from "flag at
        # its default" so config-file fields survive unless overridden.
        args = build_parser().parse_args(["run"])
        for attr in ("method", "dataset", "level", "scale", "weight",
                     "epochs", "batch_size", "lr", "grad_clip", "patience",
                     "seed", "hidden_dim", "out_dim", "layers", "workers",
                     "run_dir", "checkpoint_every", "save"):
            assert getattr(args, attr) is None, attr

    def test_run_registry_choices(self):
        from repro.run import method_names

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "Nope"])
        # registry superset: RGCL and the pretrain baselines are runnable
        for name in method_names():
            build_parser().parse_args(["run", "--method", name])


class TestCommands:
    def test_datasets_tu(self, capsys):
        assert main(["datasets", "--family", "tu", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "MUTAG" in out

    def test_datasets_all(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "Table III" in out

    def test_train_graph_with_gradgcl_and_save(self, tmp_path, capsys):
        ckpt = tmp_path / "enc.npz"
        code = main(["train-graph", "--method", "GraphCL", "--dataset",
                     "MUTAG", "--weight", "0.5", "--epochs", "2",
                     "--scale", "tiny", "--hidden-dim", "8",
                     "--save", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert ckpt.exists()

    def test_train_node(self, capsys):
        code = main(["train-node", "--method", "GRACE", "--dataset",
                     "Cora", "--epochs", "2", "--scale", "tiny",
                     "--hidden-dim", "16", "--out-dim", "8"])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_spectrum(self, capsys):
        code = main(["spectrum", "--dataset", "IMDB-B", "--epochs", "2",
                     "--scale", "tiny"])
        assert code == 0
        assert "effective-rank" in capsys.readouterr().out

    def test_flow(self, capsys):
        code = main(["flow", "--weight", "0.5", "--steps", "20",
                     "--samples", "10", "--dim", "5"])
        assert code == 0
        assert "gradient flow" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(["sweep", "--method", "GraphCL", "--dataset", "MUTAG",
                     "--weights", "0.0", "0.5", "--epochs", "1",
                     "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "a=0.0" in out and "a=0.5" in out


class TestRunCommand:
    def test_list_methods(self, capsys):
        assert main(["run", "--list-methods"]) == 0
        out = capsys.readouterr().out
        for name in ("GraphCL", "SimGRACE", "RGCL", "GRACE", "DGI"):
            assert name in out

    def test_run_then_report_end_to_end(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main(["run", "--method", "GraphCL", "--dataset", "MUTAG",
                     "--scale", "tiny", "--weight", "0.5", "--epochs", "2",
                     "--hidden-dim", "8", "--run-dir", str(run_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out and "effective-rank" in out
        assert (run_dir / "config.json").exists()
        assert main(["report", str(run_dir)]) == 0
        report = capsys.readouterr().out
        assert "Run config" in report
        assert "Epochs" in report
        assert "Evaluation" in report

    def test_run_journal_carries_eval_telemetry(self, tmp_path, capsys):
        from repro.obs import events_of, read_journal

        run_dir = tmp_path / "run"
        code = main(["run", "--method", "GraphCL", "--dataset", "MUTAG",
                     "--scale", "tiny", "--epochs", "1", "--hidden-dim",
                     "8", "--eval-workers", "2", "--run-dir",
                     str(run_dir)])
        assert code == 0
        capsys.readouterr()
        (event,) = events_of(read_journal(str(run_dir)), "eval")
        assert event["eval_workers"] == 2
        assert event["eval_folds"] == 50
        assert event["eval_solver"] in ("lockstep", "batched", "reference")
        assert len(event["eval_repeat_seconds"]) == 5
        assert main(["report", str(run_dir)]) == 0
        assert "eval" in capsys.readouterr().out

    def test_run_from_config_file_with_override(self, tmp_path, capsys):
        config_path = tmp_path / "config.json"
        config_path.write_text(json.dumps(
            {"method": "SimGRACE", "dataset": "MUTAG", "scale": "tiny",
             "weight": 0.5, "epochs": 1, "hidden_dim": 8}))
        assert main(["run", str(config_path), "--weight", "0.0"]) == 0
        out = capsys.readouterr().out
        assert "SimGRACE(a=0.0)" in out

    def test_run_then_embed_offline(self, tmp_path, capsys):
        import numpy as np

        run_dir = tmp_path / "run"
        out = tmp_path / "emb.npz"
        assert main(["run", "--method", "GraphCL", "--dataset", "MUTAG",
                     "--scale", "tiny", "--epochs", "2", "--hidden-dim",
                     "8", "--checkpoint-every", "2", "--run-dir",
                     str(run_dir)]) == 0
        capsys.readouterr()
        assert main(["embed", "--run-dir", str(run_dir), "--out",
                     str(out)]) == 0
        assert "embedded" in capsys.readouterr().out
        with np.load(out) as archive:
            embeddings = archive["embeddings"]
            labels = archive["labels"]
        assert embeddings.dtype == np.float32
        assert embeddings.shape[0] == labels.shape[0] > 0

    def test_run_stop_after_prints_resume_hint(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main(["run", "--method", "GraphCL", "--dataset", "MUTAG",
                     "--scale", "tiny", "--epochs", "4", "--hidden-dim",
                     "8", "--checkpoint-every", "2", "--run-dir",
                     str(run_dir), "--stop-after", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "interrupted after 2/4 epochs" in out
        assert "--resume" in out
        assert main(["run", "--resume", str(run_dir)]) == 0
        assert "accuracy" in capsys.readouterr().out
