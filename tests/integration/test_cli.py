"""Command-line interface smoke tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["train-graph"])
        assert args.method == "SimGRACE"
        assert args.weight == 0.0

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train-graph", "--method", "Nope"])


class TestCommands:
    def test_datasets_tu(self, capsys):
        assert main(["datasets", "--family", "tu", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "MUTAG" in out

    def test_datasets_all(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "Table III" in out

    def test_train_graph_with_gradgcl_and_save(self, tmp_path, capsys):
        ckpt = tmp_path / "enc.npz"
        code = main(["train-graph", "--method", "GraphCL", "--dataset",
                     "MUTAG", "--weight", "0.5", "--epochs", "2",
                     "--scale", "tiny", "--hidden-dim", "8",
                     "--save", str(ckpt)])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out
        assert ckpt.exists()

    def test_train_node(self, capsys):
        code = main(["train-node", "--method", "GRACE", "--dataset",
                     "Cora", "--epochs", "2", "--scale", "tiny",
                     "--hidden-dim", "16", "--out-dim", "8"])
        assert code == 0
        assert "accuracy" in capsys.readouterr().out

    def test_spectrum(self, capsys):
        code = main(["spectrum", "--dataset", "IMDB-B", "--epochs", "2",
                     "--scale", "tiny"])
        assert code == 0
        assert "effective-rank" in capsys.readouterr().out

    def test_flow(self, capsys):
        code = main(["flow", "--weight", "0.5", "--steps", "20",
                     "--samples", "10", "--dim", "5"])
        assert code == 0
        assert "gradient flow" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(["sweep", "--method", "GraphCL", "--dataset", "MUTAG",
                     "--weights", "0.0", "0.5", "--epochs", "1",
                     "--scale", "tiny"])
        assert code == 0
        out = capsys.readouterr().out
        assert "a=0.0" in out and "a=0.5" in out
