"""End-to-end pipelines: train -> embed -> evaluate for each task family."""

import numpy as np
import pytest

from repro.core import gradgcl
from repro.datasets import (
    load_molecule_dataset,
    load_node_dataset,
    load_pretrain_dataset,
    load_tu_dataset,
)
from repro.eval import evaluate_graph_embeddings, evaluate_node_embeddings
from repro.methods import (
    GRACE,
    GraphCL,
    SimGRACE,
    run_transfer,
    train_graph_method,
    train_node_method,
)

# Hypothesis-heavy / end-to-end suite: deselected by CI tier (b)
# via -m 'not slow'; `make test-all` runs it.
pytestmark = pytest.mark.slow


class TestGraphClassificationPipeline:
    def test_simgrace_beats_chance(self):
        ds = load_tu_dataset("MUTAG", scale="tiny", seed=0)
        rng = np.random.default_rng(0)
        method = SimGRACE(ds.num_features, 8, 2, rng=rng)
        train_graph_method(method, ds.graphs, epochs=5, batch_size=16,
                           seed=0)
        acc, std = evaluate_graph_embeddings(method.embed(ds.graphs),
                                             ds.labels(), folds=4,
                                             repeats=2)
        assert acc > 55.0
        assert std >= 0.0

    def test_gradgcl_variant_runs_end_to_end(self):
        ds = load_tu_dataset("IMDB-B", scale="tiny", seed=0)
        rng = np.random.default_rng(0)
        method = gradgcl(GraphCL(ds.num_features, 8, 2, rng=rng), 0.5)
        train_graph_method(method, ds.graphs, epochs=3, batch_size=16,
                           seed=0)
        acc, _ = evaluate_graph_embeddings(method.embed(ds.graphs),
                                           ds.labels(), folds=4, repeats=1)
        assert 0.0 <= acc <= 100.0


class TestNodeClassificationPipeline:
    def test_grace_pipeline(self):
        ds = load_node_dataset("CiteSeer", scale="tiny", seed=0)
        rng = np.random.default_rng(0)
        method = GRACE(ds.num_features, 16, 8, rng=rng)
        train_node_method(method, ds.graph, epochs=8, lr=3e-3)
        acc, _ = evaluate_node_embeddings(method.embed(ds.graph),
                                          ds.labels(), ds.train_mask,
                                          ds.test_mask, repeats=1)
        assert acc > 100.0 / ds.num_classes


class TestTransferPipeline:
    def test_pretrain_then_finetune(self):
        pretrain = load_pretrain_dataset("PPI-306K", scale="tiny", seed=0)
        downstream = load_molecule_dataset("Tox21", scale="tiny", seed=0)
        rng = np.random.default_rng(0)
        method = gradgcl(GraphCL(pretrain.num_features, 8, 2, rng=rng), 0.3)
        result = run_transfer(method, pretrain.graphs, [downstream],
                              pretrain_epochs=1, finetune_epochs=4,
                              repeats=1, seed=0)
        assert 0.0 <= result["Tox21"] <= 100.0
