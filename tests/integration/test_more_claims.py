"""Additional paper-claim shape tests (transfer, JOAO, theory coupling)."""

import numpy as np
import pytest

from repro.core import gradgcl
from repro.datasets import load_molecule_dataset, load_pretrain_dataset, load_tu_dataset
from repro.gnn import GINEncoder
from repro.methods import GraphCL, JOAO, train_graph_method
from repro.methods.transfer import finetune_roc_auc

# Hypothesis-heavy / end-to-end suite: deselected by CI tier (b)
# via -m 'not slow'; `make test-all` runs it.
pytestmark = pytest.mark.slow


class TestTransferClaim:
    def test_pretraining_helps_in_low_data_regime(self):
        # Table VI's premise, at test scale: in the low-finetune-data
        # regime a contrastively pretrained encoder beats a fresh one.
        pretrain = load_pretrain_dataset("ZINC-2M", scale="tiny", seed=0)
        downstream = load_molecule_dataset("BBBP", scale="small", seed=0)

        fresh = GINEncoder(pretrain.num_features, 16, 2,
                           rng=np.random.default_rng(0))
        model = GraphCL(pretrain.num_features, 16, 2,
                        rng=np.random.default_rng(0))
        train_graph_method(model, pretrain.graphs, epochs=4,
                           batch_size=32, lr=3e-3, seed=0)

        def mean_auc(encoder):
            return np.mean([
                finetune_roc_auc(encoder, downstream, epochs=4, lr=3e-3,
                                 test_fraction=0.8, seed=s)
                for s in range(3)])

        assert mean_auc(model.encoder) > mean_auc(fresh) - 2.0


class TestJOAOClaim:
    def test_distribution_tracks_losses(self):
        # JOAO's min-max rule: the augmentation with the higher recorded
        # loss must get the higher probability after the epoch update.
        dataset = load_tu_dataset("MUTAG", scale="tiny", seed=0)
        method = JOAO(dataset.num_features, 8, 2,
                      rng=np.random.default_rng(0), gamma=0.05)
        method._loss_sums[:] = [4.0, 1.0, 1.0, 1.0]
        method._loss_counts[:] = 1.0
        method.on_epoch_end(0, 2.0)
        probs = method.augmentation_probabilities
        assert probs[0] == probs.max()
        assert probs.argmax() == 0

    def test_unseen_augmentations_keep_probability_mass(self):
        dataset = load_tu_dataset("MUTAG", scale="tiny", seed=0)
        method = JOAO(dataset.num_features, 8, 2,
                      rng=np.random.default_rng(0))
        method._loss_sums[:] = [2.0, 0.0, 0.0, 0.0]
        method._loss_counts[:] = [1.0, 0.0, 0.0, 0.0]
        method.on_epoch_end(0, 2.0)
        assert (method.augmentation_probabilities > 0).all()


class TestGradGCLCouplesChannels:
    def test_gradient_loss_reacts_to_representation_quality(self):
        # The combined objective's two parts must not be independent: on a
        # trained model, loss_g is far below its value at initialization
        # (the gradient channel reflects the optimized representations).
        dataset = load_tu_dataset("MUTAG", scale="tiny", seed=0)
        from repro.graph import GraphBatch

        def parts_after(epochs):
            method = gradgcl(GraphCL(dataset.num_features, 8, 2,
                                     rng=np.random.default_rng(0)), 0.5)
            if epochs:
                train_graph_method(method, dataset.graphs, epochs=epochs,
                                   batch_size=16, seed=0)
            method._rng = np.random.default_rng(9)
            method.training_loss(GraphBatch(dataset.graphs[:16]))
            return dict(method.objective.last_parts)

        initial = parts_after(0)
        trained = parts_after(6)
        assert trained["loss_g"] < initial["loss_g"]
