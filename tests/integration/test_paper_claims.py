"""The paper's scientific claims at test scale.

These are slower, statistical tests: each pins one qualitative claim from
the paper on a seeded miniature of the corresponding experiment.
"""

import numpy as np
import pytest

from repro.core import effective_rank, gradgcl
from repro.datasets import load_tu_dataset
from repro.eval import similarity_diversity
from repro.methods import SimGRACE, train_graph_method
from repro.tensor import Tensor
from repro.core import infonce_gradient_features

# Hypothesis-heavy / end-to-end suite: deselected by CI tier (b)
# via -m 'not slow'; `make test-all` runs it.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def imdb():
    return load_tu_dataset("IMDB-B", scale="tiny", seed=0)


def train_simgrace(dataset, weight, seed, *, epochs=30,
                   weight_decay=3e-2):
    """SimGRACE in the collapse regime (weight decay + longer training)."""
    rng = np.random.default_rng(seed)
    method = SimGRACE(dataset.num_features, 16, 2, rng=rng,
                      perturb_magnitude=0.5)
    if weight > 0:
        method = gradgcl(method, weight)
    train_graph_method(method, dataset.graphs, epochs=epochs, batch_size=64,
                       lr=3e-3, weight_decay=weight_decay, seed=seed)
    return method


class TestDimensionalCollapse:
    def test_collapse_occurs_in_base_model(self, imdb):
        # Fig. 1's premise: trained representations have a collapsed tail.
        method = train_simgrace(imdb, weight=0.0, seed=0)
        emb = method.embed(imdb.graphs)
        assert effective_rank(emb) < emb.shape[1] / 2

    def test_gradients_raise_effective_rank(self, imdb):
        # Fig. 5's claim, averaged over seeds for stability.
        base_ranks, grad_ranks = [], []
        for seed in range(3):
            base = train_simgrace(imdb, weight=0.0, seed=seed)
            full = train_simgrace(imdb, weight=0.5, seed=seed)
            base_ranks.append(effective_rank(base.embed(imdb.graphs)))
            grad_ranks.append(effective_rank(full.embed(imdb.graphs)))
        assert np.mean(grad_ranks) > np.mean(base_ranks)


class TestGradientInformation:
    def test_gradient_similarities_more_diverse(self, imdb):
        # Fig. 3's claim: instance-wise gradient similarities are less
        # saturated than representation similarities.
        method = train_simgrace(imdb, weight=0.0, seed=0, epochs=15,
                                weight_decay=0.0)
        emb = method.embed(imdb.graphs)
        u = Tensor(emb)
        # Second view: embeddings themselves (self-pair) shifted by noise-free
        # perturbed encoder pass is expensive; gradients w.r.t. a shuffled
        # positive assignment exercise Eq. 6's fine-grained structure.
        g, _ = infonce_gradient_features(u, u, tau=0.5, sim="cos")
        rep_intra = _saturation(emb)
        grad_intra = _saturation(g.data)
        assert grad_intra < rep_intra

    def test_gradients_alone_carry_class_signal(self, imdb):
        # Table IV's XXX(g) rows: training on gradients alone still yields
        # embeddings that beat chance downstream.
        from repro.eval import evaluate_graph_embeddings

        method = train_simgrace(imdb, weight=1.0, seed=1, epochs=15,
                                weight_decay=0.0)
        acc, _ = evaluate_graph_embeddings(method.embed(imdb.graphs),
                                           imdb.labels(), folds=4,
                                           repeats=2)
        assert acc > 55.0


def _saturation(embeddings: np.ndarray) -> float:
    """Fraction of |cosine| similarities above 0.95 (block saturation)."""
    from repro.eval import cosine_similarity

    sims = cosine_similarity(embeddings)
    n = len(sims)
    off = sims[~np.eye(n, dtype=bool)]
    return float((np.abs(off) > 0.95).mean())
