"""Property-based augmentation invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.augment import (
    AttributeMask,
    EdgePerturb,
    NodeDrop,
    SubgraphSample,
)
from repro.graph import Graph
import pytest

# Hypothesis-heavy / end-to-end suite: deselected by CI tier (b)
# via -m 'not slow'; `make test-all` runs it.
pytestmark = pytest.mark.slow


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=15))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(min_value=0.1, max_value=0.9))
    iu = np.triu_indices(n, k=1)
    mask = rng.random(len(iu[0])) < density
    edges = np.stack([iu[0][mask], iu[1][mask]], axis=1)
    return Graph(n, edges, rng.normal(size=(n, 4)))


aug_seeds = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=30, deadline=None)
@given(random_graphs(), aug_seeds)
def test_node_drop_subset_nodes(graph, seed):
    out = NodeDrop(0.3)(graph, np.random.default_rng(seed))
    assert 1 <= out.num_nodes <= graph.num_nodes
    # Feature rows come from the original feature matrix.
    original_rows = {tuple(row) for row in graph.x}
    assert all(tuple(row) in original_rows for row in out.x)


@settings(max_examples=30, deadline=None)
@given(random_graphs(), aug_seeds)
def test_node_drop_canonical_edges(graph, seed):
    out = NodeDrop(0.3)(graph, np.random.default_rng(seed))
    if out.edges.size:
        assert (out.edges[:, 0] < out.edges[:, 1]).all()
        assert out.edges.max() < out.num_nodes


@settings(max_examples=30, deadline=None)
@given(random_graphs(), aug_seeds)
def test_edge_perturb_preserves_nodes(graph, seed):
    out = EdgePerturb(0.4)(graph, np.random.default_rng(seed))
    assert out.num_nodes == graph.num_nodes
    if out.edges.size:
        assert (out.edges[:, 0] != out.edges[:, 1]).all()  # no self loops
        # No duplicate edges.
        assert len(out.edge_set()) == out.num_edges


@settings(max_examples=30, deadline=None)
@given(random_graphs(), aug_seeds)
def test_attribute_mask_only_zeroes(graph, seed):
    out = AttributeMask(0.4)(graph, np.random.default_rng(seed))
    changed = out.x != graph.x
    assert (out.x[changed] == 0).all()


@settings(max_examples=30, deadline=None)
@given(random_graphs(), aug_seeds)
def test_subgraph_is_induced(graph, seed):
    out = SubgraphSample(0.6)(graph, np.random.default_rng(seed))
    assert out.num_nodes == max(1, int(round(graph.num_nodes * 0.6)))
    # Subgraph edges cannot outnumber original edges.
    assert out.num_edges <= graph.num_edges


@settings(max_examples=20, deadline=None)
@given(random_graphs(), aug_seeds)
def test_determinism_under_fixed_seed(graph, seed):
    a = NodeDrop(0.3)(graph, np.random.default_rng(seed))
    b = NodeDrop(0.3)(graph, np.random.default_rng(seed))
    assert a.num_nodes == b.num_nodes
    np.testing.assert_array_equal(a.x, b.x)
    np.testing.assert_array_equal(a.edges, b.edges)
