"""Augmentation invariants: sizes, edge sets, determinism, composition."""

import numpy as np
import pytest

from repro.augment import (
    AdaptiveEdgeDrop,
    AdaptiveFeatureMask,
    AttributeMask,
    Compose,
    EdgePerturb,
    FeatureColumnDrop,
    Identity,
    NodeDrop,
    RandomChoice,
    SubgraphSample,
    perturbed_copy,
)
from repro.graph import Graph
from repro.nn import Linear


@pytest.fixture
def graph():
    rng = np.random.default_rng(0)
    edges = Graph.canonical_edges(rng.integers(0, 20, size=(40, 2)))
    return Graph(20, edges, rng.normal(size=(20, 6)), y=1)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestIdentity:
    def test_returns_copy(self, graph, rng):
        out = Identity()(graph, rng)
        assert out is not graph
        np.testing.assert_array_equal(out.x, graph.x)
        assert out.edge_set() == graph.edge_set()


class TestNodeDrop:
    def test_drops_expected_fraction(self, graph, rng):
        out = NodeDrop(0.25)(graph, rng)
        assert out.num_nodes == 15

    def test_never_empties(self, rng):
        g = Graph(2, [[0, 1]], np.eye(2))
        out = NodeDrop(0.9)(g, rng)
        assert out.num_nodes >= 1

    def test_edges_are_induced(self, graph, rng):
        out = NodeDrop(0.3)(graph, rng)
        # Any surviving edge must connect surviving nodes (by construction),
        # and degrees cannot exceed originals.
        assert out.edges.size == 0 or out.edges.max() < out.num_nodes

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            NodeDrop(1.0)


class TestEdgePerturb:
    def test_preserves_edge_count_with_add(self, graph, rng):
        out = EdgePerturb(0.3, add_edges=True)(graph, rng)
        # Dropped edges are replaced (up to collision failures).
        assert abs(out.num_edges - graph.num_edges) <= 2

    def test_drop_only(self, graph, rng):
        out = EdgePerturb(0.5, add_edges=False)(graph, rng)
        assert out.num_edges < graph.num_edges
        assert out.edge_set() <= graph.edge_set()

    def test_node_features_unchanged(self, graph, rng):
        out = EdgePerturb(0.3)(graph, rng)
        np.testing.assert_array_equal(out.x, graph.x)

    def test_edgeless_graph_unchanged(self, rng):
        g = Graph(3, np.empty((0, 2)), np.eye(3))
        out = EdgePerturb(0.5)(g, rng)
        assert out.num_edges == 0


class TestSubgraph:
    def test_keeps_target_count(self, graph, rng):
        out = SubgraphSample(0.5)(graph, rng)
        assert out.num_nodes == 10

    def test_full_keep(self, graph, rng):
        out = SubgraphSample(1.0)(graph, rng)
        assert out.num_nodes == graph.num_nodes

    def test_handles_disconnected(self, rng):
        g = Graph(6, [[0, 1], [2, 3]], np.eye(6))
        out = SubgraphSample(0.9)(g, rng)
        assert out.num_nodes == 5

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            SubgraphSample(0.0)


class TestFeatureAugs:
    def test_attribute_mask_fraction(self, graph, rng):
        out = AttributeMask(0.5)(graph, rng)
        zero_fraction = (out.x == 0).mean()
        assert 0.3 < zero_fraction < 0.7
        assert out.edge_set() == graph.edge_set()

    def test_column_drop_zeroes_columns(self, graph, rng):
        out = FeatureColumnDrop(0.5)(graph, rng)
        column_zeroed = (out.x == 0).all(axis=0)
        column_intact = (out.x == graph.x).all(axis=0)
        assert (column_zeroed | column_intact).all()

    def test_original_untouched(self, graph, rng):
        before = graph.x.copy()
        AttributeMask(0.5)(graph, rng)
        FeatureColumnDrop(0.5)(graph, rng)
        np.testing.assert_array_equal(graph.x, before)


class TestAdaptive:
    def test_edge_drop_prefers_low_centrality(self, rng):
        # A star graph: spoke-spoke edges absent; hub edges are central.
        hub_edges = [[0, i] for i in range(1, 8)]
        chain = [[7, 8], [8, 9]]
        g = Graph(10, hub_edges + chain, np.eye(10))
        aug = AdaptiveEdgeDrop(0.5)
        probs = aug.drop_probabilities(g)
        hub_mean = probs[:7].mean()
        tail_mean = probs[7:].mean()
        assert tail_mean > hub_mean  # peripheral edges dropped more

    def test_edge_drop_never_empties(self, rng):
        g = Graph(3, [[0, 1], [1, 2]], np.eye(3))
        out = AdaptiveEdgeDrop(0.69, clamp=0.99)(g, rng)
        assert out.num_edges >= 1

    def test_feature_mask_runs(self, graph, rng):
        out = AdaptiveFeatureMask(0.4)(graph, rng)
        assert out.x.shape == graph.x.shape


class TestCombinators:
    def test_compose_order(self, graph, rng):
        aug = Compose([NodeDrop(0.2), AttributeMask(0.3)])
        out = aug(graph, rng)
        assert out.num_nodes == 16
        assert (out.x == 0).any()

    def test_random_choice_distribution(self, graph):
        aug = RandomChoice([Identity(), NodeDrop(0.5)],
                           probabilities=[1.0, 0.0])
        rng = np.random.default_rng(0)
        for _ in range(5):
            out = aug(graph, rng)
            assert out.num_nodes == graph.num_nodes
            assert aug.last_choice == 0

    def test_set_probabilities_validation(self):
        aug = RandomChoice([Identity(), NodeDrop(0.5)])
        with pytest.raises(ValueError):
            aug.set_probabilities([1.0])
        with pytest.raises(ValueError):
            aug.set_probabilities([-1.0, 2.0])
        with pytest.raises(ValueError):
            aug.set_probabilities([0.0, 0.0])

    def test_probabilities_normalized(self):
        aug = RandomChoice([Identity(), NodeDrop(0.5)],
                           probabilities=[2.0, 2.0])
        np.testing.assert_allclose(aug.probabilities, [0.5, 0.5])


class TestEncoderPerturb:
    def test_noise_scale_tracks_parameter_std(self, rng):
        layer = Linear(50, 50, rng=np.random.default_rng(0))
        clone = perturbed_copy(layer, magnitude=0.1, rng=rng)
        delta = clone.weight.data - layer.weight.data
        expected = 0.1 * layer.weight.data.std()
        assert 0.5 * expected < delta.std() < 1.5 * expected

    def test_zero_magnitude_is_exact_copy(self, rng):
        layer = Linear(4, 4, rng=np.random.default_rng(0))
        clone = perturbed_copy(layer, magnitude=0.0, rng=rng)
        np.testing.assert_array_equal(clone.weight.data, layer.weight.data)

    def test_original_untouched(self, rng):
        layer = Linear(4, 4, rng=np.random.default_rng(0))
        before = layer.weight.data.copy()
        perturbed_copy(layer, magnitude=1.0, rng=rng)
        np.testing.assert_array_equal(layer.weight.data, before)

    def test_magnitude_validation(self, rng):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            perturbed_copy(layer, magnitude=-0.1, rng=rng)
