"""Checkpoint/resume: bit-identical continuation of interrupted runs."""

import json

import numpy as np
import pytest

from repro.nn import BatchNorm1d
from repro.obs import canonical_events
from repro.run import (
    CONFIG_FILENAME,
    RunConfig,
    TrainState,
    Trainer,
    execute_run,
    resume_run,
)


def _journal_events(run_dir):
    with (run_dir / "events.jsonl").open() as fh:
        return [json.loads(line) for line in fh]


def _graph_config(run_dir, **overrides) -> RunConfig:
    fields = dict(method="GraphCL", dataset="MUTAG", scale="tiny",
                  weight=0.5, epochs=4, seed=0, hidden_dim=8,
                  checkpoint_every=2, run_dir=str(run_dir))
    fields.update(overrides)
    return RunConfig(**fields)


def _resume_pair(tmp_path, make_config, stop_after=2):
    """Run a config straight and interrupted+resumed; return both results."""
    straight_dir = tmp_path / "straight"
    resumed_dir = tmp_path / "resumed"
    straight = execute_run(make_config(straight_dir))
    interrupted = execute_run(make_config(resumed_dir),
                              stop_after=stop_after)
    assert interrupted.interrupted
    assert len(interrupted.history.losses) == stop_after
    resumed = resume_run(resumed_dir)
    return straight, resumed, straight_dir, resumed_dir


class TestGraphResume:
    def test_bit_identical_losses_accuracy_and_journal(self, tmp_path):
        straight, resumed, a_dir, b_dir = _resume_pair(
            tmp_path, _graph_config)
        assert resumed.history.losses == straight.history.losses
        assert resumed.history.parts == straight.history.parts
        assert resumed.history.grad_norms == straight.history.grad_norms
        assert resumed.accuracy == straight.accuracy
        assert resumed.accuracy_std == straight.accuracy_std
        assert resumed.effective_rank == straight.effective_rank
        a = canonical_events(_journal_events(a_dir))
        b = canonical_events(_journal_events(b_dir))
        assert a == b

    def test_joao_schedule_survives_resume(self, tmp_path):
        # JOAO's learned augmentation distribution is mutable training
        # state; epochs 3-4 sample different augmentations if the
        # probabilities reset on resume.
        def config(run_dir):
            return _graph_config(run_dir, method="JOAO")

        straight, resumed, _, _ = _resume_pair(tmp_path, config)
        assert resumed.history.losses == straight.history.losses
        assert resumed.accuracy == straight.accuracy

    def test_resume_completed_run_refuses(self, tmp_path):
        run_dir = tmp_path / "done"
        execute_run(_graph_config(run_dir))
        with pytest.raises(ValueError, match="already completed"):
            resume_run(run_dir)

    def test_resume_unaligned_checkpoint_cadence(self, tmp_path):
        # Interrupt at an epoch that is not a checkpoint multiple: resume
        # rolls back to the last aligned snapshot (epoch 2) and replays
        # epoch 3 deterministically, converging on the same losses.
        def config(run_dir):
            return _graph_config(run_dir, epochs=5, checkpoint_every=2)

        straight, resumed, _, _ = _resume_pair(tmp_path, config,
                                               stop_after=3)
        assert resumed.history.losses == straight.history.losses


class TestNodeResume:
    def test_bit_identical_node_run(self, tmp_path):
        def config(run_dir):
            return RunConfig(method="GRACE", dataset="Cora", scale="tiny",
                             weight=0.3, epochs=4, seed=0, hidden_dim=16,
                             out_dim=8, checkpoint_every=2,
                             run_dir=str(run_dir))

        straight, resumed, a_dir, b_dir = _resume_pair(tmp_path, config)
        assert resumed.history.losses == straight.history.losses
        assert resumed.accuracy == straight.accuracy
        a = canonical_events(_journal_events(a_dir))
        b = canonical_events(_journal_events(b_dir))
        assert a == b


class TestTrainState:
    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="checkpoint"):
            TrainState.load(tmp_path)

    def test_config_hash_mismatch_refuses(self, tmp_path):
        run_dir = tmp_path / "run"
        execute_run(_graph_config(run_dir), stop_after=2)
        # Tamper with a hyperparameter: resuming must refuse.
        config_path = run_dir / CONFIG_FILENAME
        data = json.loads(config_path.read_text())
        data["lr"] = 0.5
        config_path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="config hash"):
            resume_run(run_dir)

    def test_trainer_resume_with_override(self, tmp_path):
        # Extending epochs is an explicit opt-out of the hash check.
        run_dir = tmp_path / "run"
        execute_run(_graph_config(run_dir), stop_after=2)
        trainer = Trainer.resume(run_dir, epochs=6)
        assert trainer.start_epoch == 2
        assert trainer.epochs == 6
        history = trainer.fit()
        assert len(history.losses) == 6

    def test_checkpoint_files_written_atomically(self, tmp_path):
        run_dir = tmp_path / "run"
        execute_run(_graph_config(run_dir))
        assert (run_dir / "checkpoint.npz").exists()
        assert (run_dir / "checkpoint.json").exists()
        assert not list(run_dir.glob("*.tmp*"))
        state = TrainState.load(run_dir)
        assert state.epoch == 4
        assert any(name.startswith("adam.m.") for name in state.arrays)

    def test_unsupported_format_version(self, tmp_path):
        run_dir = tmp_path / "run"
        execute_run(_graph_config(run_dir), stop_after=2)
        meta_path = run_dir / "checkpoint.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="format"):
            TrainState.load(run_dir)


class TestModuleBuffers:
    """BatchNorm running statistics are checkpointed via the buffer
    protocol — they are not Parameters but eval-mode forwards read them."""

    def test_buffers_round_trip(self):
        bn = BatchNorm1d(4)
        bn.running_mean[:] = [1.0, 2.0, 3.0, 4.0]
        bn.running_var[:] = [0.5, 0.5, 2.0, 2.0]
        captured = bn.buffers_dict()
        fresh = BatchNorm1d(4)
        fresh.load_buffers_dict(captured)
        np.testing.assert_array_equal(fresh.running_mean, bn.running_mean)
        np.testing.assert_array_equal(fresh.running_var, bn.running_var)

    def test_buffers_are_copies(self):
        bn = BatchNorm1d(2)
        captured = bn.buffers_dict()
        bn.running_mean[:] = 7.0
        assert captured["running_mean"][0] == 0.0

    def test_load_rejects_mismatched_names(self):
        bn = BatchNorm1d(2)
        with pytest.raises(KeyError, match="running_var"):
            bn.load_buffers_dict({"running_mean": np.zeros(2)})
