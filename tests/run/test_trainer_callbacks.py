"""Unified Trainer: callback protocol, step strategies, wrapper parity."""

import inspect

import numpy as np
import pytest

from repro.datasets import load_node_dataset, load_tu_dataset
from repro.methods import GRACE, GraphCL, train_graph_method, \
    train_node_method
from repro.run import Callback, EarlyStopping, GraphSteps, NodeSteps, \
    ProbeCallback, Trainer


@pytest.fixture(scope="module")
def graph_dataset():
    return load_tu_dataset("MUTAG", scale="tiny", seed=0)


@pytest.fixture(scope="module")
def node_dataset():
    return load_node_dataset("Cora", scale="tiny", seed=0)


def _graph_method(dataset, seed=0):
    return GraphCL(dataset.num_features, 8, 2,
                   rng=np.random.default_rng(seed))


class RecordingCallback(Callback):
    def __init__(self):
        self.calls = []

    def on_train_begin(self, trainer):
        self.calls.append("begin")

    def on_epoch_end(self, trainer, epoch):
        self.calls.append(("epoch", epoch))

    def on_train_end(self, trainer):
        self.calls.append("end")


class TestCallbackProtocol:
    def test_hooks_fire_in_order(self, graph_dataset):
        recorder = RecordingCallback()
        method = _graph_method(graph_dataset)
        trainer = Trainer(method, GraphSteps(graph_dataset.graphs,
                                             batch_size=16, seed=0),
                          epochs=2, callbacks=[recorder])
        trainer.fit()
        assert recorder.calls == ["begin", ("epoch", 0), ("epoch", 1),
                                  "end"]

    def test_request_stop_ends_training(self, graph_dataset):
        class StopAtFirst(Callback):
            def on_epoch_end(self, trainer, epoch):
                trainer.request_stop()

        method = _graph_method(graph_dataset)
        trainer = Trainer(method, GraphSteps(graph_dataset.graphs,
                                             batch_size=16, seed=0),
                          epochs=10, callbacks=[StopAtFirst()])
        history = trainer.fit()
        assert len(history.losses) == 1
        assert trainer.epochs_run == 1

    def test_find_callback(self, graph_dataset):
        method = _graph_method(graph_dataset)
        trainer = Trainer(method, GraphSteps(graph_dataset.graphs,
                                             batch_size=16, seed=0),
                          epochs=1, patience=3,
                          probe=lambda m: {"x": 1.0})
        assert isinstance(trainer.find_callback(EarlyStopping),
                          EarlyStopping)
        assert isinstance(trainer.find_callback(ProbeCallback),
                          ProbeCallback)
        assert trainer.find_callback(RecordingCallback) is None

    def test_probe_records_each_epoch(self, graph_dataset):
        method = _graph_method(graph_dataset)
        trainer = Trainer(method, GraphSteps(graph_dataset.graphs,
                                             batch_size=16, seed=0),
                          epochs=2, probe=lambda m: {"n": m.num_parameters()})
        history = trainer.fit()
        assert len(history.probes) == 2

    def test_probe_every_thins_cadence(self, graph_dataset):
        # every=2 over 5 epochs: after epochs 2 and 4, plus the final
        # epoch regardless of alignment.
        method = _graph_method(graph_dataset)
        trainer = Trainer(method, GraphSteps(graph_dataset.graphs,
                                             batch_size=16, seed=0),
                          epochs=5,
                          callbacks=[ProbeCallback(lambda m: {"n": 1},
                                                   every=2)])
        history = trainer.fit()
        assert len(history.probes) == 3

    def test_probe_fires_on_requested_stop(self, graph_dataset):
        class StopNow(Callback):
            def on_epoch_end(self, trainer, epoch):
                trainer.request_stop()

        method = _graph_method(graph_dataset)
        trainer = Trainer(method, GraphSteps(graph_dataset.graphs,
                                             batch_size=16, seed=0),
                          epochs=10,
                          callbacks=[StopNow(),
                                     ProbeCallback(lambda m: {"n": 1},
                                                   every=100)])
        trainer.fit()
        # An off-cadence early stop still probes the run's final state.
        assert len(trainer.history.probes) == 1

    def test_probe_every_validation(self):
        with pytest.raises(ValueError, match="every"):
            ProbeCallback(lambda m: {}, every=0)

    def test_early_stopping_validation(self):
        with pytest.raises(ValueError, match="patience"):
            EarlyStopping(patience=0)

    def test_epochs_validation(self, graph_dataset):
        method = _graph_method(graph_dataset)
        with pytest.raises(ValueError, match="epochs"):
            Trainer(method, GraphSteps(graph_dataset.graphs), epochs=0)


class TestNodeStrategy:
    def test_node_early_stopping(self, node_dataset):
        # Regression: the old node loop had no early stopping at all.
        # A huge min_delta means "never improves" after the first epoch
        # sets the best loss -> stop after 1 + patience epochs.
        method = GRACE(node_dataset.num_features, 16, 8,
                       rng=np.random.default_rng(0))
        history = train_node_method(method, node_dataset.graph, epochs=30,
                                    patience=2, min_delta=100.0)
        assert len(history.losses) == 3

    def test_node_runs_full_without_patience(self, node_dataset):
        method = GRACE(node_dataset.num_features, 16, 8,
                       rng=np.random.default_rng(0))
        history = train_node_method(method, node_dataset.graph, epochs=3)
        assert len(history.losses) == 3

    def test_node_strategy_forces_serial_pipeline(self, node_dataset):
        method = GRACE(node_dataset.num_features, 16, 8,
                       rng=np.random.default_rng(0))
        trainer = Trainer(method, NodeSteps(node_dataset.graph), epochs=1,
                          workers=4, prefetch=True)
        assert trainer.workers == 0
        assert trainer.prefetch is False

    def test_node_parts_keys_sorted(self, node_dataset):
        from repro.core import gradgcl

        method = gradgcl(GRACE(node_dataset.num_features, 16, 8,
                               rng=np.random.default_rng(0)), 0.3)
        history = train_node_method(method, node_dataset.graph, epochs=1)
        assert list(history.parts[0]) == sorted(history.parts[0])


class TestWrapperParity:
    """The legacy wrappers stay thin and signature-stable."""

    def test_graph_wrapper_signature(self):
        params = inspect.signature(train_graph_method).parameters
        defaults = {name: p.default for name, p in params.items()}
        assert defaults["epochs"] == 20
        assert defaults["batch_size"] == 64
        assert defaults["lr"] == pytest.approx(1e-3)
        assert defaults["seed"] == 0
        assert defaults["grad_clip"] is None
        assert defaults["patience"] is None

    def test_node_wrapper_signature(self):
        params = inspect.signature(train_node_method).parameters
        defaults = {name: p.default for name, p in params.items()}
        assert defaults["epochs"] == 50
        assert defaults["lr"] == pytest.approx(1e-3)
        assert defaults["patience"] is None
        assert defaults["min_delta"] == pytest.approx(1e-4)

    def test_wrapper_matches_direct_trainer(self, graph_dataset):
        wrapped = train_graph_method(
            _graph_method(graph_dataset), graph_dataset.graphs, epochs=2,
            batch_size=16, seed=0)
        trainer = Trainer(_graph_method(graph_dataset),
                          GraphSteps(graph_dataset.graphs, batch_size=16,
                                     seed=0), epochs=2)
        direct = trainer.fit()
        assert wrapped.losses == direct.losses
        assert wrapped.parts == direct.parts
