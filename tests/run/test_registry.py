"""Method registry: lookup, level inference, signature-aware build."""

import numpy as np
import pytest

from repro.run import (
    MethodEntry,
    get_method,
    list_methods,
    method_levels,
    method_names,
    register_method,
)


class TestEnumeration:
    def test_at_least_thirteen_methods(self):
        assert len(method_names()) >= 13

    def test_expected_names_present(self):
        names = set(method_names())
        for expected in ("GraphCL", "SimGRACE", "JOAO", "RGCL", "GRACE",
                         "BGRL", "DGI", "MVGRL", "GraphMAE"):
            assert expected in names

    def test_level_filtering(self):
        graph = set(method_names("graph"))
        node = set(method_names("node"))
        assert "RGCL" in graph and "RGCL" not in node
        assert "DGI" in node and "DGI" not in graph
        assert "MVGRL" in graph and "MVGRL" in node

    def test_list_methods_sorted_entries(self):
        entries = list_methods()
        assert all(isinstance(e, MethodEntry) for e in entries)
        keys = [(e.name, e.level) for e in entries]
        assert keys == sorted(keys)

    def test_describe_rows(self):
        entry = get_method("GraphCL", "graph")
        row = entry.describe()
        assert row["name"] == "GraphCL"
        assert row["level"] == "graph"
        assert row["class"] == "GraphCL"
        assert "hidden_dim" in row["params"]
        assert row["summary"]

    def test_method_levels(self):
        assert method_levels("MVGRL") == ["graph", "node"]
        assert method_levels("RGCL") == ["graph"]
        assert method_levels("NotAMethod") == []


class TestLookup:
    def test_infers_unambiguous_level(self):
        assert get_method("GraphCL").level == "graph"
        assert get_method("DGI").level == "node"

    def test_ambiguous_name_requires_level(self):
        with pytest.raises(ValueError, match="levels"):
            get_method("MVGRL")
        assert get_method("MVGRL", "node").cls.__name__ == "MVGRLNode"

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="GraphCL"):
            get_method("Nope")
        with pytest.raises(KeyError, match="unknown graph-level"):
            get_method("GRACE", "graph")


class TestBuild:
    def test_builds_with_standard_kwargs(self):
        entry = get_method("GraphCL", "graph")
        method = entry.build(4, rng=np.random.default_rng(0),
                             hidden_dim=8, num_layers=2)
        assert type(method).__name__ == "GraphCL"

    def test_drops_unaccepted_standard_kwargs(self):
        # MVGRLNode takes no out_dim; the standard keyword is dropped
        # silently instead of exploding mid-config.
        entry = get_method("MVGRL", "node")
        method = entry.build(4, rng=np.random.default_rng(0),
                             hidden_dim=8, out_dim=16)
        assert type(method).__name__ == "MVGRLNode"

    def test_rejects_unknown_kwargs_with_accepted_list(self):
        entry = get_method("GraphCL", "graph")
        with pytest.raises(TypeError, match="hidden_dim"):
            entry.build(4, rng=np.random.default_rng(0), bogus_knob=3)

    def test_none_values_fall_through_to_defaults(self):
        entry = get_method("GraphCL", "graph")
        method = entry.build(4, rng=np.random.default_rng(0),
                             hidden_dim=None, num_layers=None)
        assert type(method).__name__ == "GraphCL"

    def test_varargs_subclass_inherits_base_signature(self):
        # JOAO.__init__ forwards *args/**kwargs to GraphCL; the registry
        # unions the MRO so the inherited keywords are still accepted.
        entry = get_method("JOAO", "graph")
        assert "hidden_dim" in entry.accepts
        assert "num_layers" in entry.accepts


class TestRegistration:
    def test_rejects_bad_level(self):
        with pytest.raises(ValueError, match="level"):
            register_method("Thing", level="cluster")

    def test_rejects_conflicting_reregistration(self):
        class Impostor:
            def __init__(self, num_features, *, rng):
                pass

        with pytest.raises(ValueError, match="already registered"):
            register_method("GraphCL", level="graph")(Impostor)
