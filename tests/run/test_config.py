"""RunConfig: resolution, validation, JSON round-trip, hashing."""

import dataclasses
import json

import pytest

from repro.run import CONFIG_FILENAME, RunConfig


class TestResolve:
    def test_graph_defaults(self):
        config = RunConfig(method="SimGRACE").resolve()
        assert config.level == "graph"
        assert config.epochs == 20
        assert config.lr == pytest.approx(1e-3)
        assert config.hidden_dim == 16
        assert config.num_layers == 2
        assert config.batch_size == 32

    def test_node_defaults(self):
        config = RunConfig(method="GRACE", dataset="Cora").resolve()
        assert config.level == "node"
        assert config.epochs == 40
        assert config.lr == pytest.approx(3e-3)
        assert config.hidden_dim == 32
        assert config.out_dim == 16

    def test_explicit_values_survive_resolve(self):
        config = RunConfig(method="SimGRACE", epochs=7, lr=0.5,
                           hidden_dim=4).resolve()
        assert config.epochs == 7
        assert config.lr == 0.5
        assert config.hidden_dim == 4

    def test_ambiguous_method_needs_level(self):
        with pytest.raises(ValueError, match="levels"):
            RunConfig(method="MVGRL").resolve()
        assert RunConfig(method="MVGRL", level="node").resolve().out_dim == 16

    def test_unknown_method_fails_early(self):
        with pytest.raises(KeyError, match="known"):
            RunConfig(method="Nope").resolve()

    def test_resolve_is_idempotent(self):
        once = RunConfig(method="GraphCL").resolve()
        assert once.resolve() == once


class TestValidation:
    def test_weight_range(self):
        with pytest.raises(ValueError, match="weight"):
            RunConfig(weight=1.5)
        with pytest.raises(ValueError, match="weight"):
            RunConfig(weight=-0.1)

    def test_epochs_positive(self):
        with pytest.raises(ValueError, match="epochs"):
            RunConfig(epochs=0)

    def test_checkpoint_requires_run_dir(self):
        with pytest.raises(ValueError, match="run_dir"):
            RunConfig(checkpoint_every=2)
        RunConfig(checkpoint_every=2, run_dir="runs/x")  # fine

    def test_level_values(self):
        with pytest.raises(ValueError, match="level"):
            RunConfig(level="edge")


class TestSerialization:
    def test_dict_round_trip(self):
        config = RunConfig(method="GraphCL", weight=0.5, epochs=3,
                           run_dir="runs/x")
        assert RunConfig.from_dict(config.to_dict()) == config

    def test_eval_workers_round_trip(self):
        config = RunConfig(method="GraphCL", eval_workers=2)
        assert RunConfig.from_dict(config.to_dict()).eval_workers == 2
        assert RunConfig(method="GraphCL").eval_workers is None

    def test_unknown_field_raises_with_field_list(self):
        with pytest.raises(ValueError, match="learning_rate"):
            RunConfig.from_dict({"method": "GraphCL", "learning_rate": 1.0})

    def test_file_round_trip(self, tmp_path):
        config = RunConfig(method="SimGRACE", weight=0.25, scale="tiny")
        path = config.to_file(tmp_path / CONFIG_FILENAME)
        assert RunConfig.from_file(path) == config
        # the file is plain sorted JSON, hand-editable
        data = json.loads(path.read_text())
        assert data["method"] == "SimGRACE"


class TestHashAndJournalFields:
    def test_hash_ignores_storage_locations(self):
        base = RunConfig(method="GraphCL", weight=0.5)
        moved = dataclasses.replace(base, run_dir="elsewhere",
                                    save="enc.npz")
        assert base.config_hash() == moved.config_hash()

    def test_hash_ignores_execution_topology(self):
        # workers/cache/cadence produce bit-identical numbers, so a
        # serial run and a parallel run of the same experiment must
        # share a fingerprint (the CI parallel-determinism drill diffs
        # their journals, config_hash included).
        base = RunConfig(method="GraphCL", weight=0.5)
        parallel = dataclasses.replace(base, workers=2, cache=False,
                                       run_dir="runs/x",
                                       checkpoint_every=2,
                                       spectrum_every=5)
        assert base.config_hash() == parallel.config_hash()

    def test_hash_ignores_eval_workers(self):
        # The evaluation engine is bit-identical at every worker count,
        # so eval_workers is execution topology, not an experiment knob.
        base = RunConfig(method="GraphCL", weight=0.5)
        parallel = dataclasses.replace(base, eval_workers=2)
        assert base.config_hash() == parallel.config_hash()

    def test_hash_tracks_hyperparameters(self):
        base = RunConfig(method="GraphCL", weight=0.5)
        assert (base.config_hash()
                != dataclasses.replace(base, lr=0.01).config_hash())
        assert (base.config_hash()
                != dataclasses.replace(base, seed=1).config_hash())

    def test_hash_is_resolution_invariant(self):
        # explicit defaults and resolved defaults hash the same
        implicit = RunConfig(method="SimGRACE")
        explicit = RunConfig(method="SimGRACE", level="graph", epochs=20,
                             lr=1e-3, hidden_dim=16, num_layers=2,
                             batch_size=32)
        assert implicit.config_hash() == explicit.config_hash()

    def test_journal_fields(self):
        config = RunConfig(method="GraphCL", weight=0.5,
                           run_dir="runs/x", save="enc.npz")
        fields = config.journal_fields()
        assert fields["method"] == "GraphCL"
        assert fields["config_hash"] == config.config_hash()
        assert "run_dir" not in fields and "save" not in fields
        assert None not in fields.values()
