"""Runner eval telemetry: journal ``eval``/``note`` events, trace filtering."""

from types import SimpleNamespace

import pytest

import repro.eval.protocol as protocol
from repro.eval import EvalStats
from repro.obs import RunJournal, events_of, read_journal
from repro.run.config import RunConfig
from repro.run.runner import _RunContext, _log_eval


def _ctx(journal, spans=None):
    tracer = SimpleNamespace(snapshot=lambda: spans or {})
    trainer = SimpleNamespace(tracer=tracer)
    return _RunContext(config=RunConfig(method="GraphCL", dataset="MUTAG"),
                       trainer=trainer, method=None, dataset=None,
                       journal=journal)


def _install_stats(monkeypatch, **overrides):
    stats = EvalStats(seconds=1.5, solver="lockstep", workers=0, repeats=5,
                      folds_total=50, folds_batched=50, **overrides)
    monkeypatch.setattr(protocol, "_last_stats", stats)
    return stats


class TestLogEval:
    def test_eval_event_carries_engine_fields(self, tmp_path, monkeypatch):
        _install_stats(monkeypatch, fit_iterations=1234)
        with RunJournal(tmp_path) as journal:
            _log_eval(_ctx(journal), accuracy=87.5, accuracy_std=1.25)
        (event,) = events_of(read_journal(tmp_path), "eval")
        assert event["dataset"] == "MUTAG"
        assert event["accuracy"] == 87.5
        assert event["eval_solver"] == "lockstep"
        assert event["eval_folds"] == 50
        assert event["eval_fit_iterations"] == 1234

    def test_skipped_folds_surface_as_note_event(self, tmp_path,
                                                 monkeypatch):
        _install_stats(monkeypatch, folds_skipped=2)
        with RunJournal(tmp_path) as journal:
            _log_eval(_ctx(journal), accuracy=50.0)
        events = read_journal(tmp_path)
        (note,) = events_of(events, "note")
        assert "2 degenerate fold(s)" in note["message"]
        assert note["folds_skipped"] == 2
        assert events_of(events, "eval")[0]["eval_folds_skipped"] == 2

    def test_no_note_without_skips(self, tmp_path, monkeypatch):
        _install_stats(monkeypatch)
        with RunJournal(tmp_path) as journal:
            _log_eval(_ctx(journal), accuracy=50.0)
        assert events_of(read_journal(tmp_path), "note") == []

    def test_trace_event_restricted_to_evaluate_spans(self, tmp_path,
                                                      monkeypatch):
        _install_stats(monkeypatch)
        spans = {"evaluate": {"count": 1}, "evaluate/eval/graph":
                 {"count": 1}, "train/epoch": {"count": 2}}
        with RunJournal(tmp_path) as journal:
            _log_eval(_ctx(journal, spans=spans), accuracy=50.0)
        (trace_event,) = events_of(read_journal(tmp_path), "trace")
        assert sorted(trace_event["spans"]) == ["evaluate",
                                               "evaluate/eval/graph"]

    def test_no_journal_is_a_noop(self, monkeypatch):
        _install_stats(monkeypatch)
        _log_eval(_ctx(None), accuracy=50.0)  # must not raise

    def test_reference_path_stats_still_logged(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            protocol, "_last_stats",
            EvalStats(seconds=0.5, solver="reference", repeats=5,
                      folds_total=50, folds_fallback=50))
        with RunJournal(tmp_path) as journal:
            _log_eval(_ctx(journal), accuracy=50.0)
        (event,) = events_of(read_journal(tmp_path), "eval")
        assert event["eval_solver"] == "reference"
        assert event["eval_folds_fallback"] == 50
