"""execute_run(retries=N): auto-resume from checkpoints after faults."""

import json

import pytest

from repro.faults import FaultPlan, counters_snapshot, use_fault_plan
from repro.obs import canonical_events
from repro.run import RunConfig, execute_run
from repro.run.trainer import EPOCH_POINT


def _journal_events(run_dir):
    with (run_dir / "events.jsonl").open() as fh:
        return [json.loads(line) for line in fh]


def _graph_config(run_dir, **overrides) -> RunConfig:
    fields = dict(method="GraphCL", dataset="MUTAG", scale="tiny",
                  weight=0.5, epochs=4, seed=0, hidden_dim=8,
                  checkpoint_every=1, run_dir=str(run_dir))
    fields.update(overrides)
    return RunConfig(**fields)


class TestRetries:
    def test_faulted_run_recovers_bit_identically(self, tmp_path):
        """A crash injected mid-training plus ``retries`` yields the same
        metrics and canonical journal as the fault-free run."""
        reference = execute_run(_graph_config(tmp_path / "reference"))

        before = counters_snapshot()["faults.retries"]
        plan = FaultPlan([{"point": EPOCH_POINT, "kind": "raise",
                           "at": 3}])
        with use_fault_plan(plan):
            recovered = execute_run(_graph_config(tmp_path / "chaos"),
                                    retries=2)
        assert counters_snapshot()["faults.retries"] == before + 1

        assert recovered.history.losses == reference.history.losses
        assert recovered.accuracy == reference.accuracy
        assert canonical_events(_journal_events(tmp_path / "chaos")) == \
            canonical_events(_journal_events(tmp_path / "reference"))

    def test_crash_before_first_checkpoint_restarts_fresh(self, tmp_path):
        reference = execute_run(_graph_config(tmp_path / "reference"))
        plan = FaultPlan([{"point": EPOCH_POINT, "kind": "raise",
                           "at": 1}])
        with use_fault_plan(plan):
            recovered = execute_run(_graph_config(tmp_path / "chaos"),
                                    retries=1)
        assert recovered.history.losses == reference.history.losses
        assert canonical_events(_journal_events(tmp_path / "chaos")) == \
            canonical_events(_journal_events(tmp_path / "reference"))

    def test_exhausted_retries_reraise_the_fault(self, tmp_path):
        from repro.faults import FaultInjected

        plan = FaultPlan([{"point": EPOCH_POINT, "kind": "raise",
                           "at": 1, "every": 1, "times": None}])
        with use_fault_plan(plan):
            with pytest.raises(FaultInjected):
                execute_run(_graph_config(tmp_path / "doomed"), retries=2)

    def test_retries_require_run_dir(self, tmp_path):
        config = RunConfig(method="GraphCL", dataset="MUTAG", scale="tiny",
                           weight=0.5, epochs=4, seed=0, hidden_dim=8)
        with pytest.raises(ValueError, match="retries requires run_dir"):
            execute_run(config, retries=1)

    def test_negative_retries_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="retries"):
            execute_run(_graph_config(tmp_path), retries=-1)
