"""API-surface quality gates: __all__ exports exist and carry docstrings."""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro.tensor",
    "repro.nn",
    "repro.graph",
    "repro.gnn",
    "repro.augment",
    "repro.losses",
    "repro.core",
    "repro.methods",
    "repro.baselines",
    "repro.datasets",
    "repro.eval",
    "repro.utils",
    "repro.run",
    "repro.serve",
]


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestExports:
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), \
                f"{module_name}.__all__ lists missing name {name!r}"

    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, \
            f"{module_name}: missing docstrings on {undocumented}"

    def test_module_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert (module.__doc__ or "").strip(), \
            f"{module_name} lacks a module docstring"


class TestTopLevel:
    def test_version(self):
        import repro

        assert repro.__version__
        assert (repro.__doc__ or "").strip()

    def test_subpackages_reachable(self):
        import repro

        for name in repro.__all__:
            if name != "__version__":
                assert hasattr(repro, name)
